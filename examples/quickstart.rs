//! Quickstart: solve the paper's motivating example (Fig. 2 / Fig. 3) end to end.
//!
//! Builds the 7-switch complete binary tree with leaf loads (2, 6, 5, 4), runs the
//! contending placement strategies and SOAR for a range of budgets, and prints the
//! resulting utilization complexities together with the optimal blue-node sets.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use soar::prelude::*;
use soar::reduce::sim;

fn main() {
    // ------------------------------------------------------------------
    // The Fig. 2 instance: ToR switches with 2, 6, 5 and 4 attached servers.
    // ------------------------------------------------------------------
    let mut tree = builders::complete_binary_tree(7);
    for (leaf, load) in [(3, 2u64), (4, 6), (5, 5), (6, 4)] {
        tree.set_load(leaf, load);
    }

    println!("== SOAR quickstart: the paper's motivating example ==\n");
    println!(
        "tree: {} switches, height {}, total load {} workers",
        tree.n_switches(),
        tree.height(),
        tree.total_load()
    );

    // ------------------------------------------------------------------
    // Compare the strategies of Sec. 3 at budget k = 2 (Fig. 2).
    // ------------------------------------------------------------------
    let k = 2;
    let mut rng = rand::rng();
    println!("\n-- strategies at k = {k} (Fig. 2) --");
    for strategy in [
        Strategy::Top,
        Strategy::MaxLoad,
        Strategy::Level,
        Strategy::Soar,
    ] {
        let solution = strategy.solve(&tree, k, &mut rng);
        println!(
            "{:<8} cost = {:>5.1}   blue = {:?}",
            strategy.name(),
            solution.cost,
            solution.coloring.blue_nodes()
        );
    }

    // ------------------------------------------------------------------
    // The optimal cost-vs-budget curve (Fig. 3).
    // ------------------------------------------------------------------
    println!("\n-- optimal cost for k = 0..4 (Fig. 3) --");
    for k in 0..=4 {
        let solution = soar::core::solve(&tree, k);
        println!(
            "k = {k}: cost = {:>5.1}   blue = {:?}",
            solution.cost,
            solution.coloring.blue_nodes()
        );
    }

    // ------------------------------------------------------------------
    // Execute the Reduce packet by packet over the optimal k = 2 placement.
    // ------------------------------------------------------------------
    let solution = soar::core::solve(&tree, 2);
    let report = sim::simulate(&tree, &solution.coloring);
    println!("\n-- packet-level simulation of the optimal k = 2 Reduce --");
    println!(
        "total link busy time (= phi): {:.1}",
        report.total_busy_time
    );
    println!(
        "completion time:              {:.1}",
        report.completion_time
    );
    println!(
        "bottleneck link busy time:    {:.1}",
        report.max_link_busy_time
    );
    println!(
        "messages at the destination:  {}",
        report.messages_at_destination
    );
}
