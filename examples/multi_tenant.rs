//! Multi-tenant, online aggregation-switch allocation (the Sec. 5.2 scenario).
//!
//! A sequence of tenant workloads arrives over a shared BT(256) network. Every switch
//! can serve as an aggregation point for at most `a(s) = 4` workloads, and each tenant
//! is granted at most `k = 16` aggregation switches. The example compares how well the
//! placement strategies share the bounded aggregation capacity across 32 tenants.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::multitenant::{workloads::MixedWorkloadGenerator, OnlineAllocator};
use soar::prelude::*;

fn main() {
    let tree = builders::complete_binary_tree_bt(256);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut workload_rng = StdRng::seed_from_u64(5);
    let workloads = generator.draw_sequence(&tree, 32, &mut workload_rng);

    println!("== Multi-tenant online allocation: 32 workloads, k = 16, capacity 4 ==\n");
    println!(
        "{:<8} {:>22} {:>22}",
        "strategy", "normalized utilization", "first -> last workload"
    );

    for strategy in [
        Strategy::Soar,
        Strategy::MaxLoad,
        Strategy::Top,
        Strategy::Level,
    ] {
        let mut allocator = OnlineAllocator::new(&tree, 16, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let report = allocator.run_sequence(&workloads, strategy, &mut rng);
        let first = report.outcomes.first().unwrap().normalized();
        let last = report.outcomes.last().unwrap().normalized();
        println!(
            "{:<8} {:>22.3} {:>13.3} -> {:.3}",
            strategy.name(),
            report.normalized_total(),
            first,
            last
        );
    }

    println!(
        "\n(The normalized utilization is relative to serving every workload without any \
         aggregation; lower is better. Later workloads find less residual capacity, so \
         their individual ratios drift towards 1.0.)"
    );
}
