//! Multi-tenant, online aggregation-switch allocation (the Sec. 5.2 scenario).
//!
//! A sequence of tenant workloads arrives over a shared BT(256) network. Every switch
//! can serve as an aggregation point for at most `a(s) = 4` workloads, and each tenant
//! is granted at most `k = 16` aggregation switches. The example compares how well the
//! placement strategies share the bounded aggregation capacity across 32 tenants.
//!
//! Contenders come from the unified [`solvers::by_name`] registry and run through
//! [`OnlineAllocator::run_sequence_with`], which solves each workload as a
//! first-class [`Instance`] (topology + residual availability Λ_t + budget) — so
//! any solver that speaks the `Solver` trait, including the distributed
//! dataplane's, could be dropped in.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::multitenant::{workloads::MixedWorkloadGenerator, OnlineAllocator};
use soar::prelude::*;

fn main() {
    let tree = builders::complete_binary_tree_bt(256);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut workload_rng = StdRng::seed_from_u64(5);
    let workloads = generator.draw_sequence(&tree, 32, &mut workload_rng);

    println!("== Multi-tenant online allocation: 32 workloads, k = 16, capacity 4 ==\n");
    println!(
        "{:<10} {:>22} {:>22}",
        "solver", "normalized utilization", "first -> last workload"
    );

    for name in ["soar", "max-load", "top", "level"] {
        let solver = solvers::by_name(name).expect("registered solver");
        let mut allocator = OnlineAllocator::new(&tree, 16, 4);
        let report = allocator.run_sequence_with(&workloads, solver.as_ref());
        let first = report.outcomes.first().expect("32 workloads").normalized();
        let last = report.outcomes.last().expect("32 workloads").normalized();
        println!(
            "{:<10} {:>22.3} {:>13.3} -> {:.3}",
            solver.name(),
            report.normalized_total(),
            first,
            last
        );
    }

    println!(
        "\n(The normalized utilization is relative to serving every workload without any \
         aggregation; lower is better. Later workloads find less residual capacity, so \
         their individual ratios drift towards 1.0.)"
    );
}
