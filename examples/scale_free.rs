//! SOAR on scale-free (random preferential attachment) trees — the Appendix B study.
//!
//! Builds SF(128) networks with unit load on every switch, compares the degree-based
//! `Max` heuristic against SOAR (the paper's example saves roughly 70 % of the
//! messages), and prints the scaling behaviour for growing network sizes.
//!
//! Everything runs through the unified `Instance`/`Solver` API: the random
//! topology is reproducible from its seed inside an [`Instance`], contenders come
//! from the [`solvers::by_name`] registry (with `normalized_cost` computed by the
//! reports), and each scaling row is one [`sweep_budgets`] call — three budgets
//! out of a single SOAR-Gather pass.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scale_free
//! ```

use soar::prelude::*;
use soar::topology::builders::degrees;

/// SF(n) with unit load on every switch, as in Appendix B.
fn sf_instance(n: usize, seed: u64, k: usize) -> Instance {
    Instance::builder()
        .topology(TopologySpec::ScaleFreeSf { n })
        .loads(LoadSpec::Constant(1), LoadPlacement::AllSwitches)
        .seed(seed)
        .budget(k)
        .build()
        .expect("SF scenarios are always well-formed")
}

fn main() {
    let k = 4;
    let instance = sf_instance(128, 11, k);

    let degs = degrees(instance.tree());
    let mut top_degrees: Vec<usize> = degs.clone();
    top_degrees.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "== Scale-free network {}, unit load, k = {k} ==",
        instance.label()
    );
    println!(
        "highest degrees: {:?}\n",
        &top_degrees[..9.min(top_degrees.len())]
    );

    let max_deg = solvers::by_name("max-degree")
        .expect("registered")
        .solve(&instance);
    let soar = solvers::by_name("soar")
        .expect("registered")
        .solve(&instance);
    println!("all-red utilization:        {:.0}", instance.all_red_cost());
    println!(
        "Max (highest degree) k = {k}: {:.0}  ({:.0}% of all-red)",
        max_deg.solution.cost,
        100.0 * max_deg.normalized_cost
    );
    println!(
        "SOAR k = {k}:                 {:.0}  ({:.0}% of all-red, {:.0}% below Max)",
        soar.solution.cost,
        100.0 * soar.normalized_cost,
        100.0 * (1.0 - soar.solution.cost / max_deg.solution.cost)
    );

    // Scaling study (Fig. 11c): k = 1% of n, log2(n), sqrt(n) for growing sizes.
    // One sweep_budgets call per size: all three budgets share a gather pass.
    println!("\n-- scaling on SF(n), unit loads (normalized to all-red) --");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "n", "k=1%", "k=log n", "k=sqrt n"
    );
    for exponent in 8..=11u32 {
        let n = 2usize.pow(exponent);
        let budgets: Vec<usize> = [
            ((n as f64) * 0.01).round() as usize,
            (n as f64).log2().round() as usize,
            (n as f64).sqrt().round() as usize,
        ]
        .into_iter()
        .map(|k| k.max(1))
        .collect();
        let k_max = *budgets.iter().max().expect("three budgets");
        let instance = sf_instance(n, exponent as u64, k_max);
        let reports = sweep_budgets(&instance, &budgets);
        let mut row = format!("{n:>6}");
        for report in &reports {
            row.push_str(&format!(" {:>10.3}", report.normalized_cost));
        }
        println!("{row}");
    }
}
