//! SOAR on scale-free (random preferential attachment) trees — the Appendix B study.
//!
//! Builds SF(128) networks with unit load on every switch, compares the degree-based
//! `Max` heuristic against SOAR (the paper's example saves roughly 70 % of the
//! messages), and prints the scaling behaviour for growing network sizes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scale_free
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::prelude::*;
use soar::topology::builders::{degrees, scale_free_tree_sf};

fn main() {
    let k = 4;
    let mut rng = StdRng::seed_from_u64(11);
    let mut tree = scale_free_tree_sf(128, &mut rng);
    for v in 0..tree.n_switches() {
        tree.set_load(v, 1);
    }

    let degs = degrees(&tree);
    let mut top_degrees: Vec<usize> = degs.clone();
    top_degrees.sort_unstable_by(|a, b| b.cmp(a));
    println!("== Scale-free network SF(128), unit load, k = {k} ==");
    println!(
        "highest degrees: {:?}\n",
        &top_degrees[..9.min(top_degrees.len())]
    );

    let mut strategy_rng = StdRng::seed_from_u64(0);
    let all_red = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
    let max_deg = Strategy::MaxDegree.solve(&tree, k, &mut strategy_rng);
    let soar = soar::core::solve(&tree, k);
    println!("all-red utilization:        {all_red:.0}");
    println!(
        "Max (highest degree) k = {k}: {:.0}  ({:.0}% of all-red)",
        max_deg.cost,
        100.0 * max_deg.cost / all_red
    );
    println!(
        "SOAR k = {k}:                 {:.0}  ({:.0}% of all-red, {:.0}% below Max)",
        soar.cost,
        100.0 * soar.cost / all_red,
        100.0 * (1.0 - soar.cost / max_deg.cost)
    );

    // Scaling study (Fig. 11c): k = 1% of n, log2(n), sqrt(n) for growing sizes.
    println!("\n-- scaling on SF(n), unit loads (normalized to all-red) --");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "n", "k=1%", "k=log n", "k=sqrt n"
    );
    for exponent in 8..=11u32 {
        let n = 2usize.pow(exponent);
        let mut rng = StdRng::seed_from_u64(exponent as u64);
        let mut tree = scale_free_tree_sf(n, &mut rng);
        for v in 0..tree.n_switches() {
            tree.set_load(v, 1);
        }
        let all_red = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
        let mut row = format!("{n:>6}");
        for k in [
            ((n as f64) * 0.01).round() as usize,
            (n as f64).log2().round() as usize,
            (n as f64).sqrt().round() as usize,
        ] {
            let solution = soar::core::solve(&tree, k.max(1));
            row.push_str(&format!(" {:>10.3}", solution.cost / all_red));
        }
        println!("{row}");
    }
}
