//! Distributed-ML gradient aggregation with a parameter server (the PS use case).
//!
//! Worker servers push gradient updates (10 000 features, 0.5 dropout, as in Sec. 5.3
//! of the paper) towards a parameter server sitting above the root of a BT(64)
//! aggregation tree. The example compares how many bytes reach the parameter server's
//! ingress link — the classic incast bottleneck — under no aggregation, under SOAR with
//! a small budget, and under full in-network aggregation, and then runs the distributed
//! message-passing prototype to show the same placement being computed in-network.
//!
//! The scenario is expressed through the unified `Instance`/`Solver` API: the
//! topology, loads and seed live in one reproducible [`Instance`], placements come
//! from the [`solvers::by_name`] registry, and a single [`sweep_budgets`] call
//! yields both SOAR budgets from one shared gather pass.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ml_parameter_server
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::apps::UseCase;
use soar::dataplane::runtime::run_inline;
use soar::prelude::*;

fn main() {
    let instance = Instance::builder()
        .topology(TopologySpec::CompleteBinaryBt { n: 64 })
        .leaf_loads(LoadSpec::paper_uniform())
        .seed(7)
        .budget(8)
        .label("PS/BT(64)")
        .build()
        .expect("the PS scenario is well-formed");
    let tree = instance.tree();

    println!("== Distributed ML: gradient aggregation towards a parameter server ==");
    println!(
        "{} ({} switches, {} workers), 10k-feature gradients with 0.5 dropout\n",
        instance.label(),
        instance.n_switches(),
        tree.total_load()
    );

    let use_case = UseCase::parameter_server_default();
    let n = instance.n_switches();

    // Both SOAR budgets come from one gather pass; the reference placements come
    // from the solver registry.
    let sweep = sweep_budgets(&instance, &[2, 8]);
    let all_red = solvers::by_name("all-red")
        .expect("registered")
        .solve(&instance);
    let all_blue = solvers::by_name("all-blue")
        .expect("registered")
        .solve(&instance);
    let placements: Vec<(String, Coloring)> = vec![
        (
            "all-red (no aggregation)".to_string(),
            all_red.solution.coloring,
        ),
        (
            "SOAR, k = 2".to_string(),
            sweep[0].solution.coloring.clone(),
        ),
        (
            "SOAR, k = 8".to_string(),
            sweep[1].solution.coloring.clone(),
        ),
        (
            "all-blue (unbounded)".to_string(),
            all_blue.solution.coloring,
        ),
    ];

    println!(
        "{:<28} {:>14} {:>16} {:>18}",
        "placement", "phi", "total MB", "PS ingress MB"
    );
    for (name, coloring) in &placements {
        let phi = cost::phi(tree, coloring);
        let report = use_case.byte_report(tree, coloring, &mut StdRng::seed_from_u64(99));
        println!(
            "{:<28} {:>14.1} {:>16.2} {:>18.2}",
            name,
            phi,
            report.total_bytes as f64 / 1e6,
            report.per_edge_bytes[0] as f64 / 1e6,
        );
    }
    debug_assert_eq!(placements[0].1.n_blue(), 0);
    debug_assert_eq!(placements[3].1.n_blue(), n);

    // Run the distributed prototype: switches compute the same optimal placement by
    // exchanging control messages along the tree, then execute the Reduce.
    println!("\n-- distributed prototype (k = 8) --");
    let report = run_inline(tree, 8);
    println!(
        "distributed SOAR chose {} blue switches, utilization {:.1} (centralized: {:.1})",
        report.blue_used, report.claimed_cost, sweep[1].solution.cost
    );
    println!(
        "reduce dataplane delivered {} aggregated reports covering {} workers",
        report.destination_data_messages, report.destination_contributors
    );
    println!(
        "control + data bytes on the wire: {:.2} KB",
        report.total_wire_bytes as f64 / 1e3
    );
}
