//! A datacenter MapReduce scenario: word-count over a BT(256) aggregation tree.
//!
//! Reproduces, at example scale, the setting of Sec. 5.1/5.3: 128 top-of-rack switches
//! each connected to a rack of servers (power-law sized), three link-rate regimes, and
//! the WC (word count) application model to translate placements into actual bytes on
//! the wire.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datacenter_reduce
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::apps::UseCase;
use soar::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);

    // BT(256): 255 switches, 128 ToR leaves, racks sized by the power-law distribution.
    let mut tree = builders::complete_binary_tree_bt(256);
    tree.apply_leaf_loads(&LoadSpec::paper_power_law(), &mut rng);

    println!("== Datacenter reduce: BT(256), power-law racks ==");
    println!(
        "{} switches, {} ToR switches, {} worker servers\n",
        tree.n_switches(),
        tree.leaves().count(),
        tree.total_load()
    );

    // How much does a small aggregation budget buy, under the three rate regimes?
    for scheme in [
        RateScheme::paper_constant(),
        RateScheme::paper_linear(),
        RateScheme::paper_exponential(),
    ] {
        let tree = tree.with_rates(&scheme);
        let all_red = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
        println!("-- link rates: {} --", scheme.label());
        println!("all-red utilization: {all_red:.1}");
        for k in [1usize, 4, 16, 32] {
            let solution = soar::core::solve(&tree, k);
            println!(
                "  SOAR k = {k:>3}: utilization {:>10.1}  ({:.1}% of all-red, {} blue switches)",
                solution.cost,
                100.0 * solution.cost / all_red,
                solution.blue_used
            );
        }
        println!();
    }

    // Translate the constant-rate placements into bytes using the WC application model.
    let tree = tree.with_rates(&RateScheme::paper_constant());
    let use_case = UseCase::word_count_default();
    let all_red = Coloring::all_red(tree.n_switches());
    let red_bytes = use_case
        .byte_report(&tree, &all_red, &mut StdRng::seed_from_u64(7))
        .total_bytes;
    println!("-- WC byte complexity (constant rates) --");
    println!("all-red: {:.1} MB on the wire", red_bytes as f64 / 1e6);
    for k in [4usize, 16, 64] {
        let solution = soar::core::solve(&tree, k);
        let bytes = use_case
            .byte_report(&tree, &solution.coloring, &mut StdRng::seed_from_u64(7))
            .total_bytes;
        println!(
            "SOAR k = {k:>3}: {:.1} MB on the wire ({:.1}% of all-red)",
            bytes as f64 / 1e6,
            100.0 * bytes as f64 / red_bytes as f64
        );
    }
}
