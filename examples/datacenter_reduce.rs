//! A datacenter MapReduce scenario: word-count over a BT(256) aggregation tree.
//!
//! Reproduces, at example scale, the setting of Sec. 5.1/5.3: 128 top-of-rack switches
//! each connected to a rack of servers (power-law sized), three link-rate regimes, and
//! the WC (word count) application model to translate placements into actual bytes on
//! the wire.
//!
//! The whole scenario is expressed through the unified `Instance`/`Solver` API: one
//! reproducible [`Instance`] per rate regime, one budget sweep per regime (a single
//! SOAR-Gather pass shared by all budgets), and parallel fan-out over the regimes
//! with [`sweep_budgets_batch`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datacenter_reduce
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::apps::UseCase;
use soar::prelude::*;

fn main() {
    // BT(256): 255 switches, 128 ToR leaves, racks sized by the power-law
    // distribution — one immutable instance per link-rate regime, all sharing the
    // same seed so the racks are identical across regimes.
    let schemes = [
        RateScheme::paper_constant(),
        RateScheme::paper_linear(),
        RateScheme::paper_exponential(),
    ];
    let instances: Vec<Instance> = schemes
        .iter()
        .map(|scheme| {
            Instance::builder()
                .topology(TopologySpec::CompleteBinaryBt { n: 256 })
                .leaf_loads(LoadSpec::paper_power_law())
                .rates(scheme.clone())
                .seed(2021)
                .label(format!("BT(256)/{}", scheme.label()))
                .build()
                .expect("the scenario is well-formed")
        })
        .collect();

    let tree = instances[0].tree();
    println!("== Datacenter reduce: BT(256), power-law racks ==");
    println!(
        "{} switches, {} ToR switches, {} worker servers\n",
        tree.n_switches(),
        tree.leaves().count(),
        tree.total_load()
    );

    // How much does a small aggregation budget buy, under the three rate regimes?
    // One budget sweep per instance, fanned out across threads.
    let budgets = [1usize, 4, 16, 32];
    let sweeps = sweep_budgets_batch(&instances, &budgets);
    for (instance, reports) in instances.iter().zip(&sweeps) {
        println!("-- instance: {} --", instance.label());
        println!("all-red utilization: {:.1}", instance.all_red_cost());
        for report in reports {
            println!(
                "  SOAR k = {:>3}: utilization {:>10.1}  ({:.1}% of all-red, {} blue switches)",
                report.solution.budget,
                report.solution.cost,
                100.0 * report.normalized_cost,
                report.solution.blue_used
            );
        }
        println!();
    }

    // Translate the constant-rate placements into bytes using the WC application
    // model; placements come from the SOAR solver through the registry.
    let constant = &instances[0];
    let solver = solvers::by_name("soar").expect("SOAR is registered");
    let use_case = UseCase::word_count_default();
    let all_red = Coloring::all_red(constant.n_switches());
    let red_bytes = use_case
        .byte_report(constant.tree(), &all_red, &mut StdRng::seed_from_u64(7))
        .total_bytes;
    println!("-- WC byte complexity (constant rates) --");
    println!("all-red: {:.1} MB on the wire", red_bytes as f64 / 1e6);
    for k in [4usize, 16, 64] {
        let report = solver.solve(&constant.with_budget(k));
        let bytes = use_case
            .byte_report(
                constant.tree(),
                &report.solution.coloring,
                &mut StdRng::seed_from_u64(7),
            )
            .total_bytes;
        println!(
            "SOAR k = {k:>3}: {:.1} MB on the wire ({:.1}% of all-red)",
            bytes as f64 / 1e6,
            100.0 * bytes as f64 / red_bytes as f64
        );
    }
}
