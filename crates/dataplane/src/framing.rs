//! Length-prefixed stream framing shared by the dataplane codec and the
//! `soar-serve` wire protocol.
//!
//! [`wire`](crate::wire) defines *message* encoding — what the bytes of one
//! frame mean. This module defines how frames travel over a byte stream: every
//! frame is a 4-byte big-endian length prefix followed by exactly that many
//! payload bytes. The reader is deliberately paranoid, because it faces the
//! network:
//!
//! * a declared length above the caller's cap is rejected **before any
//!   allocation** ([`FramingError::Oversized`]) — a hostile or corrupt peer
//!   cannot make the server reserve gigabytes with four bytes;
//! * a stream that ends mid-prefix or mid-payload is a typed
//!   [`FramingError::Truncated`], never a panic;
//! * end-of-stream exactly on a frame boundary is the clean-shutdown signal
//!   (`Ok(false)`), distinct from truncation.
//!
//! Payload *content* errors (garbage bytes) are the next layer's job: both
//! [`wire::Frame::decode`](crate::wire::Frame::decode) and the serve protocol
//! return typed errors for those, so no byte sequence on the wire can panic
//! the process. The malformed-frame corpus test at the bottom pins all three
//! failure classes.

use std::io::{self, Read, Write};

/// Size of the length prefix in bytes.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Default cap on a declared frame length (16 MiB) — far above any legitimate
/// SOAR message, far below anything that could hurt the process.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// A stream-framing failure. `Io` carries transport errors; the other variants
/// are protocol violations by the peer.
#[derive(Debug)]
pub enum FramingError {
    /// The stream ended inside a length prefix or inside a payload.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The peer declared a frame longer than the reader's cap. Detected before
    /// any buffer is grown.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The reader's cap.
        max: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for FramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramingError::Truncated { missing } => {
                write!(f, "stream truncated mid-frame ({missing} byte(s) missing)")
            }
            FramingError::Oversized { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            FramingError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FramingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FramingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FramingError {
    fn from(e: io::Error) -> Self {
        FramingError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length prefix, then the payload.
///
/// The caller decides buffering; `soar-serve` wraps its sockets in
/// `BufWriter` and flushes per response batch.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX bytes",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one frame into `buf` (cleared and reused across calls — steady-state
/// reads allocate nothing once `buf` reached the high-water mark).
///
/// Returns `Ok(true)` with the payload in `buf`, or `Ok(false)` on a clean
/// end-of-stream at a frame boundary. Any other shortfall is
/// [`FramingError::Truncated`]; a declared length above `max_len` is
/// [`FramingError::Oversized`] and consumes nothing further.
pub fn read_frame<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut Vec<u8>,
    max_len: usize,
) -> Result<bool, FramingError> {
    let mut prefix = [0u8; LEN_PREFIX_BYTES];
    let mut got = 0;
    while got < LEN_PREFIX_BYTES {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(false), // clean EOF between frames
            Ok(0) => {
                return Err(FramingError::Truncated {
                    missing: LEN_PREFIX_BYTES - got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_len {
        return Err(FramingError::Oversized {
            declared: len as u64,
            max: max_len,
        });
    }
    buf.clear();
    buf.resize(len, 0);
    let mut filled = 0;
    while filled < len {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FramingError::Truncated {
                    missing: len - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Durable records: the CRC-checked on-disk variant of a frame.
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding [`write_record`] payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A failure reading a durable [`write_record`] record back.
///
/// `Truncated` on the **last** record of a file is the expected signature of a
/// crash mid-append (a torn tail); recovery stops there and keeps everything
/// before it. `Corrupt` means the bytes on disk are not what was written —
/// also a stop-here signal, never a panic.
#[derive(Debug)]
pub enum RecordError {
    /// The file ended inside a record header or payload — a torn tail.
    Truncated {
        /// Bytes the record still owed when the file ended.
        missing: usize,
    },
    /// The header declared a payload longer than the reader's cap.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The reader's cap.
        max: usize,
    },
    /// The payload does not match its stored checksum, or the record is
    /// zero-length (no valid record is empty; an all-zeros tail from a
    /// partially flushed page reads as length 0 and lands here).
    Corrupt {
        /// The checksum stored in the header.
        stored: u32,
        /// The checksum of the bytes actually read.
        computed: u32,
    },
    /// The underlying file read failed.
    Io(io::Error),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { missing } => {
                write!(f, "record truncated ({missing} byte(s) missing)")
            }
            RecordError::Oversized { declared, max } => {
                write!(f, "declared record length {declared} exceeds cap {max}")
            }
            RecordError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "record checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            RecordError::Io(e) => write!(f, "record transport error: {e}"),
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecordError {
    fn from(e: io::Error) -> Self {
        RecordError::Io(e)
    }
}

/// Writes one durable record: 4-byte big-endian payload length, 4-byte
/// big-endian CRC-32 of the payload, then the payload. Empty payloads are
/// rejected ([`RecordError::Corrupt`] reserves length 0 for zero-filled
/// tails).
pub fn write_record<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(!payload.is_empty(), "no valid record is empty");
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "record payload exceeds u32::MAX bytes",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&crc32(payload).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one durable record into `buf` (cleared and reused). Returns
/// `Ok(true)` with the verified payload in `buf`, `Ok(false)` on clean
/// end-of-file at a record boundary, or the typed [`RecordError`] a WAL
/// recovery stops at. Like [`read_frame`], a declared length above `max_len`
/// is rejected before any allocation.
pub fn read_record<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut Vec<u8>,
    max_len: usize,
) -> Result<bool, RecordError> {
    const HEADER: usize = 8;
    let mut header = [0u8; HEADER];
    let mut got = 0;
    while got < HEADER {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(false), // clean EOF between records
            Ok(0) => {
                return Err(RecordError::Truncated {
                    missing: HEADER - got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(RecordError::Oversized {
            declared: len as u64,
            max: max_len,
        });
    }
    if len == 0 {
        // An all-zeros page tail decodes as a zero-length record; no real
        // record is empty, so this is corruption, not a record.
        return Err(RecordError::Corrupt {
            stored,
            computed: crc32(&[]),
        });
    }
    buf.clear();
    buf.resize(len, 0);
    let mut filled = 0;
    while filled < len {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(RecordError::Truncated {
                    missing: len - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let computed = crc32(buf);
    if computed != stored {
        return Err(RecordError::Corrupt { stored, computed });
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Frame, WireError};
    use bytes::Bytes;

    fn read_all(stream: &[u8]) -> Result<Vec<Vec<u8>>, FramingError> {
        let mut r = stream;
        let mut buf = Vec::new();
        let mut frames = Vec::new();
        while read_frame(&mut r, &mut buf, MAX_FRAME_LEN)? {
            frames.push(buf.clone());
        }
        Ok(frames)
    }

    #[test]
    fn round_trips_multiple_frames() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[7u8; 1000]).unwrap();
        let frames = read_all(&stream).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"alpha");
        assert_eq!(frames[1], b"");
        assert_eq!(frames[2], vec![7u8; 1000]);
    }

    /// The malformed-frame corpus: every hostile shape a peer can put on the
    /// stream maps to a typed error, never a panic, never an allocation bomb.
    #[test]
    fn malformed_frame_corpus() {
        // 1. Truncated length prefix: stream dies after 2 of 4 prefix bytes.
        match read_all(&[0x00, 0x00]) {
            Err(FramingError::Truncated { missing: 2 }) => {}
            other => panic!("truncated prefix: {other:?}"),
        }

        // 2. Truncated payload: prefix promises 8 bytes, stream carries 3.
        let mut stream = Vec::new();
        stream.extend_from_slice(&8u32.to_be_bytes());
        stream.extend_from_slice(&[1, 2, 3]);
        match read_all(&stream) {
            Err(FramingError::Truncated { missing: 5 }) => {}
            other => panic!("truncated payload: {other:?}"),
        }

        // 3. Oversized declared length: a 4 GiB-minus-one claim is rejected
        //    before any buffer is touched (the stream has no payload at all,
        //    which would otherwise read as truncation).
        let stream = u32::MAX.to_be_bytes();
        match read_all(&stream) {
            Err(FramingError::Oversized {
                declared,
                max: MAX_FRAME_LEN,
            }) => assert_eq!(declared, u64::from(u32::MAX)),
            other => panic!("oversized: {other:?}"),
        }

        // 4. Garbage payload: frames fine, content rotten. The next layer
        //    (here the dataplane message codec) returns a typed error.
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0xFF, 0xAA, 0x55]).unwrap();
        let frames = read_all(&stream).unwrap();
        assert_eq!(frames.len(), 1);
        match Frame::decode(Bytes::from(frames[0].clone())) {
            Err(WireError::UnknownKind(0xFF)) => {}
            other => panic!("garbage payload: {other:?}"),
        }

        // 5. Empty garbage: a zero-length frame is valid framing; decoding it
        //    as a message is a typed truncation, not a panic.
        let mut stream = Vec::new();
        write_frame(&mut stream, b"").unwrap();
        let frames = read_all(&stream).unwrap();
        match Frame::decode(Bytes::from(frames[0].clone())) {
            Err(WireError::Truncated) => {}
            other => panic!("empty payload decode: {other:?}"),
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn read_all_records(stream: &[u8]) -> Result<Vec<Vec<u8>>, RecordError> {
        let mut r = stream;
        let mut buf = Vec::new();
        let mut records = Vec::new();
        while read_record(&mut r, &mut buf, MAX_FRAME_LEN)? {
            records.push(buf.clone());
        }
        Ok(records)
    }

    #[test]
    fn records_round_trip_and_detect_flipped_bits() {
        let mut stream = Vec::new();
        write_record(&mut stream, b"alpha").unwrap();
        write_record(&mut stream, &[9u8; 300]).unwrap();
        let records = read_all_records(&stream).unwrap();
        assert_eq!(records, vec![b"alpha".to_vec(), vec![9u8; 300]]);

        // Flip one bit anywhere in a record's CRC or payload: the checksum
        // catches it. (A flipped *length* byte instead reads as truncation or
        // an oversized claim — covered by the corpus test below.)
        let mut single = Vec::new();
        write_record(&mut single, b"alpha").unwrap();
        for i in 4..single.len() {
            let mut bad = single.clone();
            bad[i] ^= 0x40;
            match read_all_records(&bad) {
                Err(RecordError::Corrupt { .. }) => {}
                other => panic!("flipped byte {i}: {other:?}"),
            }
        }
    }

    /// The malformed-record corpus: every way a crash or disk corruption can
    /// mangle a WAL tail maps to a typed error that stops recovery at the
    /// last good record — never a panic, never an allocation bomb.
    #[test]
    fn malformed_record_corpus() {
        let mut good = Vec::new();
        write_record(&mut good, b"first").unwrap();

        // 1. Torn tail inside the next record's header.
        let mut stream = good.clone();
        stream.extend_from_slice(&[0x00, 0x00, 0x01]);
        let mut r = &stream[..];
        let mut buf = Vec::new();
        assert!(read_record(&mut r, &mut buf, MAX_FRAME_LEN).unwrap());
        assert_eq!(buf, b"first");
        match read_record(&mut r, &mut buf, MAX_FRAME_LEN) {
            Err(RecordError::Truncated { missing: 5 }) => {}
            other => panic!("torn header: {other:?}"),
        }

        // 2. Torn tail inside a payload: header promises 8, file carries 3.
        let mut stream = good.clone();
        stream.extend_from_slice(&8u32.to_be_bytes());
        stream.extend_from_slice(&crc32(&[1, 2, 3]).to_be_bytes());
        stream.extend_from_slice(&[1, 2, 3]);
        match read_all_records(&stream) {
            Err(RecordError::Truncated { missing: 5 }) => {}
            other => panic!("torn payload: {other:?}"),
        }

        // 3. Bad CRC on a fully present record.
        let mut stream = good.clone();
        stream.extend_from_slice(&4u32.to_be_bytes());
        stream.extend_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        stream.extend_from_slice(&[7, 7, 7, 7]);
        match read_all_records(&stream) {
            Err(RecordError::Corrupt { stored, computed }) => {
                assert_eq!(stored, 0xDEAD_BEEF);
                assert_eq!(computed, crc32(&[7, 7, 7, 7]));
            }
            other => panic!("bad crc: {other:?}"),
        }

        // 4. Zero-length record — the signature of an all-zeros page tail.
        let mut stream = good.clone();
        stream.extend_from_slice(&[0u8; 32]);
        match read_all_records(&stream) {
            Err(RecordError::Corrupt { stored: 0, .. }) => {}
            other => panic!("zero-length record: {other:?}"),
        }

        // 5. Oversized declared length, rejected before any allocation.
        let mut stream = good;
        stream.extend_from_slice(&u32::MAX.to_be_bytes());
        stream.extend_from_slice(&[0u8; 4]);
        match read_all_records(&stream) {
            Err(RecordError::Oversized { declared, .. }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("oversized record: {other:?}"),
        }
    }

    #[test]
    fn oversized_respects_custom_cap() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0u8; 100]).unwrap();
        let mut r = &stream[..];
        let mut buf = Vec::new();
        match read_frame(&mut r, &mut buf, 64) {
            Err(FramingError::Oversized {
                declared: 100,
                max: 64,
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interrupted_reads_are_retried() {
        /// A reader yielding one byte per call with an Interrupted error
        /// before each — the retry loop must absorb them.
        struct Choppy<'a>(&'a [u8], bool);
        impl Read for Choppy<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if !self.1 {
                    self.1 = true;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.1 = false;
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut stream = Vec::new();
        write_frame(&mut stream, b"chop").unwrap();
        let mut r = Choppy(&stream, false);
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME_LEN).unwrap());
        assert_eq!(buf, b"chop");
        assert!(!read_frame(&mut r, &mut buf, MAX_FRAME_LEN).unwrap());
    }
}
