//! # soar-dataplane
//!
//! A distributed, message-passing prototype of SOAR and of the Reduce dataplane it
//! optimizes.
//!
//! The paper describes SOAR-Gather and SOAR-Color as *distributed, asynchronous*
//! algorithms (Sec. 4.2): information flows strictly along tree links — children push
//! their DP tables upward, the destination hands the budget to the root, and coloring
//! decisions cascade back down, after which the Reduce itself runs over the same
//! fabric. This crate realises that description with:
//!
//! * [`wire`] — a compact length-checked frame codec (built on [`bytes`]) for the three
//!   message families (gather tables, coloring assignments, reduce data / end-of-stream);
//! * [`actor`] — the per-switch state machine, which reuses the exact same per-node
//!   dynamic program as the centralized solver
//!   ([`soar_core::node_dp::compute_node_table`]), guaranteeing the two agree;
//! * [`runtime`] — two executors: a deterministic single-threaded one
//!   ([`runtime::run_inline`]) and a thread-per-switch one over std::sync::mpsc channels
//!   ([`runtime::run_threaded`]).
//!
//! The integration tests cross-check the dataplane against the centralized solver
//! (identical utilization) and against the closed-form message accounting of
//! `soar-reduce` (identical per-link Reduce message counts), and verify that the
//! destination receives the exact aggregate of every worker's contribution.
//!
//! ```
//! use soar_dataplane::runtime::run_inline;
//! use soar_topology::builders;
//!
//! let mut tree = builders::complete_binary_tree(7);
//! for (leaf, load) in [(3, 2), (4, 6), (5, 5), (6, 4)] {
//!     tree.set_load(leaf, load);
//! }
//! let report = run_inline(&tree, 2);
//! assert_eq!(report.claimed_cost, 20.0);       // the Fig. 2(d) optimum
//! assert_eq!(report.coloring.blue_nodes(), vec![2, 4]);
//! assert_eq!(report.destination_contributors, 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod framing;
pub mod runtime;
pub mod wire;

pub use actor::{ActorStats, SwitchActor};
pub use framing::{read_frame, write_frame, FramingError, MAX_FRAME_LEN};
pub use runtime::{
    run_inline, run_inline_instance, run_threaded, run_threaded_instance, DataplaneReport,
    DistributedSoarSolver,
};
pub use wire::{Frame, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::expected_total;
    use rand::SeedableRng;
    use soar_reduce::cost;
    use soar_topology::{builders, load::LoadSpec, Tree};

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    fn assert_report_consistent(tree: &Tree, k: usize, report: &DataplaneReport) {
        // The distributed protocol reaches the same optimum as the centralized solver.
        let centralized = soar_core::solve(tree, k);
        assert!(
            (report.claimed_cost - centralized.cost).abs() < 1e-9,
            "distributed cost {} vs centralized {}",
            report.claimed_cost,
            centralized.cost
        );
        let achieved = cost::phi(tree, &report.coloring);
        assert!(
            (achieved - centralized.cost).abs() < 1e-9,
            "the distributed coloring must achieve the optimum"
        );
        assert!(report.blue_used <= k);
        // The Reduce dataplane transports exactly the messages the closed form predicts.
        assert_eq!(
            report.per_edge_data_messages,
            cost::msg_counts(tree, &report.coloring)
        );
        // No worker report is lost or double counted.
        assert_eq!(report.destination_sum, expected_total(tree));
        assert_eq!(report.destination_contributors, tree.total_load());
        assert!(report.total_wire_bytes > 0);
    }

    #[test]
    fn inline_runtime_matches_centralized_solver_on_fig2() {
        let tree = fig2_tree();
        for k in 0..=4 {
            let report = run_inline(&tree, k);
            assert_report_consistent(&tree, k, &report);
        }
    }

    #[test]
    fn threaded_runtime_matches_centralized_solver_on_fig2() {
        let tree = fig2_tree();
        for k in [0usize, 2, 4] {
            let report = run_threaded(&tree, k);
            assert_report_consistent(&tree, k, &report);
        }
    }

    #[test]
    fn inline_and_threaded_agree_on_bt64_with_random_loads() {
        let mut tree = builders::complete_binary_tree_bt(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        tree.apply_leaf_loads(&LoadSpec::paper_power_law(), &mut rng);
        tree.apply_rates(&soar_topology::rates::RateScheme::paper_linear());
        for k in [1usize, 4, 8] {
            let inline = run_inline(&tree, k);
            let threaded = run_threaded(&tree, k);
            assert_report_consistent(&tree, k, &inline);
            assert_report_consistent(&tree, k, &threaded);
            assert!((inline.claimed_cost - threaded.claimed_cost).abs() < 1e-9);
            assert_eq!(inline.coloring, threaded.coloring);
            assert_eq!(
                inline.per_edge_data_messages,
                threaded.per_edge_data_messages
            );
        }
    }

    #[test]
    fn scale_free_topology_with_unit_loads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut tree = builders::scale_free_tree_sf(64, &mut rng);
        for v in 0..tree.n_switches() {
            tree.set_load(v, 1);
        }
        let report = run_inline(&tree, 5);
        assert_report_consistent(&tree, 5, &report);
    }

    #[test]
    fn empty_workload_still_terminates() {
        let tree = builders::complete_binary_tree(7);
        let report = run_inline(&tree, 2);
        assert_eq!(report.destination_sum, 0);
        assert_eq!(report.destination_contributors, 0);
        assert_eq!(report.claimed_cost, 0.0);
        // No blue nodes are needed when there is no traffic.
        assert_eq!(report.blue_used, 0);
    }

    #[test]
    fn availability_restrictions_flow_through_the_dataplane() {
        let mut tree = fig2_tree();
        for v in [0usize, 3, 4, 5, 6] {
            tree.set_available(v, false);
        }
        let report = run_inline(&tree, 2);
        assert_eq!(report.coloring.blue_nodes(), vec![1, 2]);
        assert_eq!(report.claimed_cost, 21.0);
    }

    #[test]
    fn wire_bytes_grow_with_budget() {
        // Larger budgets mean wider DP tables on the wire.
        let tree = fig2_tree();
        let small = run_inline(&tree, 1);
        let large = run_inline(&tree, 6);
        assert!(large.total_wire_bytes > small.total_wire_bytes);
    }
}
