//! Wire format for the control and data messages exchanged by switch actors.
//!
//! The distributed rendition of SOAR (Sec. 4.2 of the paper) exchanges three kinds of
//! messages, all flowing along tree links only:
//!
//! * **gather** (child → parent): the child's `X` table — `X_c(ℓ, i)` for every
//!   distance `ℓ` and budget `i`;
//! * **color** (parent → child): the pair `(i, ℓ*)` telling the child how many blue
//!   nodes to distribute in its subtree and how far it sits from its nearest barrier;
//! * **reduce** (child → parent): the application data of Algorithm 1 — individual
//!   worker reports forwarded by red switches and aggregates emitted by blue switches —
//!   followed by an end-of-stream marker so parents know when a child subtree is done.
//!
//! Frames are length-prefixed and encoded with [`bytes`]; the codec is exercised on
//! every hop of the simulated dataplane so that an actual transport (TCP, RDMA, a P4
//! control channel, ...) could be dropped in without touching the actor logic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Child → parent: the child's gathered `X` table.
    XTable {
        /// The sender switch id.
        child: u32,
        /// Number of `ℓ` rows in the table.
        n_l: u32,
        /// Number of `i` columns (budget + 1).
        n_i: u32,
        /// Row-major values `X(ℓ, i)`.
        values: Vec<f64>,
    },
    /// Parent → child: the coloring-phase assignment `(budget, distance)`.
    Assign {
        /// Number of blue nodes to place in the receiver's subtree.
        budget: u32,
        /// Hop distance of the receiver from its closest blue ancestor (or `d`).
        distance: u32,
    },
    /// Child → parent: one Reduce message, carrying a partial aggregate.
    Data {
        /// Partial aggregate value (e.g. a partial sum) carried by this message.
        value: u64,
        /// Number of original worker reports folded into this message.
        contributors: u64,
    },
    /// Child → parent: the sender has forwarded everything from its subtree.
    Eos {
        /// The sender switch id.
        child: u32,
    },
}

/// Errors raised while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame was complete.
    Truncated,
    /// The frame type byte is unknown.
    UnknownKind(u8),
    /// A declared length is implausible (guards against corrupted frames).
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength(l) => write!(f, "implausible length field {l}"),
        }
    }
}

impl std::error::Error for WireError {}

const KIND_X_TABLE: u8 = 1;
const KIND_ASSIGN: u8 = 2;
const KIND_DATA: u8 = 3;
const KIND_EOS: u8 = 4;

/// Hard cap on the number of table cells a frame may declare (n · k tables of realistic
/// instances stay far below this).
const MAX_TABLE_CELLS: u64 = 64 * 1024 * 1024;

impl Frame {
    /// Encodes this frame (including its one-byte kind tag) into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            Frame::XTable {
                child,
                n_l,
                n_i,
                values,
            } => {
                buf.put_u8(KIND_X_TABLE);
                buf.put_u32(*child);
                buf.put_u32(*n_l);
                buf.put_u32(*n_i);
                buf.put_u64(values.len() as u64);
                for v in values {
                    buf.put_f64(*v);
                }
            }
            Frame::Assign { budget, distance } => {
                buf.put_u8(KIND_ASSIGN);
                buf.put_u32(*budget);
                buf.put_u32(*distance);
            }
            Frame::Data {
                value,
                contributors,
            } => {
                buf.put_u8(KIND_DATA);
                buf.put_u64(*value);
                buf.put_u64(*contributors);
            }
            Frame::Eos { child } => {
                buf.put_u8(KIND_EOS);
                buf.put_u32(*child);
            }
        }
        buf.freeze()
    }

    /// The exact encoded size of this frame in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::XTable { values, .. } => 1 + 4 + 4 + 4 + 8 + 8 * values.len(),
            Frame::Assign { .. } => 1 + 4 + 4,
            Frame::Data { .. } => 1 + 8 + 8,
            Frame::Eos { .. } => 1 + 4,
        }
    }

    /// Decodes a frame from a byte buffer produced by [`Frame::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Frame, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let kind = buf.get_u8();
        match kind {
            KIND_X_TABLE => {
                if buf.remaining() < 4 + 4 + 4 + 8 {
                    return Err(WireError::Truncated);
                }
                let child = buf.get_u32();
                let n_l = buf.get_u32();
                let n_i = buf.get_u32();
                let len = buf.get_u64();
                if len > MAX_TABLE_CELLS || len != (n_l as u64) * (n_i as u64) {
                    return Err(WireError::BadLength(len));
                }
                if buf.remaining() < (len as usize) * 8 {
                    return Err(WireError::Truncated);
                }
                let values = (0..len).map(|_| buf.get_f64()).collect();
                Ok(Frame::XTable {
                    child,
                    n_l,
                    n_i,
                    values,
                })
            }
            KIND_ASSIGN => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::Assign {
                    budget: buf.get_u32(),
                    distance: buf.get_u32(),
                })
            }
            KIND_DATA => {
                if buf.remaining() < 16 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::Data {
                    value: buf.get_u64(),
                    contributors: buf.get_u64(),
                })
            }
            KIND_EOS => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::Eos {
                    child: buf.get_u32(),
                })
            }
            other => Err(WireError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_frame_kinds() {
        let frames = vec![
            Frame::XTable {
                child: 7,
                n_l: 2,
                n_i: 3,
                values: vec![0.0, 1.5, f64::INFINITY, 2.25, 3.0, 4.0],
            },
            Frame::Assign {
                budget: 5,
                distance: 2,
            },
            Frame::Data {
                value: 123_456,
                contributors: 7,
            },
            Frame::Eos { child: 3 },
        ];
        for frame in frames {
            let encoded = frame.encode();
            assert_eq!(encoded.len(), frame.encoded_len());
            let decoded = Frame::decode(encoded).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn infinity_survives_the_wire() {
        let frame = Frame::XTable {
            child: 0,
            n_l: 1,
            n_i: 1,
            values: vec![f64::INFINITY],
        };
        match Frame::decode(frame.encode()).unwrap() {
            Frame::XTable { values, .. } => assert!(values[0].is_infinite()),
            _ => panic!("wrong frame kind"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = Frame::XTable {
            child: 1,
            n_l: 2,
            n_i: 2,
            values: vec![1.0, 2.0, 3.0, 4.0],
        };
        let encoded = frame.encode();
        for cut in [0usize, 1, 5, encoded.len() - 1] {
            let partial = encoded.slice(0..cut);
            assert!(Frame::decode(partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        assert_eq!(Frame::decode(buf.freeze()), Err(WireError::UnknownKind(99)));
    }

    #[test]
    fn inconsistent_table_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(1); // XTable
        buf.put_u32(0);
        buf.put_u32(2);
        buf.put_u32(2);
        buf.put_u64(5); // declares 5 cells but 2 x 2 = 4
        for _ in 0..5 {
            buf.put_f64(0.0);
        }
        assert!(matches!(
            Frame::decode(buf.freeze()),
            Err(WireError::BadLength(5))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::UnknownKind(9).to_string().contains('9'));
        assert!(WireError::BadLength(3).to_string().contains('3'));
    }
}
