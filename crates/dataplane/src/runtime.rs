//! Executors that drive the switch actors: a deterministic single-threaded executor
//! ([`run_inline`]) and a thread-per-switch executor over std::sync::mpsc channels
//! ([`run_threaded`]).
//!
//! Both executors run the full pipeline — distributed SOAR-Gather, distributed
//! SOAR-Color and the Reduce dataplane — and return a [`DataplaneReport`] that the test
//! suites cross-check against the centralized solver (`soar-core`) and the closed-form
//! cost model (`soar-reduce`).

use crate::actor::{ActorStats, Destination, SwitchActor};
use crate::wire::Frame;
use bytes::Bytes;
use soar_reduce::Coloring;
use soar_topology::{NodeId, Tree, ROOT};
use std::collections::VecDeque;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// The outcome of one end-to-end dataplane run.
#[derive(Debug, Clone, PartialEq)]
pub struct DataplaneReport {
    /// The coloring the distributed SOAR protocol settled on.
    pub coloring: Coloring,
    /// The optimal utilization claimed by the root's gathered table (`min_i X_r(1, i)`).
    pub claimed_cost: f64,
    /// Number of blue switches used.
    pub blue_used: usize,
    /// Reduce `Data` messages sent on every switch's up-link.
    pub per_edge_data_messages: Vec<u64>,
    /// Sum of all worker values received by the destination — must equal
    /// [`crate::actor::expected_total`].
    pub destination_sum: u64,
    /// Number of worker reports folded into the messages received by the destination.
    pub destination_contributors: u64,
    /// Number of Reduce `Data` messages the destination received.
    pub destination_data_messages: u64,
    /// Total encoded bytes that crossed any link, over all protocol phases.
    pub total_wire_bytes: u64,
}

/// Payload of a per-switch channel: the sending switch (`None` when the frame
/// arrives from the parent / destination side) and the encoded frame.
type LinkPayload = (Option<NodeId>, Bytes);

/// Per-switch results collected by the threaded executor: color + stats.
type SharedActorResults = Arc<Mutex<Vec<Option<(bool, ActorStats)>>>>;

/// Resolves the child index of `from` within `to`'s child list.
fn child_index(tree: &Tree, to: NodeId, from: NodeId) -> usize {
    tree.children(to)
        .iter()
        .position(|&c| c == from)
        .expect("sender must be a child of the receiver")
}

/// Picks the best budget `i ≤ k` from the root's `X(ℓ = 1, ·)` row (smallest `i` wins
/// ties), returning `(i, cost)`.
fn best_budget(root_x: &[f64], k: usize) -> (usize, f64) {
    let row = |i: usize| root_x[(k + 1) + i]; // ℓ = 1 row of a (n_l × (k+1)) table
    let mut best_i = 0;
    let mut best = row(0);
    for i in 1..=k {
        if row(i) < best - 1e-12 {
            best = row(i);
            best_i = i;
        }
    }
    (best_i, best)
}

/// Runs the whole protocol on a φ-BIC [`Instance`](soar_core::api::Instance) with
/// the deterministic single-threaded executor.
pub fn run_inline_instance(instance: &soar_core::api::Instance) -> DataplaneReport {
    run_inline(instance.tree(), instance.budget())
}

/// Runs the whole protocol on a φ-BIC [`Instance`](soar_core::api::Instance) with
/// one OS thread per switch.
pub fn run_threaded_instance(instance: &soar_core::api::Instance) -> DataplaneReport {
    run_threaded(instance.tree(), instance.budget())
}

/// The distributed protocol as a [`Solver`](soar_core::api::Solver): solving an
/// instance runs the full gather / color / reduce pipeline on the inline executor
/// and reports the coloring the switches settled on.
///
/// Reports under the name `"soar-distributed"`. It is **not** part of the
/// `soar_core::api::solvers` registry (the core crate cannot depend on this one);
/// construct it directly. By SOAR's correctness argument its placements coincide
/// with [`soar_core::api::SoarSolver`], which the integration tests assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedSoarSolver;

impl soar_core::api::Solver for DistributedSoarSolver {
    fn name(&self) -> &str {
        "soar-distributed"
    }

    fn solve(&self, instance: &soar_core::api::Instance) -> soar_core::api::SolveReport {
        let start = std::time::Instant::now();
        let report = run_inline_instance(instance);
        let wall_time = start.elapsed();
        let solution =
            soar_core::Solution::from_coloring(instance.tree(), report.coloring, instance.budget());
        soar_core::api::SolveReport::new(self.name(), instance, solution, wall_time, None)
    }
}

/// Runs the whole protocol on a single thread with deterministic FIFO delivery.
pub fn run_inline(tree: &Tree, k: usize) -> DataplaneReport {
    let n = tree.n_switches();
    let mut actors: Vec<SwitchActor> = (0..n).map(|v| SwitchActor::new(tree, v, k)).collect();

    // (receiver, sender, encoded frame); receiver None means the destination server.
    let mut queue: VecDeque<(Option<NodeId>, NodeId, Bytes)> = VecDeque::new();
    let route = |from: NodeId,
                 out: Vec<(Destination, Bytes)>,
                 queue: &mut VecDeque<(Option<NodeId>, NodeId, Bytes)>| {
        for (dest, bytes) in out {
            match dest {
                Destination::Up => queue.push_back((tree.parent(from), from, bytes)),
                Destination::Child(idx) => {
                    let child = tree.children(from)[idx];
                    queue.push_back((Some(child), from, bytes));
                }
            }
        }
    };

    // Kick off the gather phase at the leaves.
    for (v, actor) in actors.iter_mut().enumerate() {
        let mut out = Vec::new();
        actor.start(&mut out);
        route(v, out, &mut queue);
    }

    // Destination-side state.
    let mut claimed_cost = f64::INFINITY;
    let mut destination_sum = 0u64;
    let mut destination_contributors = 0u64;
    let mut destination_data_messages = 0u64;
    let mut reduce_done = false;

    while let Some((to, from, bytes)) = queue.pop_front() {
        let frame = Frame::decode(bytes).expect("frames produced by actors always decode");
        match to {
            Some(v) => {
                // Frames from the parent (or, for the root, from the destination — which
                // uses ROOT as its placeholder sender id) carry no child index.
                let from_parent = match tree.parent(v) {
                    Some(p) => from == p,
                    None => from == ROOT,
                };
                let from_child = if from_parent {
                    None
                } else {
                    Some(child_index(tree, v, from))
                };
                let mut out = Vec::new();
                actors[v].on_frame(from_child, frame, &mut out);
                route(v, out, &mut queue);
            }
            None => {
                // The destination server.
                match frame {
                    Frame::XTable { n_i, values, .. } => {
                        let (best_i, cost) = best_budget(&values, (n_i - 1) as usize);
                        claimed_cost = cost;
                        // Start the coloring phase.
                        queue.push_back((
                            Some(ROOT),
                            ROOT, // sender id is irrelevant for parent-origin frames
                            Frame::Assign {
                                budget: best_i as u32,
                                distance: 1,
                            }
                            .encode(),
                        ));
                    }
                    Frame::Data {
                        value,
                        contributors,
                    } => {
                        destination_sum += value;
                        destination_contributors += contributors;
                        destination_data_messages += 1;
                    }
                    Frame::Eos { .. } => {
                        reduce_done = true;
                    }
                    Frame::Assign { .. } => unreachable!("the destination never receives Assign"),
                }
            }
        }
    }
    assert!(reduce_done, "the Reduce must terminate");

    finalize_report(
        tree,
        actors.iter().map(|a| (a.is_blue(), a.stats())).collect(),
        claimed_cost,
        destination_sum,
        destination_contributors,
        destination_data_messages,
    )
}

fn finalize_report(
    tree: &Tree,
    per_actor: Vec<(bool, ActorStats)>,
    claimed_cost: f64,
    destination_sum: u64,
    destination_contributors: u64,
    destination_data_messages: u64,
) -> DataplaneReport {
    let mut coloring = Coloring::all_red(tree.n_switches());
    let mut per_edge_data_messages = vec![0u64; tree.n_switches()];
    let mut total_wire_bytes = 0u64;
    for (v, (blue, stats)) in per_actor.into_iter().enumerate() {
        if blue {
            coloring.set_blue(v);
        }
        per_edge_data_messages[v] = stats.data_messages_sent;
        total_wire_bytes += stats.wire_bytes_sent;
    }
    DataplaneReport {
        blue_used: coloring.n_blue(),
        coloring,
        claimed_cost,
        per_edge_data_messages,
        destination_sum,
        destination_contributors,
        destination_data_messages,
        total_wire_bytes,
    }
}

/// Runs the whole protocol with one OS thread per switch, connected by std::sync::mpsc
/// channels — the closest analogue in this repository to a real asynchronous,
/// message-passing deployment of the algorithm.
///
/// Intended for moderate topologies (hundreds of switches); the inline executor covers
/// arbitrary sizes deterministically.
pub fn run_threaded(tree: &Tree, k: usize) -> DataplaneReport {
    let n = tree.n_switches();
    // Channel per switch; payload is (from, encoded frame) where `from` is None for
    // frames arriving from the parent / destination side.
    let mut senders: Vec<Sender<LinkPayload>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<LinkPayload>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let (dest_tx, dest_rx) = unbounded::<(NodeId, Bytes)>();

    let results: SharedActorResults = Arc::new(Mutex::new(vec![None; n]));

    let (claimed_cost, destination_sum, destination_contributors, destination_data_messages) =
        std::thread::scope(|scope| {
            for (v, rx) in receivers.into_iter().enumerate() {
                let parent = tree.parent(v);
                let parent_tx = parent.map(|p| senders[p].clone());
                let child_txs: Vec<Sender<LinkPayload>> = tree
                    .children(v)
                    .iter()
                    .map(|&c| senders[c].clone())
                    .collect();
                let dest_tx = dest_tx.clone();
                let results = Arc::clone(&results);
                let mut actor = SwitchActor::new(tree, v, k);
                let n_children = tree.children(v).len();
                scope.spawn(move || {
                    let route = |out: Vec<(Destination, Bytes)>, sent_eos_up: &mut bool| {
                        for (dest, bytes) in out {
                            let is_eos =
                                matches!(Frame::decode(bytes.clone()), Ok(Frame::Eos { .. }));
                            match dest {
                                Destination::Up => {
                                    if is_eos {
                                        *sent_eos_up = true;
                                    }
                                    match &parent_tx {
                                        Some(tx) => {
                                            let _ = tx.send((Some(v), bytes));
                                        }
                                        None => {
                                            let _ = dest_tx.send((v, bytes));
                                        }
                                    }
                                }
                                Destination::Child(idx) => {
                                    let _ = child_txs[idx].send((None, bytes));
                                }
                            }
                        }
                    };

                    let mut sent_eos_up = false;
                    let mut out = Vec::new();
                    actor.start(&mut out);
                    route(out, &mut sent_eos_up);

                    // A switch is done once it has propagated its end-of-stream marker.
                    while !sent_eos_up {
                        let (from, bytes) = rx.recv().expect("peers keep their channels open");
                        let frame = Frame::decode(bytes).expect("frames always decode");
                        let from_child = from.map(|f| {
                            tree.children(v)
                                .iter()
                                .position(|&c| c == f)
                                .expect("sender is one of our children")
                        });
                        debug_assert!(from_child.map(|i| i < n_children).unwrap_or(true));
                        let mut out = Vec::new();
                        actor.on_frame(from_child, frame, &mut out);
                        route(out, &mut sent_eos_up);
                    }
                    results
                        .lock()
                        .expect("no thread panicked while holding the lock")[v] =
                        Some((actor.is_blue(), actor.stats()));
                });
            }

            // The destination side runs on the spawning thread.
            let mut claimed_cost = f64::INFINITY;
            let mut destination_sum = 0u64;
            let mut destination_contributors = 0u64;
            let mut destination_data_messages = 0u64;
            loop {
                let (_from, bytes) = dest_rx.recv().expect("the root keeps its channel open");
                match Frame::decode(bytes).expect("frames always decode") {
                    Frame::XTable { n_i, values, .. } => {
                        let (best_i, cost) = best_budget(&values, (n_i - 1) as usize);
                        claimed_cost = cost;
                        let assign = Frame::Assign {
                            budget: best_i as u32,
                            distance: 1,
                        };
                        let _ = senders[ROOT].send((None, assign.encode()));
                    }
                    Frame::Data {
                        value,
                        contributors,
                    } => {
                        destination_sum += value;
                        destination_contributors += contributors;
                        destination_data_messages += 1;
                    }
                    Frame::Eos { .. } => break,
                    Frame::Assign { .. } => unreachable!("the destination never receives Assign"),
                }
            }

            // Returning ends the scope, which joins every switch thread.
            (
                claimed_cost,
                destination_sum,
                destination_contributors,
                destination_data_messages,
            )
        });

    // All threads have joined (end of scope); collect their stats.
    let per_actor: Vec<(bool, ActorStats)> = results
        .lock()
        .expect("no thread panicked while holding the lock")
        .iter()
        .map(|entry| entry.expect("every switch thread reported its stats"))
        .collect();

    finalize_report(
        tree,
        per_actor,
        claimed_cost,
        destination_sum,
        destination_contributors,
        destination_data_messages,
    )
}
