//! The switch actor: a self-contained state machine running the distributed rendition
//! of SOAR (gather, color) followed by the Reduce dataplane of Algorithm 1.
//!
//! An actor never touches shared state: it reacts to decoded [`Frame`]s arriving from
//! its parent or children and emits encoded frames towards its parent, its children, or
//! the destination. The same actor code is driven by the single-threaded
//! [`crate::runtime::run_inline`] executor and by the thread-per-switch
//! [`crate::runtime::run_threaded`] executor built on std::sync::mpsc channels.
//!
//! Protocol phases (all pipelined, no global barriers):
//!
//! 1. **Gather** — leaves compute their DP table and push their `X` table upward;
//!    an internal switch folds its children's tables via
//!    [`soar_core::node_dp::compute_node_table`] once the last one arrives, then pushes
//!    its own `X` upward. The root pushes to the destination.
//! 2. **Color** — the destination sends `Assign(k*, 1)` to the root. A switch receiving
//!    `Assign(i, ℓ*)` decides its own color from its stored table, forwards the
//!    appropriate `Assign` to every child (using the recorded split decisions), and
//!    immediately joins the Reduce.
//! 3. **Reduce** — worker reports flow upward as `Data` frames; red switches
//!    store-and-forward, blue switches merge everything from their subtree (and their
//!    local workers) into a single `Data` frame; `Eos` markers propagate termination.

use crate::wire::Frame;
use bytes::Bytes;
use soar_core::node_dp::{child_budgets, compute_node_table, decide_color};
use soar_core::tables::{Color, NodeTable};
use soar_topology::{NodeId, Tree};

/// Where an emitted frame should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// The actor's parent switch (or the destination server for the root).
    Up,
    /// The actor's `idx`-th child (index into its child list).
    Child(usize),
}

/// An encoded frame together with its destination.
pub type OutFrame = (Destination, Bytes);

/// The deterministic value contributed by the `worker_index`-th worker of switch `v`;
/// the destination checks that the aggregated sum over all workers is exact, which
/// verifies that no report is lost or double-counted anywhere in the dataplane.
pub fn worker_value(v: NodeId, worker_index: u64) -> u64 {
    (v as u64 + 1) * 1_000 + worker_index
}

/// Sum of [`worker_value`] over every worker of the tree — the value the destination
/// must end up with.
pub fn expected_total(tree: &Tree) -> u64 {
    tree.node_ids()
        .map(|v| (0..tree.load(v)).map(|w| worker_value(v, w)).sum::<u64>())
        .sum()
}

/// Per-actor statistics, used by the runtimes to cross-check the dataplane against the
/// closed-form cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActorStats {
    /// Reduce `Data` frames sent on the up-link.
    pub data_messages_sent: u64,
    /// Total encoded bytes sent on the up-link (all frame kinds, all phases).
    pub wire_bytes_sent: u64,
    /// Total frames of any kind sent on the up-link.
    pub frames_sent: u64,
}

/// The switch actor.
#[derive(Debug)]
pub struct SwitchActor {
    id: NodeId,
    children: Vec<NodeId>,
    path_rho: Vec<f64>,
    load: u64,
    available: bool,
    k: usize,

    // Gather state.
    child_x: Vec<Option<Vec<f64>>>,
    gather_remaining: usize,
    table: Option<NodeTable>,

    // Color state.
    color: Option<Color>,

    // Reduce state.
    eos_remaining: usize,
    reduce_active: bool,
    agg_value: u64,
    agg_contributors: u64,

    stats: ActorStats,
}

impl SwitchActor {
    /// Builds the actor for switch `v` of the tree, for budget `k`.
    pub fn new(tree: &Tree, v: NodeId, k: usize) -> Self {
        let children = tree.children(v).to_vec();
        SwitchActor {
            id: v,
            gather_remaining: children.len(),
            child_x: vec![None; children.len()],
            eos_remaining: children.len(),
            children,
            path_rho: tree.path_rho(v),
            load: tree.load(v),
            available: tree.available(v),
            k,
            table: None,
            color: None,
            reduce_active: false,
            agg_value: 0,
            agg_contributors: 0,
            stats: ActorStats::default(),
        }
    }

    /// This switch's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The color this switch settled on (available once the Assign frame was processed).
    pub fn color(&self) -> Option<Color> {
        self.color
    }

    /// Whether this switch ended up as an aggregation switch.
    pub fn is_blue(&self) -> bool {
        matches!(self.color, Some(Color::Blue))
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ActorStats {
        self.stats
    }

    /// The gathered DP table (available once all children reported).
    pub fn table(&self) -> Option<&NodeTable> {
        self.table.as_ref()
    }

    /// Kicks off the gather phase; leaves emit their `X` table immediately, internal
    /// switches wait for their children. Must be called exactly once per actor.
    pub fn start(&mut self, out: &mut Vec<OutFrame>) {
        if self.children.is_empty() {
            self.finish_gather(out);
        }
    }

    /// Handles one decoded frame. `from_child` identifies which child sent it (by index
    /// into this switch's child list) or `None` when the frame came from the parent /
    /// destination. Emits any resulting frames into `out`.
    pub fn on_frame(&mut self, from_child: Option<usize>, frame: Frame, out: &mut Vec<OutFrame>) {
        match frame {
            Frame::XTable { values, .. } => {
                let idx = from_child.expect("X tables only ever arrive from children");
                if self.child_x[idx].is_none() {
                    self.gather_remaining -= 1;
                }
                self.child_x[idx] = Some(values);
                if self.gather_remaining == 0 && self.table.is_none() {
                    self.finish_gather(out);
                }
            }
            Frame::Assign { budget, distance } => {
                assert!(from_child.is_none(), "Assign frames come from the parent");
                self.handle_assign(budget as usize, distance as usize, out);
            }
            Frame::Data {
                value,
                contributors,
            } => {
                debug_assert!(from_child.is_some(), "Data frames come from children");
                debug_assert!(self.reduce_active, "coloring always precedes child data");
                match self.color {
                    Some(Color::Blue) => {
                        self.agg_value += value;
                        self.agg_contributors += contributors;
                    }
                    _ => {
                        // Red: store-and-forward.
                        self.send_up(
                            Frame::Data {
                                value,
                                contributors,
                            },
                            out,
                        );
                    }
                }
            }
            Frame::Eos { .. } => {
                debug_assert!(from_child.is_some(), "Eos frames come from children");
                self.eos_remaining -= 1;
                if self.eos_remaining == 0 {
                    self.finish_reduce(out);
                }
            }
        }
    }

    /// Computes this switch's DP table from the children's `X` tables and reports the
    /// own `X` table upward.
    fn finish_gather(&mut self, out: &mut Vec<OutFrame>) {
        let children_x: Vec<Vec<f64>> = self
            .child_x
            .iter()
            .map(|x| x.clone().expect("all children reported"))
            .collect();
        let table = compute_node_table(
            &self.path_rho,
            self.load,
            self.available,
            self.k,
            &children_x,
        );
        let frame = Frame::XTable {
            child: self.id as u32,
            n_l: table.n_l as u32,
            n_i: table.n_i as u32,
            values: table.x.clone(),
        };
        self.table = Some(table);
        // The raw child tables are no longer needed.
        for slot in &mut self.child_x {
            *slot = None;
        }
        self.send_up(frame, out);
    }

    /// Processes the coloring assignment and immediately joins the Reduce.
    fn handle_assign(&mut self, budget: usize, distance: usize, out: &mut Vec<OutFrame>) {
        let table = self
            .table
            .as_ref()
            .expect("the gather phase completes before coloring starts");
        let color = if self.children.is_empty() {
            // Leaf rule of Alg. 4 (with the zero-load guard): aggregate when budgeted,
            // available, and not more expensive than forwarding.
            if budget > 0
                && self.available
                && table.y(distance, budget, Color::Blue) <= table.y(distance, budget, Color::Red)
            {
                Color::Blue
            } else {
                Color::Red
            }
        } else {
            decide_color(table, distance, budget)
        };
        self.color = Some(color);

        // Forward the assignment to the children.
        if !self.children.is_empty() {
            let budgets = child_budgets(table, self.children.len(), distance, budget, color);
            let child_distance = match color {
                Color::Blue => 1,
                Color::Red => distance + 1,
            };
            for (idx, &child_budget) in budgets.iter().enumerate() {
                let frame = Frame::Assign {
                    budget: child_budget as u32,
                    distance: child_distance as u32,
                };
                out.push((Destination::Child(idx), frame.encode()));
            }
        }

        // Join the Reduce: contribute the local workers, and flush immediately if there
        // is nothing to wait for (leaves).
        self.reduce_active = true;
        match color {
            Color::Blue => {
                for w in 0..self.load {
                    self.agg_value += worker_value(self.id, w);
                    self.agg_contributors += 1;
                }
            }
            Color::Red => {
                for w in 0..self.load {
                    self.send_up(
                        Frame::Data {
                            value: worker_value(self.id, w),
                            contributors: 1,
                        },
                        out,
                    );
                }
            }
        }
        if self.eos_remaining == 0 {
            self.finish_reduce(out);
        }
    }

    /// Emits the final aggregate (for blue switches) and the end-of-stream marker.
    fn finish_reduce(&mut self, out: &mut Vec<OutFrame>) {
        if matches!(self.color, Some(Color::Blue)) {
            // A blue switch always reports exactly one aggregate, mirroring the cost
            // model of Eq. 3 (even for an empty subtree).
            self.send_up(
                Frame::Data {
                    value: self.agg_value,
                    contributors: self.agg_contributors,
                },
                out,
            );
        }
        self.send_up(
            Frame::Eos {
                child: self.id as u32,
            },
            out,
        );
    }

    fn send_up(&mut self, frame: Frame, out: &mut Vec<OutFrame>) {
        if matches!(frame, Frame::Data { .. }) {
            self.stats.data_messages_sent += 1;
        }
        let encoded = frame.encode();
        self.stats.wire_bytes_sent += encoded.len() as u64;
        self.stats.frames_sent += 1;
        out.push((Destination::Up, encoded));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    #[test]
    fn worker_values_are_distinct_per_switch() {
        assert_ne!(worker_value(0, 0), worker_value(1, 0));
        assert_ne!(worker_value(2, 0), worker_value(2, 1));
        let mut tree = builders::path(2);
        tree.set_load(1, 3);
        assert_eq!(
            expected_total(&tree),
            worker_value(1, 0) + worker_value(1, 1) + worker_value(1, 2)
        );
    }

    #[test]
    fn leaf_actor_emits_its_table_on_start() {
        let mut tree = builders::path(2);
        tree.set_load(1, 2);
        let mut actor = SwitchActor::new(&tree, 1, 1);
        let mut out = Vec::new();
        actor.start(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Destination::Up);
        match Frame::decode(out[0].1.clone()).unwrap() {
            Frame::XTable {
                child,
                n_l,
                n_i,
                values,
            } => {
                assert_eq!(child, 1);
                assert_eq!(n_l, 3);
                assert_eq!(n_i, 2);
                assert_eq!(values.len(), 6);
            }
            _ => panic!("expected an XTable frame"),
        }
        assert!(actor.table().is_some());
        assert_eq!(actor.stats().frames_sent, 1);
    }

    #[test]
    fn internal_actor_waits_for_all_children() {
        let mut tree = builders::star(3);
        tree.set_load(1, 1);
        tree.set_load(2, 1);
        let mut leaf1 = SwitchActor::new(&tree, 1, 1);
        let mut leaf2 = SwitchActor::new(&tree, 2, 1);
        let mut root = SwitchActor::new(&tree, 0, 1);
        let mut out = Vec::new();
        root.start(&mut out);
        assert!(out.is_empty(), "internal switches wait for their children");

        let mut leaf_out = Vec::new();
        leaf1.start(&mut leaf_out);
        leaf2.start(&mut leaf_out);
        let x1 = Frame::decode(leaf_out[0].1.clone()).unwrap();
        let x2 = Frame::decode(leaf_out[1].1.clone()).unwrap();
        root.on_frame(Some(0), x1, &mut out);
        assert!(out.is_empty());
        root.on_frame(Some(1), x2, &mut out);
        assert_eq!(out.len(), 1, "the root reports upward after the last child");
        assert!(root.table().is_some());
    }

    #[test]
    fn assign_colors_and_cascades() {
        // Star with three equally loaded leaves, k = 1: the root is the strictly best
        // single aggregation point (10 vs 14 for any leaf placement).
        let mut tree = builders::star(4);
        tree.set_load(1, 3);
        tree.set_load(2, 3);
        tree.set_load(3, 3);
        let mut leaves: Vec<SwitchActor> = (1..4).map(|v| SwitchActor::new(&tree, v, 1)).collect();
        let mut root = SwitchActor::new(&tree, 0, 1);
        let mut scratch = Vec::new();
        for leaf in &mut leaves {
            leaf.start(&mut scratch);
        }
        let mut root_out = Vec::new();
        for (idx, (_, bytes)) in scratch.iter().enumerate() {
            root.on_frame(
                Some(idx),
                Frame::decode(bytes.clone()).unwrap(),
                &mut root_out,
            );
        }
        root_out.clear();

        root.on_frame(
            None,
            Frame::Assign {
                budget: 1,
                distance: 1,
            },
            &mut root_out,
        );
        assert!(
            root.is_blue(),
            "the root is the best single aggregation point"
        );
        // The root forwarded an Assign with budget 0 to each child.
        let child_assigns: Vec<_> = root_out
            .iter()
            .filter(|(dest, _)| matches!(dest, Destination::Child(_)))
            .collect();
        assert_eq!(child_assigns.len(), 3);
        for (_, bytes) in child_assigns {
            match Frame::decode(bytes.clone()).unwrap() {
                Frame::Assign { budget, distance } => {
                    assert_eq!(budget, 0);
                    assert_eq!(distance, 1);
                }
                _ => panic!("expected Assign"),
            }
        }
    }
}
