//! Import/export helpers: Graphviz DOT rendering and a JSON-friendly exchange format.
//!
//! [`Tree`] itself derives `serde::{Serialize, Deserialize}`, so it can be stored
//! directly with any serde format. This module additionally provides:
//!
//! * [`to_dot`] — a Graphviz rendering (switches, loads, rates and optionally a
//!   coloring), convenient for eyeballing small instances such as the paper's figures;
//! * [`TreeSpec`] — a flat, human-editable exchange structure (parent vector + rates +
//!   loads + availability) that round-trips to and from [`Tree`].

use crate::{NodeId, Tree, TreeError};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Nodes to highlight as aggregation (blue) switches.
    pub blue: Vec<NodeId>,
    /// Whether to print the per-link rate on every edge label.
    pub show_rates: bool,
    /// Whether to print the load inside every node label.
    pub show_loads: bool,
}

/// Renders the tree (plus the virtual destination `d`) as a Graphviz DOT digraph with
/// edges directed towards the destination, mirroring the figures of the paper.
pub fn to_dot(tree: &Tree, options: &DotOptions) -> String {
    let mut out = String::new();
    let blue: std::collections::HashSet<NodeId> = options.blue.iter().copied().collect();
    writeln!(out, "digraph soar {{").unwrap();
    writeln!(out, "  rankdir=BT;").unwrap();
    writeln!(
        out,
        "  d [shape=box, style=filled, fillcolor=white, label=\"d\"];"
    )
    .unwrap();
    for v in tree.node_ids() {
        let fill = if blue.contains(&v) {
            "lightblue"
        } else {
            "lightcoral"
        };
        let mut label = format!("s{v}");
        if options.show_loads && tree.load(v) > 0 {
            write!(label, "\\nL={}", tree.load(v)).unwrap();
        }
        writeln!(
            out,
            "  n{v} [shape=circle, style=filled, fillcolor={fill}, label=\"{label}\"];"
        )
        .unwrap();
    }
    for v in tree.node_ids() {
        let target = match tree.parent(v) {
            Some(p) => format!("n{p}"),
            None => "d".to_string(),
        };
        if options.show_rates {
            writeln!(out, "  n{v} -> {target} [label=\"w={}\"];", tree.rate(v)).unwrap();
        } else {
            writeln!(out, "  n{v} -> {target};").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// A flat, order-independent description of a tree, convenient for JSON files that are
/// edited by hand or produced by external tooling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeSpec {
    /// `parents[v]` is the parent of switch `v`; `parents[0]` is ignored (the root's
    /// parent is the destination). Must satisfy `parents[v] < v`.
    pub parents: Vec<NodeId>,
    /// Rate of the up-link of every switch (`rates[0]` is the `(r, d)` link).
    pub rates: Vec<f64>,
    /// Load `L(v)` of every switch.
    pub loads: Vec<u64>,
    /// Availability mask Λ; empty means "all available".
    #[serde(default)]
    pub available: Vec<bool>,
}

impl TreeSpec {
    /// Captures an existing tree into a spec.
    pub fn from_tree(tree: &Tree) -> Self {
        TreeSpec {
            parents: tree
                .node_ids()
                .map(|v| tree.parent(v).unwrap_or(0))
                .collect(),
            rates: tree.node_ids().map(|v| tree.rate(v)).collect(),
            loads: tree.loads(),
            available: tree.availability(),
        }
    }

    /// Builds the tree described by this spec.
    pub fn build(&self) -> Result<Tree, TreeError> {
        if self.rates.len() != self.parents.len() || self.loads.len() != self.parents.len() {
            return Err(TreeError::Inconsistent(
                "parents, rates and loads must have the same length".into(),
            ));
        }
        if !self.available.is_empty() && self.available.len() != self.parents.len() {
            return Err(TreeError::Inconsistent(
                "availability mask length mismatch".into(),
            ));
        }
        let mut tree = Tree::from_parents(&self.parents, &self.rates)?;
        tree.set_loads(&self.loads);
        if !self.available.is_empty() {
            tree.set_availability(&self.available);
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn sample_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t.set_available(0, false);
        t.set_rate(0, 4.0);
        t
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let t = sample_tree();
        let dot = to_dot(
            &t,
            &DotOptions {
                blue: vec![1, 2],
                show_rates: true,
                show_loads: true,
            },
        );
        assert!(dot.starts_with("digraph"));
        for v in t.node_ids() {
            assert!(dot.contains(&format!("n{v} [")));
        }
        // Root connects to the destination, others to their parents.
        assert!(dot.contains("n0 -> d"));
        assert!(dot.contains("n3 -> n1"));
        assert!(dot.contains("lightblue"));
        assert!(dot.contains("lightcoral"));
        assert!(dot.contains("L=6"));
        assert!(dot.contains("w=4"));
    }

    #[test]
    fn dot_minimal_options() {
        let t = sample_tree();
        let dot = to_dot(&t, &DotOptions::default());
        assert!(!dot.contains("w="));
        assert!(!dot.contains("L="));
    }

    #[test]
    fn spec_round_trip() {
        let t = sample_tree();
        let spec = TreeSpec::from_tree(&t);
        let rebuilt = spec.build().unwrap();
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn spec_json_round_trip() {
        let t = sample_tree();
        let spec = TreeSpec::from_tree(&t);
        let json = serde_json::to_string(&spec).unwrap();
        let parsed: TreeSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, parsed);
        assert_eq!(parsed.build().unwrap(), t);
    }

    #[test]
    fn tree_serde_round_trip() {
        let t = sample_tree();
        let json = serde_json::to_string(&t).unwrap();
        let parsed: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, parsed);
        parsed.validate().unwrap();
    }

    #[test]
    fn spec_validation_errors() {
        let spec = TreeSpec {
            parents: vec![0, 0],
            rates: vec![1.0],
            loads: vec![0, 0],
            available: vec![],
        };
        assert!(spec.build().is_err());

        let spec = TreeSpec {
            parents: vec![0, 0],
            rates: vec![1.0, 1.0],
            loads: vec![0, 0],
            available: vec![true],
        };
        assert!(spec.build().is_err());
    }

    #[test]
    fn spec_empty_availability_means_all_available() {
        let spec = TreeSpec {
            parents: vec![0, 0, 0],
            rates: vec![1.0, 1.0, 2.0],
            loads: vec![0, 3, 4],
            available: vec![],
        };
        let t = spec.build().unwrap();
        assert_eq!(t.n_available(), 3);
        assert_eq!(t.load(2), 4);
        assert_eq!(t.rate(2), 2.0);
    }
}
