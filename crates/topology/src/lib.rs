//! # soar-topology
//!
//! Tree-network substrate used throughout the SOAR reproduction
//! (Segal, Avin, Scalosub — *"SOAR: Minimizing Network Utilization with Bounded
//! In-network Computing"*, CoNEXT 2021).
//!
//! The paper models a datacenter aggregation network as a **weighted tree**
//! `T = (V, E, ω)` over a set of switches `S`, rooted at a designated switch `r`,
//! with a destination server `d` attached above the root via the link `(r, d)`.
//! Every switch `s` is connected to `L(s)` worker servers (its *load*), every link
//! `e` has a rate `ω(e)` (messages per second) and a transmission time
//! `ρ(e) = 1 / ω(e)`, and a subset `Λ ⊆ S` of switches is *available* to act as
//! in-network aggregation points.
//!
//! This crate provides:
//!
//! * [`Tree`] — an arena-based representation of the rooted, weighted, loaded tree,
//!   with the derived quantities the SOAR dynamic program needs (depths,
//!   `ρ(v, Aᵉ_v)` prefix sums, traversal orders, subtree sizes, ...).
//! * [`TreeBuilder`] — safe incremental construction of arbitrary trees.
//! * [`builders`] — generators for the topologies used in the paper's evaluation:
//!   complete binary trees `BT(n)`, complete k-ary trees, random trees,
//!   random preferential-attachment (scale-free) trees `SF(n)`, paths, stars,
//!   caterpillars and two-tier "fat-tree style" aggregation trees.
//! * [`load`] — the load distributions of Sec. 5 (uniform `[4, 6]`, the power-law
//!   distribution with mean 5, constant and point loads) and helpers for placing
//!   load on leaves or on every switch.
//! * [`rates`] — the link-rate schemes of Sec. 5 (constant, linearly increasing
//!   towards the root, exponentially increasing towards the root) plus custom rates.
//! * [`io`] — DOT export and a JSON-friendly serde representation.
//!
//! ## Conventions
//!
//! * Switches are identified by dense indices [`NodeId`] (`usize`); the root `r`
//!   always has id [`ROOT`] (= 0).
//! * The destination server `d` is *not* a node of the tree; it is represented by
//!   the virtual parent of the root. The link `(r, d)` is stored as the root's
//!   up-link, so every node — including the root — has exactly one up-link rate.
//! * `D(v)` ("depth") is the hop distance from `v` to the root `r`, as in the paper.
//!   The hop distance from `v` to the destination `d` is `D(v) + 1` and is exposed
//!   as [`Tree::dist_to_dest`].
//!
//! ## Quick example
//!
//! ```
//! use soar_topology::{builders, load::LoadSpec, rates::RateScheme};
//!
//! // The BT(256) topology of the paper: 255 switches, 128 leaf (ToR) switches.
//! let mut tree = builders::complete_binary_tree_bt(256);
//! assert_eq!(tree.n_switches(), 255);
//! assert_eq!(tree.leaves().count(), 128);
//!
//! // Uniform integer load in [4, 6] on the leaves, constant unit rates.
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! tree.apply_leaf_loads(&LoadSpec::uniform(4, 6), &mut rng);
//! tree.apply_rates(&RateScheme::Constant(1.0));
//! assert!(tree.total_load() >= 4 * 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod io;
pub mod load;
pub mod rates;
mod tree;

pub use tree::{Node, NodeId, Tree, TreeBuilder, TreeError, ROOT};

/// Convenient prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::builders;
    pub use crate::load::{LoadPlacement, LoadSpec};
    pub use crate::rates::RateScheme;
    pub use crate::{Node, NodeId, Tree, TreeBuilder, ROOT};
}
