//! Link-rate schemes.
//!
//! Sec. 5 of the paper evaluates three scalings of the link rates `ω(e)`:
//!
//! * **constant** — every link has rate 1;
//! * **linear** — the rate increases by 1 per level, starting from 1 at the leaf links
//!   and growing towards the root (and the `(r, d)` link);
//! * **exponential** — the rate doubles per level, starting from 1 at the leaf links.
//!
//! A link's *level* is measured from the bottom of the tree: the up-link of a switch at
//! depth `D(v)` has level `h(T) - D(v)`, so the deepest switches' up-links have level 0
//! (rate 1) and the root's `(r, d)` up-link has level `h(T)` — the fastest link, which
//! matches the usual datacenter picture of faster links closer to the core.

use crate::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// A scheme assigning a rate to every up-link of the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateScheme {
    /// Every link gets the same rate.
    Constant(f64),
    /// `ω = base + step · level`, with `level = h(T) − D(v)`.
    LinearByLevel {
        /// Rate of the deepest (leaf-side) links.
        base: f64,
        /// Additive increment per level towards the root.
        step: f64,
    },
    /// `ω = base · factor^level`, with `level = h(T) − D(v)`.
    ExponentialByLevel {
        /// Rate of the deepest (leaf-side) links.
        base: f64,
        /// Multiplicative factor per level towards the root.
        factor: f64,
    },
    /// Explicit per-switch rates; entry `v` is the rate of the up-link of switch `v`.
    Explicit(Vec<f64>),
}

impl RateScheme {
    /// The paper's constant scheme (`ω = 1`).
    pub fn paper_constant() -> Self {
        RateScheme::Constant(1.0)
    }

    /// The paper's linear scheme (`ω = i`, increasing by 1 per level from 1 at the leaves).
    pub fn paper_linear() -> Self {
        RateScheme::LinearByLevel {
            base: 1.0,
            step: 1.0,
        }
    }

    /// The paper's exponential scheme (`ω = 2^i`, doubling per level from 1 at the leaves).
    pub fn paper_exponential() -> Self {
        RateScheme::ExponentialByLevel {
            base: 1.0,
            factor: 2.0,
        }
    }

    /// Parses the compact CLI syntax used by `soar instance --rates`:
    ///
    /// * `constant` — the paper's `ω = 1`; `constant:<w>` for an explicit rate;
    /// * `linear` — the paper's `ω = 1 + level`; `linear:<base>,<step>`;
    /// * `exponential` — the paper's `ω = 2^level`;
    ///   `exponential:<base>,<factor>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, args) = match text.split_once(':') {
            Some((kind, args)) => (kind, Some(args)),
            None => (text, None),
        };
        let numbers = |args: Option<&str>| -> Result<Vec<f64>, String> {
            args.map_or(Ok(Vec::new()), |args| {
                args.split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| {
                        part.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|r| r.is_finite())
                            .ok_or_else(|| format!("invalid rate value `{part}` in `{text}`"))
                    })
                    .collect()
            })
        };
        match kind {
            "constant" => match numbers(args)?.as_slice() {
                [] => Ok(RateScheme::paper_constant()),
                [w] if *w > 0.0 => Ok(RateScheme::Constant(*w)),
                [w] => Err(format!("constant rate must be positive, got {w}")),
                _ => Err(format!(
                    "`constant` takes one rate (e.g. constant:2), got `{text}`"
                )),
            },
            "linear" => match numbers(args)?.as_slice() {
                [] => Ok(RateScheme::paper_linear()),
                // base > 0 and step >= 0 keep every level's rate positive.
                [base, step] if *base > 0.0 && *step >= 0.0 => Ok(RateScheme::LinearByLevel {
                    base: *base,
                    step: *step,
                }),
                [base, step] => Err(format!(
                    "linear rates need base > 0 and step >= 0, got base {base}, step {step}"
                )),
                _ => Err(format!(
                    "`linear` takes `base,step` (e.g. linear:1,1), got `{text}`"
                )),
            },
            "exponential" => match numbers(args)?.as_slice() {
                [] => Ok(RateScheme::paper_exponential()),
                [base, factor] if *base > 0.0 && *factor > 0.0 => {
                    Ok(RateScheme::ExponentialByLevel {
                        base: *base,
                        factor: *factor,
                    })
                }
                [base, factor] => Err(format!(
                    "exponential rates need base > 0 and factor > 0, got base {base}, \
                     factor {factor}"
                )),
                _ => Err(format!(
                    "`exponential` takes `base,factor` (e.g. exponential:1,2), got `{text}`"
                )),
            },
            other => Err(format!(
                "unknown rate scheme `{other}` (choose constant, linear or exponential)"
            )),
        }
    }

    /// The rate this scheme assigns to the up-link of switch `v` in `tree`.
    pub fn rate_for(&self, tree: &Tree, v: NodeId) -> f64 {
        let level = (tree.height() - tree.depth(v)) as f64;
        match self {
            RateScheme::Constant(r) => *r,
            RateScheme::LinearByLevel { base, step } => base + step * level,
            RateScheme::ExponentialByLevel { base, factor } => base * factor.powf(level),
            RateScheme::Explicit(rates) => rates[v],
        }
    }

    /// A short human-readable label, used by the benchmark harness when printing series.
    pub fn label(&self) -> String {
        match self {
            RateScheme::Constant(r) => format!("constant(w={r})"),
            RateScheme::LinearByLevel { base, step } => format!("linear(base={base},step={step})"),
            RateScheme::ExponentialByLevel { base, factor } => {
                format!("exponential(base={base},factor={factor})")
            }
            RateScheme::Explicit(_) => "explicit".to_string(),
        }
    }
}

impl Tree {
    /// Applies a rate scheme to every up-link of the tree.
    pub fn apply_rates(&mut self, scheme: &RateScheme) {
        for v in 0..self.n_switches() {
            let rate = scheme.rate_for(self, v);
            self.set_rate(v, rate);
        }
    }

    /// Returns a clone of this tree with the given rate scheme applied.
    pub fn with_rates(&self, scheme: &RateScheme) -> Tree {
        let mut t = self.clone();
        t.apply_rates(scheme);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cli_syntax_parses_into_schemes() {
        assert_eq!(
            RateScheme::parse("constant"),
            Ok(RateScheme::paper_constant())
        );
        assert_eq!(
            RateScheme::parse("constant:2"),
            Ok(RateScheme::Constant(2.0))
        );
        assert_eq!(RateScheme::parse("linear"), Ok(RateScheme::paper_linear()));
        assert_eq!(
            RateScheme::parse("linear:1,0.5"),
            Ok(RateScheme::LinearByLevel {
                base: 1.0,
                step: 0.5
            })
        );
        assert_eq!(
            RateScheme::parse("exponential"),
            Ok(RateScheme::paper_exponential())
        );
        assert_eq!(
            RateScheme::parse("exponential:1,3"),
            Ok(RateScheme::ExponentialByLevel {
                base: 1.0,
                factor: 3.0
            })
        );
        for bad in [
            "quadratic",
            "constant:0",
            "constant:x",
            "linear:1",
            "linear:-5,1",
            "linear:1,-1",
            "exponential:0,2",
            "exponential:1,-2",
            "exponential:1,2,3",
        ] {
            assert!(RateScheme::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn constant_rates() {
        let mut t = builders::complete_binary_tree(7);
        t.apply_rates(&RateScheme::Constant(2.0));
        for v in t.node_ids() {
            assert_eq!(t.rate(v), 2.0);
            assert_eq!(t.rho(v), 0.5);
        }
    }

    #[test]
    fn linear_rates_increase_towards_the_root() {
        let mut t = builders::complete_binary_tree(7); // height 2
        t.apply_rates(&RateScheme::paper_linear());
        // Leaves (depth 2): level 0 → rate 1; depth 1: level 1 → rate 2; root: level 2 → rate 3.
        assert_eq!(t.rate(3), 1.0);
        assert_eq!(t.rate(1), 2.0);
        assert_eq!(t.rate(0), 3.0);
    }

    #[test]
    fn exponential_rates_double_per_level() {
        let mut t = builders::complete_binary_tree_bt(256); // height 7
        t.apply_rates(&RateScheme::paper_exponential());
        let leaf = t.leaves().next().unwrap();
        assert_eq!(t.rate(leaf), 1.0);
        assert_eq!(t.rate(0), 128.0);
        // Rates strictly decrease with depth.
        for v in t.node_ids().skip(1) {
            let p = t.parent(v).unwrap();
            assert!(t.rate(p) > t.rate(v) || t.depth(p) == t.depth(v));
        }
    }

    #[test]
    fn explicit_rates() {
        let mut t = builders::path(3);
        t.apply_rates(&RateScheme::Explicit(vec![4.0, 2.0, 1.0]));
        assert_eq!(t.rate(0), 4.0);
        assert_eq!(t.rate(1), 2.0);
        assert_eq!(t.rate(2), 1.0);
    }

    #[test]
    fn with_rates_does_not_mutate_original() {
        let t = builders::complete_binary_tree(7);
        let t2 = t.with_rates(&RateScheme::Constant(5.0));
        assert_eq!(t.rate(0), 1.0);
        assert_eq!(t2.rate(0), 5.0);
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(RateScheme::paper_constant().label().contains("constant"));
        assert!(RateScheme::paper_linear().label().contains("linear"));
        assert!(RateScheme::paper_exponential()
            .label()
            .contains("exponential"));
        assert_eq!(RateScheme::Explicit(vec![1.0]).label(), "explicit");
    }

    #[test]
    fn unequal_leaf_depths_still_get_positive_rates() {
        // A caterpillar has leaves at several depths; the scheme keys off depth, so all
        // rates stay positive and increase towards the root.
        let mut t = builders::caterpillar(4, 1);
        t.apply_rates(&RateScheme::paper_linear());
        for v in t.node_ids() {
            assert!(t.rate(v) >= 1.0);
        }
        assert!(t.rate(0) > t.rate(3));
    }
}
