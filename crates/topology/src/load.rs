//! Network-load generators: how many worker servers hang off each switch.
//!
//! Sec. 5 of the paper uses two randomized distributions for the load at the leaves of
//! `BT(n)`:
//!
//! * **uniform** — an integer picked uniformly at random in `[4, 6]`
//!   (mean 5, variance ≈ 0.66, the paper reports 0.65625);
//! * **power-law** — a heavy-tailed integer distribution with mean 5, variance ≈ 97,
//!   minimum 1 and maximum 63.
//!
//! The power-law is reproduced here as a truncated discrete power law
//! `P(x) ∝ x^(-α)` on `{1, ..., 63}` whose exponent `α` is solved numerically so the
//! mean matches the requested target (5 by default). Appendix B additionally uses a
//! **constant** load of 1 on *every* switch of the scale-free topologies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where load should be placed on the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadPlacement {
    /// Only the leaf switches receive load (the ToR switches of the `BT(n)` scenarios).
    Leaves,
    /// Every switch receives load (the scale-free scenarios of Appendix B).
    AllSwitches,
}

/// A specification of the per-switch load distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Every selected switch gets exactly this load.
    Constant(u64),
    /// Uniform integer load in `[min, max]` (inclusive).
    Uniform {
        /// Minimum load (inclusive).
        min: u64,
        /// Maximum load (inclusive).
        max: u64,
    },
    /// Truncated discrete power law `P(x) ∝ x^(-alpha)` on `[min, max]`.
    PowerLaw {
        /// Minimum load (inclusive), at least 1.
        min: u64,
        /// Maximum load (inclusive).
        max: u64,
        /// Exponent `α > 0`.
        alpha: f64,
    },
    /// All load concentrated on a single switch (index into the *selected* switches).
    Point {
        /// Index of the selected switch (e.g. the i-th leaf) that receives all load.
        index: usize,
        /// The load placed on that switch.
        load: u64,
    },
    /// An explicit load value per selected switch, cycled if shorter than the selection.
    Explicit(Vec<u64>),
}

impl LoadSpec {
    /// Uniform integer load in `[min, max]`.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min <= max, "uniform load requires min <= max");
        LoadSpec::Uniform { min, max }
    }

    /// The paper's uniform distribution: integers in `[4, 6]`, mean 5.
    pub fn paper_uniform() -> Self {
        LoadSpec::uniform(4, 6)
    }

    /// Truncated discrete power law with an explicit exponent.
    pub fn power_law(min: u64, max: u64, alpha: f64) -> Self {
        assert!(min >= 1, "power-law load requires min >= 1");
        assert!(min <= max, "power-law load requires min <= max");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        LoadSpec::PowerLaw { min, max, alpha }
    }

    /// Truncated discrete power law on `[min, max]` whose exponent is solved so that
    /// the distribution mean equals `target_mean`.
    ///
    /// # Panics
    ///
    /// Panics if the target mean is not achievable on `[min, max]`.
    pub fn power_law_with_mean(min: u64, max: u64, target_mean: f64) -> Self {
        let alpha = solve_power_law_alpha(min, max, target_mean);
        LoadSpec::PowerLaw { min, max, alpha }
    }

    /// The paper's power-law distribution: support `[1, 63]`, mean 5 (variance ≈ 97).
    pub fn paper_power_law() -> Self {
        LoadSpec::power_law_with_mean(1, 63, 5.0)
    }

    /// Parses the compact CLI syntax used by `soar instance --load`:
    ///
    /// * `power-law` — the paper's heavy-tailed distribution
    ///   ([`LoadSpec::paper_power_law`]); `power-law:<min>,<max>,<mean>` solves
    ///   the exponent for an explicit support and mean;
    /// * `uniform` — the paper's `[4, 6]` draw; `uniform:<min>,<max>` for an
    ///   explicit range;
    /// * `constant:<c>` — every selected switch gets load `c` (bare `constant`
    ///   means 1);
    /// * `explicit:<v1>,<v2>,...` — explicit per-switch values, cycled.
    ///
    /// Errors are human-readable and name the offending piece.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, args) = match text.split_once(':') {
            Some((kind, args)) => (kind, Some(args)),
            None => (text, None),
        };
        let numbers = |args: Option<&str>| -> Result<Vec<u64>, String> {
            args.map_or(Ok(Vec::new()), |args| {
                args.split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| {
                        part.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("invalid load value `{part}` in `{text}`"))
                    })
                    .collect()
            })
        };
        match kind {
            "power-law" => match args {
                None => Ok(LoadSpec::paper_power_law()),
                Some(args) => {
                    let parts: Vec<&str> = args.split(',').collect();
                    if parts.len() != 3 {
                        return Err(format!(
                            "`power-law` takes `min,max,mean` (e.g. power-law:1,63,5), got `{args}`"
                        ));
                    }
                    let min = parts[0]
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("invalid power-law min `{}`", parts[0]))?;
                    let max = parts[1]
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("invalid power-law max `{}`", parts[1]))?;
                    let mean = parts[2]
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| format!("invalid power-law mean `{}`", parts[2]))?;
                    if min < 1 || min > max {
                        return Err(format!(
                            "power-law support needs 1 <= min <= max, got [{min}, {max}]"
                        ));
                    }
                    if !(mean > min as f64 && mean < max as f64) {
                        return Err(format!(
                            "power-law mean {mean} is outside the open support ({min}, {max})"
                        ));
                    }
                    Ok(LoadSpec::power_law_with_mean(min, max, mean))
                }
            },
            "uniform" => match numbers(args)?.as_slice() {
                [] => Ok(LoadSpec::paper_uniform()),
                [min, max] if min <= max => Ok(LoadSpec::uniform(*min, *max)),
                [min, max] => Err(format!("uniform load needs min <= max, got [{min}, {max}]")),
                _ => Err(format!(
                    "`uniform` takes `min,max` (e.g. uniform:4,6), got `{text}`"
                )),
            },
            "constant" => match numbers(args)?.as_slice() {
                [] => Ok(LoadSpec::Constant(1)),
                [c] => Ok(LoadSpec::Constant(*c)),
                _ => Err(format!(
                    "`constant` takes one value (e.g. constant:5), got `{text}`"
                )),
            },
            "explicit" => {
                let values = numbers(args)?;
                if values.is_empty() {
                    return Err(format!(
                        "`explicit` needs at least one value (e.g. explicit:2,6,5,4), got `{text}`"
                    ));
                }
                Ok(LoadSpec::Explicit(values))
            }
            other => Err(format!(
                "unknown load distribution `{other}` \
                 (choose power-law, uniform, constant:<c> or explicit:<v1,v2,...>)"
            )),
        }
    }

    /// Draws one load value.
    pub fn sample<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> u64 {
        match self {
            LoadSpec::Constant(c) => *c,
            LoadSpec::Uniform { min, max } => rng.random_range(*min..=*max),
            LoadSpec::PowerLaw { min, max, alpha } => {
                sample_truncated_power_law(*min, *max, *alpha, rng)
            }
            LoadSpec::Point { index: i, load } => {
                if index == *i {
                    *load
                } else {
                    0
                }
            }
            LoadSpec::Explicit(values) => {
                if values.is_empty() {
                    0
                } else {
                    values[index % values.len()]
                }
            }
        }
    }

    /// Exact mean of the distribution (useful for normalisation and tests).
    pub fn mean(&self) -> f64 {
        match self {
            LoadSpec::Constant(c) => *c as f64,
            LoadSpec::Uniform { min, max } => (*min + *max) as f64 / 2.0,
            LoadSpec::PowerLaw { min, max, alpha } => power_law_mean(*min, *max, *alpha),
            LoadSpec::Point { load, .. } => *load as f64,
            LoadSpec::Explicit(values) => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<u64>() as f64 / values.len() as f64
                }
            }
        }
    }

    /// Exact variance of the distribution.
    pub fn variance(&self) -> f64 {
        match self {
            LoadSpec::Constant(_) | LoadSpec::Point { .. } => 0.0,
            LoadSpec::Uniform { min, max } => {
                // Discrete uniform over k = max - min + 1 consecutive integers.
                let k = (*max - *min + 1) as f64;
                (k * k - 1.0) / 12.0
            }
            LoadSpec::PowerLaw { min, max, alpha } => {
                let mean = power_law_mean(*min, *max, *alpha);
                let second = power_law_moment(*min, *max, *alpha, 2);
                second - mean * mean
            }
            LoadSpec::Explicit(values) => {
                if values.is_empty() {
                    return 0.0;
                }
                let mean = self.mean();
                values
                    .iter()
                    .map(|&v| {
                        let d = v as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / values.len() as f64
            }
        }
    }
}

/// The probability mass function of the truncated discrete power law, as a vector over
/// the support `[min, max]`.
fn power_law_pmf(min: u64, max: u64, alpha: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (min..=max).map(|x| (x as f64).powf(-alpha)).collect();
    let z: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= z;
    }
    weights
}

fn power_law_moment(min: u64, max: u64, alpha: f64, power: u32) -> f64 {
    power_law_pmf(min, max, alpha)
        .iter()
        .zip(min..=max)
        .map(|(p, x)| p * (x as f64).powi(power as i32))
        .sum()
}

fn power_law_mean(min: u64, max: u64, alpha: f64) -> f64 {
    power_law_moment(min, max, alpha, 1)
}

/// Solves for the exponent `α` of the truncated discrete power law on `[min, max]` such
/// that its mean equals `target_mean`, by bisection. The mean is strictly decreasing in
/// `α`, so bisection on a bracketing interval converges.
fn solve_power_law_alpha(min: u64, max: u64, target_mean: f64) -> f64 {
    assert!(min >= 1 && min <= max);
    let mean_lo_alpha = power_law_mean(min, max, 1e-9); // ~uniform: largest achievable mean
    let mean_hi_alpha = power_law_mean(min, max, 16.0); // ~point mass at min: smallest mean
    assert!(
        target_mean <= mean_lo_alpha + 1e-9 && target_mean >= mean_hi_alpha - 1e-9,
        "target mean {target_mean} is not achievable on [{min}, {max}] \
         (achievable range is [{mean_hi_alpha:.4}, {mean_lo_alpha:.4}])"
    );
    let (mut lo, mut hi) = (1e-9_f64, 16.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if power_law_mean(min, max, mid) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Samples from the truncated discrete power law by inverse-transform over the PMF.
fn sample_truncated_power_law<R: Rng + ?Sized>(min: u64, max: u64, alpha: f64, rng: &mut R) -> u64 {
    let pmf = power_law_pmf(min, max, alpha);
    let mut u: f64 = rng.random();
    for (i, p) in pmf.iter().enumerate() {
        if u < *p {
            return min + i as u64;
        }
        u -= p;
    }
    max
}

impl crate::Tree {
    /// Applies a load specification to the leaf switches (all other switches get load 0).
    ///
    /// This is the Sec. 5 setting, where leaves model ToR switches connected to racks
    /// of servers.
    pub fn apply_leaf_loads<R: Rng + ?Sized>(&mut self, spec: &LoadSpec, rng: &mut R) {
        self.apply_loads(spec, LoadPlacement::Leaves, rng);
    }

    /// Applies a load specification according to the given placement.
    pub fn apply_loads<R: Rng + ?Sized>(
        &mut self,
        spec: &LoadSpec,
        placement: LoadPlacement,
        rng: &mut R,
    ) {
        let selected: Vec<crate::NodeId> = match placement {
            LoadPlacement::Leaves => self.leaves().collect(),
            LoadPlacement::AllSwitches => self.node_ids().collect(),
        };
        // Reset everything, then assign to the selected switches.
        for v in 0..self.n_switches() {
            self.set_load(v, 0);
        }
        for (idx, v) in selected.into_iter().enumerate() {
            let load = spec.sample(idx, rng);
            self.set_load(v, load);
        }
    }

    /// Draws a standalone load vector (without mutating the tree); entry `v` is the load
    /// of switch `v`. Used by the multi-workload scenarios where many workloads share a
    /// single topology.
    pub fn draw_loads<R: Rng + ?Sized>(
        &self,
        spec: &LoadSpec,
        placement: LoadPlacement,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut loads = vec![0u64; self.n_switches()];
        let selected: Vec<crate::NodeId> = match placement {
            LoadPlacement::Leaves => self.leaves().collect(),
            LoadPlacement::AllSwitches => self.node_ids().collect(),
        };
        for (idx, v) in selected.into_iter().enumerate() {
            loads[v] = spec.sample(idx, rng);
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_uniform_statistics() {
        let spec = LoadSpec::paper_uniform();
        assert!((spec.mean() - 5.0).abs() < 1e-12);
        // Discrete uniform on {4,5,6} has variance 2/3 ≈ 0.667 (paper reports 0.65625,
        // an empirical estimate).
        assert!((spec.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_power_law_statistics() {
        let spec = LoadSpec::paper_power_law();
        assert!((spec.mean() - 5.0).abs() < 1e-6, "mean should be 5");
        let var = spec.variance();
        assert!(
            (60.0..160.0).contains(&var),
            "power-law variance should be heavy-tailed (paper: 97.1), got {var}"
        );
        if let LoadSpec::PowerLaw { min, max, alpha } = spec {
            assert_eq!(min, 1);
            assert_eq!(max, 63);
            assert!(
                alpha > 1.0 && alpha < 2.5,
                "alpha should be moderate, got {alpha}"
            );
        } else {
            unreachable!();
        }
    }

    #[test]
    fn sampling_respects_support() {
        let mut rng = StdRng::seed_from_u64(0);
        let uni = LoadSpec::paper_uniform();
        let pl = LoadSpec::paper_power_law();
        for i in 0..2_000 {
            let u = uni.sample(i, &mut rng);
            assert!((4..=6).contains(&u));
            let p = pl.sample(i, &mut rng);
            assert!((1..=63).contains(&p));
        }
    }

    #[test]
    fn empirical_means_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(123);
        for spec in [LoadSpec::paper_uniform(), LoadSpec::paper_power_law()] {
            let n = 60_000;
            let sum: u64 = (0..n).map(|i| spec.sample(i, &mut rng)).sum();
            let emp_mean = sum as f64 / n as f64;
            assert!(
                (emp_mean - spec.mean()).abs() < 0.15,
                "empirical mean {emp_mean} too far from exact {}",
                spec.mean()
            );
        }
    }

    #[test]
    fn constant_point_and_explicit() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(LoadSpec::Constant(3).sample(10, &mut rng), 3);
        assert_eq!(LoadSpec::Constant(3).mean(), 3.0);
        assert_eq!(LoadSpec::Constant(3).variance(), 0.0);

        let point = LoadSpec::Point { index: 2, load: 7 };
        assert_eq!(point.sample(2, &mut rng), 7);
        assert_eq!(point.sample(3, &mut rng), 0);

        let expl = LoadSpec::Explicit(vec![2, 6, 5, 4]);
        assert_eq!(expl.sample(0, &mut rng), 2);
        assert_eq!(expl.sample(1, &mut rng), 6);
        assert_eq!(expl.sample(5, &mut rng), 6); // cycles
        assert!((expl.mean() - 4.25).abs() < 1e-12);
        assert!(expl.variance() > 0.0);

        let empty = LoadSpec::Explicit(vec![]);
        assert_eq!(empty.sample(0, &mut rng), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
    }

    #[test]
    fn apply_leaf_loads_only_touches_leaves() {
        let mut tree = builders::complete_binary_tree_bt(32);
        let mut rng = StdRng::seed_from_u64(1);
        tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng);
        for v in tree.node_ids() {
            if tree.is_leaf(v) {
                assert!((4..=6).contains(&tree.load(v)));
            } else {
                assert_eq!(tree.load(v), 0);
            }
        }
    }

    #[test]
    fn apply_loads_on_all_switches() {
        let mut tree = builders::scale_free_tree(64, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        tree.apply_loads(&LoadSpec::Constant(1), LoadPlacement::AllSwitches, &mut rng);
        assert_eq!(tree.total_load(), 64);
    }

    #[test]
    fn apply_loads_resets_previous_loads() {
        let mut tree = builders::complete_binary_tree(7);
        tree.set_load(0, 99);
        let mut rng = StdRng::seed_from_u64(4);
        tree.apply_leaf_loads(&LoadSpec::Constant(1), &mut rng);
        assert_eq!(tree.load(0), 0, "internal loads must be reset");
        assert_eq!(tree.total_load(), 4);
    }

    #[test]
    fn draw_loads_does_not_mutate() {
        let tree = builders::complete_binary_tree(7);
        let mut rng = StdRng::seed_from_u64(9);
        let loads = tree.draw_loads(&LoadSpec::Constant(2), LoadPlacement::Leaves, &mut rng);
        assert_eq!(loads.iter().sum::<u64>(), 8);
        assert_eq!(tree.total_load(), 0);
    }

    #[test]
    fn cli_syntax_parses_into_specs() {
        assert_eq!(
            LoadSpec::parse("power-law"),
            Ok(LoadSpec::paper_power_law())
        );
        assert_eq!(LoadSpec::parse("uniform"), Ok(LoadSpec::paper_uniform()));
        assert_eq!(LoadSpec::parse("uniform:2,9"), Ok(LoadSpec::uniform(2, 9)));
        assert_eq!(LoadSpec::parse("constant"), Ok(LoadSpec::Constant(1)));
        assert_eq!(LoadSpec::parse("constant:7"), Ok(LoadSpec::Constant(7)));
        assert_eq!(
            LoadSpec::parse("explicit:2,6,5,4"),
            Ok(LoadSpec::Explicit(vec![2, 6, 5, 4]))
        );
        assert_eq!(
            LoadSpec::parse("power-law:1,63,5"),
            Ok(LoadSpec::paper_power_law())
        );
        for bad in [
            "zipf",
            "uniform:9,2",
            "uniform:1,2,3",
            "constant:x",
            "constant:1,2",
            "explicit:",
            "power-law:1,63",
            "power-law:0,63,5",
            "power-law:1,63,100",
        ] {
            let err = LoadSpec::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad} should fail with a message");
        }
    }

    #[test]
    #[should_panic]
    fn unachievable_power_law_mean_panics() {
        // Mean 50 on [1, 63] is not achievable with a decreasing power law.
        let _ = LoadSpec::power_law_with_mean(1, 63, 50.0);
    }

    #[test]
    #[should_panic]
    fn uniform_min_above_max_panics() {
        let _ = LoadSpec::uniform(7, 3);
    }
}
