//! The weighted, loaded, rooted aggregation tree `T = (V, E, ω)` together with a
//! network load `L : S → ℕ` and an availability set `Λ ⊆ S`.
//!
//! Nodes are switches; the destination server `d` is virtual and sits above the
//! root, reachable through the root's up-link.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a switch in a [`Tree`]. Dense, starting at 0.
pub type NodeId = usize;

/// The id of the root switch `r`. The root is always node 0.
pub const ROOT: NodeId = 0;

/// Errors produced while building or mutating a [`Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A referenced node id does not exist.
    UnknownNode(NodeId),
    /// The parent referenced during construction has not been added yet.
    UnknownParent(NodeId),
    /// A link rate must be strictly positive and finite.
    InvalidRate(String),
    /// The tree must contain at least the root switch.
    Empty,
    /// Construction produced an inconsistent structure (duplicate child, cycle, ...).
    Inconsistent(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(v) => write!(f, "unknown node id {v}"),
            TreeError::UnknownParent(v) => write!(f, "unknown parent id {v}"),
            TreeError::InvalidRate(msg) => write!(f, "invalid link rate: {msg}"),
            TreeError::Empty => write!(f, "a tree must contain at least the root switch"),
            TreeError::Inconsistent(msg) => write!(f, "inconsistent tree: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A single switch of the aggregation tree.
///
/// Every switch stores the properties of its *up-link* — the link towards its
/// parent (towards the destination `d` for the root) — which is the natural way
/// to attribute link quantities in a rooted tree where all traffic flows upward.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Node {
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) depth: usize,
    /// Rate ω of the up-link (messages / second). Strictly positive.
    pub(crate) rate: f64,
    /// Number of worker servers attached to this switch, `L(v)`.
    pub(crate) load: u64,
    /// Whether this switch belongs to the availability set Λ.
    pub(crate) available: bool,
}

impl Node {
    /// The parent switch, or `None` for the root (whose parent is the destination `d`).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The children of this switch, in insertion order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Hop distance `D(v)` from this switch to the root `r`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Rate ω of the up-link.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Transmission time ρ = 1/ω of the up-link.
    pub fn rho(&self) -> f64 {
        1.0 / self.rate
    }

    /// Load `L(v)`: number of worker servers attached to this switch.
    pub fn load(&self) -> u64 {
        self.load
    }

    /// Whether this switch is available for aggregation (`v ∈ Λ`).
    pub fn available(&self) -> bool {
        self.available
    }

    /// Whether this switch is a leaf of the switch tree.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Incremental builder for [`Tree`].
///
/// ```
/// use soar_topology::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let r = b.root(1.0);              // root switch, up-link (r, d) rate 1
/// let a = b.child(r, 1.0).unwrap(); // first child of the root
/// let _ = b.child(a, 2.0).unwrap();
/// let tree = b.build().unwrap();
/// assert_eq!(tree.n_switches(), 3);
/// assert_eq!(tree.depth(a), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates a builder with capacity for `n` switches.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Adds the root switch with the given `(r, d)` up-link rate and returns its id.
    ///
    /// If a root already exists this is a no-op that returns [`ROOT`].
    pub fn root(&mut self, rate: f64) -> NodeId {
        if self.nodes.is_empty() {
            self.nodes.push(Node {
                parent: None,
                children: Vec::new(),
                depth: 0,
                rate,
                load: 0,
                available: true,
            });
        }
        ROOT
    }

    /// Adds a switch as a child of `parent` with the given up-link rate.
    pub fn child(&mut self, parent: NodeId, rate: f64) -> Result<NodeId, TreeError> {
        if parent >= self.nodes.len() {
            return Err(TreeError::UnknownParent(parent));
        }
        let id = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            depth,
            rate,
            load: 0,
            available: true,
        });
        self.nodes[parent].children.push(id);
        Ok(id)
    }

    /// Adds a switch as a child of `parent` with a rate, load, and availability.
    pub fn child_with(
        &mut self,
        parent: NodeId,
        rate: f64,
        load: u64,
        available: bool,
    ) -> Result<NodeId, TreeError> {
        let id = self.child(parent, rate)?;
        self.nodes[id].load = load;
        self.nodes[id].available = available;
        Ok(id)
    }

    /// Sets the load of an already-added switch.
    pub fn set_load(&mut self, v: NodeId, load: u64) -> Result<(), TreeError> {
        self.nodes
            .get_mut(v)
            .map(|n| n.load = load)
            .ok_or(TreeError::UnknownNode(v))
    }

    /// Number of switches added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no switch has been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the builder into a validated [`Tree`].
    pub fn build(self) -> Result<Tree, TreeError> {
        Tree::from_nodes(self.nodes)
    }
}

/// The weighted, loaded aggregation tree.
///
/// See the [crate-level documentation](crate) for the modelling conventions.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
    height: usize,
}

impl Tree {
    /// Builds a tree from a raw node arena, validating structure and rates.
    pub(crate) fn from_nodes(nodes: Vec<Node>) -> Result<Self, TreeError> {
        if nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        if nodes[ROOT].parent.is_some() {
            return Err(TreeError::Inconsistent("node 0 must be the root".into()));
        }
        for (id, node) in nodes.iter().enumerate() {
            if !(node.rate.is_finite() && node.rate > 0.0) {
                return Err(TreeError::InvalidRate(format!(
                    "node {id} has rate {}",
                    node.rate
                )));
            }
            if id != ROOT {
                let p = node.parent.ok_or_else(|| {
                    TreeError::Inconsistent(format!("non-root node {id} has no parent"))
                })?;
                if p >= nodes.len() {
                    return Err(TreeError::UnknownParent(p));
                }
                if p >= id {
                    // Parents must precede children in the arena; this guarantees
                    // acyclicity and lets traversals be simple index scans.
                    return Err(TreeError::Inconsistent(format!(
                        "node {id} has parent {p} >= its own id; parents must be added first"
                    )));
                }
                if !nodes[p].children.contains(&id) {
                    return Err(TreeError::Inconsistent(format!(
                        "node {p} does not list {id} as a child"
                    )));
                }
                if node.depth != nodes[p].depth + 1 {
                    return Err(TreeError::Inconsistent(format!(
                        "node {id} depth {} is not parent depth + 1",
                        node.depth
                    )));
                }
            }
        }
        let height = nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        Ok(Tree { nodes, height })
    }

    /// Builds a tree from a parent vector.
    ///
    /// `parents[v]` is the parent of switch `v` and must satisfy `parents[v] < v`
    /// (parents listed before children); `parents[0]` is ignored (the root's parent
    /// is the destination). `rates[v]` is the rate of the up-link of `v`
    /// (`rates[0]` being the rate of the `(r, d)` link).
    pub fn from_parents(parents: &[NodeId], rates: &[f64]) -> Result<Self, TreeError> {
        if parents.is_empty() {
            return Err(TreeError::Empty);
        }
        if parents.len() != rates.len() {
            return Err(TreeError::Inconsistent(
                "parents and rates must have the same length".into(),
            ));
        }
        let mut builder = TreeBuilder::with_capacity(parents.len());
        builder.root(rates[0]);
        for v in 1..parents.len() {
            let p = parents[v];
            if p >= v {
                return Err(TreeError::Inconsistent(format!(
                    "parents[{v}] = {p} must be < {v}"
                )));
            }
            builder.child(p, rates[v])?;
        }
        builder.build()
    }

    /// Builds a tree from a parent vector with unit rates everywhere.
    pub fn from_parents_unit(parents: &[NodeId]) -> Result<Self, TreeError> {
        Self::from_parents(parents, &vec![1.0; parents.len()])
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// Number of switches `n = |S|` in the tree (excluding the destination `d`).
    pub fn n_switches(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes counted the way the paper sizes topologies
    /// (`BT(n)` counts the destination): switches + 1.
    pub fn n_with_dest(&self) -> usize {
        self.nodes.len() + 1
    }

    /// The root switch id (always 0).
    pub fn root(&self) -> NodeId {
        ROOT
    }

    /// Immutable access to a node.
    pub fn node(&self, v: NodeId) -> &Node {
        &self.nodes[v]
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.nodes[v].parent
    }

    /// Children of `v`, in insertion order (the fixed order `c_1, ..., c_{C(v)}` of the paper).
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v].children
    }

    /// Number of children `C(v)`.
    pub fn n_children(&self, v: NodeId) -> usize {
        self.nodes[v].children.len()
    }

    /// Whether `v` is a leaf switch.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.nodes[v].children.is_empty()
    }

    /// Hop distance `D(v)` from `v` to the root `r`.
    pub fn depth(&self, v: NodeId) -> usize {
        self.nodes[v].depth
    }

    /// Hop distance from `v` to the destination `d` (= `D(v) + 1`).
    ///
    /// This is the largest meaningful value of the SOAR parameter `ℓ` at node `v`.
    pub fn dist_to_dest(&self, v: NodeId) -> usize {
        self.nodes[v].depth + 1
    }

    /// Height `h(T) = max_s D(s)` of the switch tree.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Rate ω of the up-link of `v`.
    pub fn rate(&self, v: NodeId) -> f64 {
        self.nodes[v].rate
    }

    /// Transmission time ρ(v) = 1/ω of the up-link of `v`.
    pub fn rho(&self, v: NodeId) -> f64 {
        1.0 / self.nodes[v].rate
    }

    /// Load `L(v)` at switch `v`.
    pub fn load(&self, v: NodeId) -> u64 {
        self.nodes[v].load
    }

    /// Whether `v ∈ Λ` (available for aggregation).
    pub fn available(&self, v: NodeId) -> bool {
        self.nodes[v].available
    }

    /// Sum of all loads, `Σ_v L(v)` — the number of worker servers.
    pub fn total_load(&self) -> u64 {
        self.nodes.iter().map(|n| n.load).sum()
    }

    /// Number of available switches `|Λ|`.
    pub fn n_available(&self) -> usize {
        self.nodes.iter().filter(|n| n.available).count()
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Sets the load of switch `v`.
    pub fn set_load(&mut self, v: NodeId, load: u64) {
        self.nodes[v].load = load;
    }

    /// Sets the rate of the up-link of `v`. Panics on non-positive or non-finite rates.
    pub fn set_rate(&mut self, v: NodeId, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "link rate must be positive and finite, got {rate}"
        );
        self.nodes[v].rate = rate;
    }

    /// Marks switch `v` as available / unavailable for aggregation.
    pub fn set_available(&mut self, v: NodeId, available: bool) {
        self.nodes[v].available = available;
    }

    /// Marks every switch as available (Λ = S).
    pub fn set_all_available(&mut self) {
        for n in &mut self.nodes {
            n.available = true;
        }
    }

    /// Replaces the whole load vector. Panics if `loads.len() != n_switches()`.
    pub fn set_loads(&mut self, loads: &[u64]) {
        assert_eq!(loads.len(), self.nodes.len(), "load vector length mismatch");
        for (n, &l) in self.nodes.iter_mut().zip(loads) {
            n.load = l;
        }
    }

    /// Returns a copy of the load vector.
    pub fn loads(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.load).collect()
    }

    /// Returns a clone of this tree carrying a different load vector.
    pub fn with_loads(&self, loads: &[u64]) -> Tree {
        let mut t = self.clone();
        t.set_loads(loads);
        t
    }

    /// Replaces the availability vector. Panics on length mismatch.
    pub fn set_availability(&mut self, available: &[bool]) {
        assert_eq!(
            available.len(),
            self.nodes.len(),
            "availability vector length mismatch"
        );
        for (n, &a) in self.nodes.iter_mut().zip(available) {
            n.available = a;
        }
    }

    /// Returns a copy of the availability vector (Λ as a boolean mask).
    pub fn availability(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.available).collect()
    }

    // ------------------------------------------------------------------
    // Traversals & structural queries
    // ------------------------------------------------------------------

    /// Iterator over all node ids, `0..n`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.nodes.len()
    }

    /// Iterator over the leaf switches.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| self.is_leaf(v))
    }

    /// Iterator over the internal (non-leaf) switches.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&v| !self.is_leaf(v))
    }

    /// A uniformly random leaf switch (every valid tree has at least one — a
    /// childless root is its own leaf).
    ///
    /// The workhorse of the churn generators: leaf-rate-change events and
    /// tenant footprints pick their switches through this.
    pub fn random_leaf<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let leaves: Vec<NodeId> = self.leaves().collect();
        leaves[rng.random_range(0..leaves.len())]
    }

    /// Samples `count` *distinct* leaf switches uniformly (all leaves when the
    /// tree has fewer than `count`), in increasing id order — a deterministic
    /// order so that seeded churn timelines are reproducible.
    pub fn sample_leaves<R: rand::Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<NodeId> {
        let mut leaves: Vec<NodeId> = self.leaves().collect();
        // Partial Fisher-Yates: move a random remaining leaf into each slot.
        let take = count.min(leaves.len());
        for slot in 0..take {
            let pick = rng.random_range(slot..leaves.len());
            leaves.swap(slot, pick);
        }
        leaves.truncate(take);
        leaves.sort_unstable();
        leaves
    }

    /// Post-order traversal: every node appears after all nodes of its subtree.
    ///
    /// Because the arena stores parents before children, the reversed id order is a
    /// valid post-order; this method nevertheless computes an explicit DFS post-order
    /// so child order is respected.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit stack of (node, next-child-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(ROOT, 0)];
        while let Some(&(v, ci)) = stack.last() {
            if ci < self.nodes[v].children.len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                stack.push((self.nodes[v].children[ci], 0));
            } else {
                order.push(v);
                stack.pop();
            }
        }
        order
    }

    /// Pre-order traversal: every node appears before all nodes of its subtree.
    pub fn pre_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![ROOT];
        while let Some(v) = stack.pop() {
            order.push(v);
            // Push children in reverse so they are visited in insertion order.
            for &c in self.nodes[v].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes grouped by depth: `levels()[d]` lists all switches at depth `d`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels = vec![Vec::new(); self.height + 1];
        for v in self.node_ids() {
            levels[self.depth(v)].push(v);
        }
        levels
    }

    /// All node ids of the subtree rooted at `v` (including `v`), in pre-order.
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in self.nodes[u].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of switches in the subtree rooted at `v`.
    pub fn subtree_size(&self, v: NodeId) -> usize {
        self.subtree(v).len()
    }

    /// Total load in the subtree rooted at `v`.
    pub fn subtree_load(&self, v: NodeId) -> u64 {
        self.subtree(v).iter().map(|&u| self.load(u)).sum()
    }

    /// The ancestor of `v` at hop distance `ℓ`, or `None` if `ℓ` reaches the
    /// destination `d` or beyond (`ℓ > D(v)` reaches past the root).
    ///
    /// `ancestor_at(v, 0) == Some(v)`; `ancestor_at(v, D(v)) == Some(ROOT)`;
    /// `ancestor_at(v, D(v) + 1) == None` (the destination).
    pub fn ancestor_at(&self, v: NodeId, l: usize) -> Option<NodeId> {
        let mut cur = v;
        for _ in 0..l {
            cur = self.nodes[cur].parent?;
        }
        Some(cur)
    }

    /// Whether `anc` lies on the path from `v` to the root (inclusive of `v`).
    pub fn is_ancestor_or_self(&self, anc: NodeId, v: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            cur = self.nodes[u].parent;
        }
        false
    }

    /// The path from `v` up to (and including) the root, as node ids.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    // ------------------------------------------------------------------
    // ρ path sums
    // ------------------------------------------------------------------

    /// Cumulative transmission times from `v` upward:
    /// entry `ℓ` is `ρ(v, Aᵉ_v)` — the sum of ρ over the first `ℓ` up-links starting at `v`.
    ///
    /// The returned vector has length `dist_to_dest(v) + 1`:
    /// index 0 is `0.0`, index `D(v) + 1` is the full path cost `ρ(v, d)`
    /// (including the `(r, d)` link).
    pub fn path_rho(&self, v: NodeId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dist_to_dest(v) + 1);
        out.push(0.0);
        let mut acc = 0.0;
        let mut cur = Some(v);
        while let Some(u) = cur {
            acc += self.rho(u);
            out.push(acc);
            cur = self.nodes[u].parent;
        }
        out
    }

    /// `ρ(v, d)`: total transmission time of the path from `v` to the destination.
    pub fn rho_to_dest(&self, v: NodeId) -> f64 {
        *self
            .path_rho(v)
            .last()
            .expect("path_rho always has at least one entry")
    }

    /// `ρ(v, u)` where `u` is an ancestor of `v` — the summed ρ over the path,
    /// or `None` when `u` is not an ancestor of `v`.
    pub fn rho_between(&self, v: NodeId, ancestor: NodeId) -> Option<f64> {
        let mut acc = 0.0;
        let mut cur = v;
        loop {
            if cur == ancestor {
                return Some(acc);
            }
            acc += self.rho(cur);
            cur = self.nodes[cur].parent?;
        }
    }

    /// Validates internal invariants; used by property tests and after deserialization.
    pub fn validate(&self) -> Result<(), TreeError> {
        Tree::from_nodes(self.nodes.clone()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 7-switch complete binary tree of the paper's Fig. 2 (loads 2, 6, 5, 4 on
    /// the leaves, unit rates).
    fn fig2_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.root(1.0);
        let a = b.child(r, 1.0).unwrap();
        let bnode = b.child(r, 1.0).unwrap();
        let l1 = b.child(a, 1.0).unwrap();
        let l2 = b.child(a, 1.0).unwrap();
        let l3 = b.child(bnode, 1.0).unwrap();
        let l4 = b.child(bnode, 1.0).unwrap();
        let mut t = b.build().unwrap();
        t.set_load(l1, 2);
        t.set_load(l2, 6);
        t.set_load(l3, 5);
        t.set_load(l4, 4);
        t
    }

    #[test]
    fn builder_constructs_expected_shape() {
        let t = fig2_tree();
        assert_eq!(t.n_switches(), 7);
        assert_eq!(t.n_with_dest(), 8);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves().count(), 4);
        assert_eq!(t.children(ROOT), &[1, 2]);
        assert_eq!(t.parent(ROOT), None);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.depth(ROOT), 0);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.dist_to_dest(3), 3);
        assert_eq!(t.total_load(), 17);
    }

    #[test]
    fn from_parents_round_trip() {
        let parents = [0usize, 0, 0, 1, 1, 2, 2];
        let t = Tree::from_parents_unit(&parents).unwrap();
        assert_eq!(t.n_switches(), 7);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.children(2), &[5, 6]);
        assert!(t.is_leaf(6));
    }

    #[test]
    fn from_parents_rejects_forward_parent() {
        let parents = [0usize, 2, 1];
        assert!(Tree::from_parents_unit(&parents).is_err());
    }

    #[test]
    fn from_parents_rejects_length_mismatch() {
        assert!(Tree::from_parents(&[0, 0], &[1.0]).is_err());
    }

    #[test]
    fn empty_tree_is_an_error() {
        assert!(TreeBuilder::new().build().is_err());
        assert!(Tree::from_parents_unit(&[]).is_err());
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut b = TreeBuilder::new();
        b.root(0.0);
        assert!(matches!(b.build(), Err(TreeError::InvalidRate(_))));

        let mut b = TreeBuilder::new();
        b.root(f64::NAN);
        assert!(b.build().is_err());

        let mut b = TreeBuilder::new();
        b.root(f64::INFINITY);
        assert!(b.build().is_err());
    }

    #[test]
    fn post_order_places_children_before_parents() {
        let t = fig2_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.n_switches());
        let pos: Vec<usize> = {
            let mut p = vec![0; t.n_switches()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in t.node_ids() {
            if let Some(p) = t.parent(v) {
                assert!(pos[v] < pos[p], "child {v} must precede parent {p}");
            }
        }
        // The root is last.
        assert_eq!(*order.last().unwrap(), ROOT);
    }

    #[test]
    fn pre_order_places_parents_before_children() {
        let t = fig2_tree();
        let order = t.pre_order();
        assert_eq!(order[0], ROOT);
        let pos: Vec<usize> = {
            let mut p = vec![0; t.n_switches()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in t.node_ids() {
            if let Some(p) = t.parent(v) {
                assert!(pos[p] < pos[v]);
            }
        }
    }

    #[test]
    fn levels_partition_the_nodes() {
        let t = fig2_tree();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1], vec![1, 2]);
        assert_eq!(levels[2], vec![3, 4, 5, 6]);
    }

    #[test]
    fn subtree_and_sizes() {
        let t = fig2_tree();
        assert_eq!(t.subtree_size(ROOT), 7);
        assert_eq!(t.subtree_size(1), 3);
        assert_eq!(t.subtree_size(3), 1);
        assert_eq!(t.subtree_load(1), 8);
        assert_eq!(t.subtree_load(2), 9);
        let sub = t.subtree(2);
        assert!(sub.contains(&5) && sub.contains(&6) && sub.contains(&2));
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn ancestor_lookups() {
        let t = fig2_tree();
        assert_eq!(t.ancestor_at(3, 0), Some(3));
        assert_eq!(t.ancestor_at(3, 1), Some(1));
        assert_eq!(t.ancestor_at(3, 2), Some(ROOT));
        assert_eq!(t.ancestor_at(3, 3), None); // the destination d
        assert!(t.is_ancestor_or_self(ROOT, 3));
        assert!(t.is_ancestor_or_self(3, 3));
        assert!(!t.is_ancestor_or_self(2, 3));
        assert_eq!(t.path_to_root(3), vec![3, 1, 0]);
    }

    #[test]
    fn path_rho_prefix_sums() {
        let mut b = TreeBuilder::new();
        let r = b.root(2.0); // rho 0.5
        let a = b.child(r, 4.0).unwrap(); // rho 0.25
        let l = b.child(a, 1.0).unwrap(); // rho 1.0
        let t = b.build().unwrap();
        let pr = t.path_rho(l);
        assert_eq!(pr.len(), 4);
        assert!((pr[0] - 0.0).abs() < 1e-12);
        assert!((pr[1] - 1.0).abs() < 1e-12);
        assert!((pr[2] - 1.25).abs() < 1e-12);
        assert!((pr[3] - 1.75).abs() < 1e-12);
        assert!((t.rho_to_dest(l) - 1.75).abs() < 1e-12);
        assert_eq!(t.rho_between(l, a), Some(1.0));
        assert_eq!(t.rho_between(l, r), Some(1.25));
        assert_eq!(t.rho_between(l, l), Some(0.0));
        assert_eq!(t.rho_between(a, l), None);
    }

    #[test]
    fn load_and_availability_mutation() {
        let mut t = fig2_tree();
        assert!(t.available(0));
        t.set_available(0, false);
        assert!(!t.available(0));
        assert_eq!(t.n_available(), 6);
        t.set_all_available();
        assert_eq!(t.n_available(), 7);

        t.set_loads(&[0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(t.total_load(), 4);
        let loads = t.loads();
        assert_eq!(loads, vec![0, 0, 0, 1, 1, 1, 1]);

        let t2 = t.with_loads(&[1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(t2.total_load(), 7);
        assert_eq!(t.total_load(), 4, "with_loads must not mutate the original");

        t.set_availability(&[false, false, false, true, true, true, true]);
        assert_eq!(t.n_available(), 4);
        assert_eq!(
            t.availability(),
            vec![false, false, false, true, true, true, true]
        );
    }

    #[test]
    #[should_panic(expected = "load vector length mismatch")]
    fn set_loads_length_mismatch_panics() {
        let mut t = fig2_tree();
        t.set_loads(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn set_rate_rejects_zero() {
        let mut t = fig2_tree();
        t.set_rate(0, 0.0);
    }

    #[test]
    fn validate_accepts_built_trees() {
        assert!(fig2_tree().validate().is_ok());
    }

    #[test]
    fn leaf_sampling_is_distinct_in_range_and_seed_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let tree = fig2_tree();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let v = tree.random_leaf(&mut rng);
            assert!(tree.is_leaf(v));
        }
        let sample = tree.sample_leaves(3, &mut rng);
        assert_eq!(sample.len(), 3);
        assert!(sample.windows(2).all(|w| w[0] < w[1]), "distinct + sorted");
        assert!(sample.iter().all(|&v| tree.is_leaf(v)));
        // Asking for more leaves than exist returns them all.
        let all = tree.sample_leaves(99, &mut rng);
        assert_eq!(all, tree.leaves().collect::<Vec<_>>());
        // Same seed, same draw.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(tree.sample_leaves(2, &mut a), tree.sample_leaves(2, &mut b));
    }

    #[test]
    fn builder_child_unknown_parent() {
        let mut b = TreeBuilder::new();
        b.root(1.0);
        assert!(matches!(b.child(7, 1.0), Err(TreeError::UnknownParent(7))));
        assert!(b.set_load(9, 1).is_err());
    }

    #[test]
    fn error_display_messages() {
        let msgs = [
            TreeError::UnknownNode(3).to_string(),
            TreeError::UnknownParent(4).to_string(),
            TreeError::InvalidRate("x".into()).to_string(),
            TreeError::Empty.to_string(),
            TreeError::Inconsistent("y".into()).to_string(),
        ];
        assert!(msgs[0].contains('3'));
        assert!(msgs[1].contains('4'));
        assert!(msgs[2].contains('x'));
        assert!(msgs[3].contains("root"));
        assert!(msgs[4].contains('y'));
    }
}
