//! Topology generators for the evaluation scenarios of the paper.
//!
//! * [`complete_binary_tree_bt`] — the `BT(n)` topologies of Sec. 5 (complete binary
//!   trees where `n` counts the destination server).
//! * [`complete_kary_tree`] — generalisation to arbitrary arity.
//! * [`scale_free_tree_sf`] — the `SF(n)` random preferential-attachment trees of
//!   Appendix B.
//! * [`random_tree`] — uniformly random recursive trees (each new node attaches to a
//!   uniformly random existing node), handy for property testing.
//! * [`two_tier_fat_tree`] — a two-tier ToR/aggregation topology resembling the leaf
//!   level of a fat-tree pod.
//! * [`multi_core_fat_tree`] — a k-ary fat-tree fabric with multiple core switches,
//!   decomposed into one vertex-disjoint aggregation tree per core (pods assigned
//!   round-robin), the substrate of the `soar-fabric` congestion-constrained solver.
//! * [`path`], [`star`], [`caterpillar`] — degenerate shapes used in unit and property
//!   tests (they exercise the extreme cases of the dynamic program: maximum height and
//!   maximum branching).
//!
//! All builders return trees with unit link rates, zero load and full availability;
//! apply a [`crate::rates::RateScheme`] and a [`crate::load::LoadSpec`] afterwards.

use crate::{NodeId, Tree, TreeBuilder, ROOT};
use rand::Rng;

/// Builds a complete binary tree with exactly `n_switches` switches.
///
/// `n_switches` does not need to be of the form `2^h - 1`; the last level is filled
/// left-to-right, as in a binary heap.
///
/// # Panics
///
/// Panics if `n_switches == 0`.
pub fn complete_binary_tree(n_switches: usize) -> Tree {
    complete_kary_tree(2, n_switches)
}

/// Builds the paper's `BT(n)` topology, where `n` counts the destination server `d`
/// in addition to the switches — i.e. the switch tree has `n - 1` nodes.
///
/// `BT(256)` therefore yields a complete binary tree of 255 switches with 128 leaves,
/// which is the workhorse topology of Sec. 5.
///
/// # Panics
///
/// Panics if `n < 2` (there must be at least the root switch besides `d`).
pub fn complete_binary_tree_bt(n: usize) -> Tree {
    assert!(
        n >= 2,
        "BT(n) needs at least one switch besides the destination"
    );
    complete_binary_tree(n - 1)
}

/// Builds a complete `arity`-ary tree with exactly `n_switches` switches
/// (heap-shaped: level `i` holds `arity^i` switches, the last level filled
/// left-to-right).
///
/// # Panics
///
/// Panics if `arity == 0` or `n_switches == 0`.
pub fn complete_kary_tree(arity: usize, n_switches: usize) -> Tree {
    assert!(arity >= 1, "arity must be at least 1");
    assert!(n_switches >= 1, "a tree needs at least the root switch");
    let mut b = TreeBuilder::with_capacity(n_switches);
    b.root(1.0);
    for v in 1..n_switches {
        // Heap indexing generalised to arity k: parent(v) = (v - 1) / k.
        let parent = (v - 1) / arity;
        b.child(parent, 1.0)
            .expect("parent precedes child by construction");
    }
    b.build().expect("k-ary construction is always valid")
}

/// Builds a complete `arity`-ary tree of the given `depth` (the root is at depth 0,
/// leaves at depth `depth`).
pub fn complete_kary_tree_of_depth(arity: usize, depth: usize) -> Tree {
    assert!(arity >= 1, "arity must be at least 1");
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    complete_kary_tree(arity, n)
}

/// Builds a path of `n_switches` switches: `r — s_1 — s_2 — ... — s_{n-1}`, the
/// deepest switch being the only leaf. Maximises tree height.
pub fn path(n_switches: usize) -> Tree {
    assert!(n_switches >= 1);
    let mut b = TreeBuilder::with_capacity(n_switches);
    let mut prev = b.root(1.0);
    for _ in 1..n_switches {
        prev = b.child(prev, 1.0).expect("chain parents precede children");
    }
    b.build().expect("path construction is always valid")
}

/// Builds a star: the root plus `n_switches - 1` leaf children. Maximises branching.
pub fn star(n_switches: usize) -> Tree {
    assert!(n_switches >= 1);
    let mut b = TreeBuilder::with_capacity(n_switches);
    let r = b.root(1.0);
    for _ in 1..n_switches {
        b.child(r, 1.0).expect("root exists");
    }
    b.build().expect("star construction is always valid")
}

/// Builds a caterpillar: a spine path of `spine` switches, each spine switch carrying
/// `legs` leaf children.
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    assert!(spine >= 1);
    let mut b = TreeBuilder::new();
    let mut prev = b.root(1.0);
    let mut spine_nodes = vec![prev];
    for _ in 1..spine {
        prev = b.child(prev, 1.0).expect("spine parent exists");
        spine_nodes.push(prev);
    }
    for &s in &spine_nodes {
        for _ in 0..legs {
            b.child(s, 1.0).expect("spine node exists");
        }
    }
    b.build().expect("caterpillar construction is always valid")
}

/// Builds a two-tier "fat-tree style" aggregation topology: a root (core) switch,
/// `aggs` aggregation switches below it, and `tors_per_agg` top-of-rack switches below
/// each aggregation switch. Only the ToR switches are expected to carry load.
pub fn two_tier_fat_tree(aggs: usize, tors_per_agg: usize) -> Tree {
    assert!(
        aggs >= 1,
        "a fat-tree needs at least one aggregation switch"
    );
    let mut b = TreeBuilder::new();
    let r = b.root(1.0);
    for _ in 0..aggs {
        let a = b.child(r, 1.0).expect("root exists");
        for _ in 0..tors_per_agg {
            b.child(a, 1.0).expect("agg exists");
        }
    }
    b.build().expect("two-tier construction is always valid")
}

/// Builds a multi-core k-ary fat-tree fabric as a *forest* of per-core
/// aggregation trees.
///
/// The fabric has `cores` core switches, `pods` pods of `aggs_per_pod`
/// aggregation switches each, and `tors_per_agg` top-of-rack switches below
/// every aggregation switch. Multipath routing is modelled by its
/// deterministic tree decomposition: pod `p` sends its reduce traffic through
/// core `p % cores` (round-robin over pods), so the fabric decomposes into
/// `cores` vertex-disjoint trees, one rooted at each core switch. Within a
/// core's tree the assigned pods appear in increasing pod index, their
/// aggregation switches in pod-local order and the ToR leaves in agg-local
/// order — the layout is fully deterministic, which the experiment pipeline's
/// byte-identical artifact gate relies on.
///
/// `multi_core_fat_tree(1, 1, aggs, tors)` is exactly [`two_tier_fat_tree`]
/// `(aggs, tors)`. A core left without pods (when `pods < cores`) still yields
/// a valid single-switch tree. Only ToR switches are expected to carry load.
///
/// # Panics
///
/// Panics if `cores == 0`, `pods == 0` or `aggs_per_pod == 0`
/// (`tors_per_agg == 0` is permitted: the aggregation switches become the
/// leaves, mirroring `two_tier_fat_tree`).
pub fn multi_core_fat_tree(
    cores: usize,
    pods: usize,
    aggs_per_pod: usize,
    tors_per_agg: usize,
) -> Vec<Tree> {
    assert!(cores >= 1, "a fabric needs at least one core switch");
    assert!(pods >= 1, "a fabric needs at least one pod");
    assert!(
        aggs_per_pod >= 1,
        "a pod needs at least one aggregation switch"
    );
    (0..cores)
        .map(|core| {
            let mut b = TreeBuilder::new();
            let r = b.root(1.0);
            for _pod in (core..pods).step_by(cores) {
                for _ in 0..aggs_per_pod {
                    let a = b.child(r, 1.0).expect("root exists");
                    for _ in 0..tors_per_agg {
                        b.child(a, 1.0).expect("agg exists");
                    }
                }
            }
            b.build().expect("fat-tree construction is always valid")
        })
        .collect()
}

/// Builds a random recursive tree with `n_switches` switches: switch `v` (for `v ≥ 1`)
/// attaches to a uniformly random switch among `0..v`.
///
/// # Panics
///
/// Panics if `n_switches == 0`.
pub fn random_tree<R: Rng + ?Sized>(n_switches: usize, rng: &mut R) -> Tree {
    assert!(n_switches >= 1);
    let mut b = TreeBuilder::with_capacity(n_switches);
    b.root(1.0);
    for v in 1..n_switches {
        let parent = rng.random_range(0..v);
        b.child(parent, 1.0).expect("parent precedes child");
    }
    b.build()
        .expect("random recursive construction is always valid")
}

/// Builds a random recursive tree whose maximum number of children per switch is
/// bounded by `max_children` (useful to keep property-test instances SOAR-friendly).
pub fn random_tree_bounded_degree<R: Rng + ?Sized>(
    n_switches: usize,
    max_children: usize,
    rng: &mut R,
) -> Tree {
    assert!(n_switches >= 1);
    assert!(max_children >= 1);
    let mut b = TreeBuilder::with_capacity(n_switches);
    b.root(1.0);
    let mut child_count = vec![0usize; n_switches];
    for v in 1..n_switches {
        // Rejection-sample a parent with spare capacity; a parent with spare capacity
        // always exists because a tree on v nodes has v - 1 edges < v * max_children.
        let parent = loop {
            let candidate = rng.random_range(0..v);
            if child_count[candidate] < max_children {
                break candidate;
            }
        };
        child_count[parent] += 1;
        b.child(parent, 1.0).expect("parent precedes child");
    }
    b.build()
        .expect("bounded-degree construction is always valid")
}

/// Builds the paper's `SF(n)` scale-free tree via random preferential attachment
/// (Barabási–Albert with one edge per arriving node), where `n` counts the destination
/// server as in `BT(n)` — the switch tree has `n - 1` nodes.
///
/// Each arriving switch attaches to an existing switch with probability proportional to
/// `degree + 1` (the root's virtual up-link to `d` counts towards its degree, matching
/// the usual "attach proportional to degree in the full graph including d" reading of
/// the RPA process on trees).
pub fn scale_free_tree_sf<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Tree {
    assert!(
        n >= 2,
        "SF(n) needs at least one switch besides the destination"
    );
    scale_free_tree(n - 1, rng)
}

/// Builds a scale-free (random preferential attachment) tree with exactly
/// `n_switches` switches. See [`scale_free_tree_sf`] for the attachment rule.
pub fn scale_free_tree<R: Rng + ?Sized>(n_switches: usize, rng: &mut R) -> Tree {
    assert!(n_switches >= 1);
    let mut b = TreeBuilder::with_capacity(n_switches);
    b.root(1.0);
    // degree[v] = number of tree edges incident to v, plus 1 for the root's up-link.
    let mut degree = vec![0usize; n_switches];
    degree[ROOT] = 1;
    let mut total_degree = 1usize;
    for v in 1..n_switches {
        // Preferential attachment: pick parent ∝ degree.
        let mut target = rng.random_range(0..total_degree);
        let mut parent = ROOT;
        for (u, &deg) in degree.iter().enumerate().take(v) {
            if target < deg {
                parent = u;
                break;
            }
            target -= deg;
        }
        b.child(parent, 1.0).expect("parent precedes child");
        degree[parent] += 1;
        degree[v] += 1;
        total_degree += 2;
    }
    b.build().expect("scale-free construction is always valid")
}

/// Returns the degree of each switch in the *undirected* tree including the root's
/// virtual link to the destination (i.e. `children + 1` for every switch).
///
/// This matches the degree notion used when discussing the `Max`-by-degree placement
/// strategy on scale-free trees in Appendix B.
pub fn degrees(tree: &Tree) -> Vec<usize> {
    tree.node_ids().map(|v| tree.n_children(v) + 1).collect()
}

/// Convenience: the switch ids sorted by decreasing degree (ties broken by id).
pub fn nodes_by_degree_desc(tree: &Tree) -> Vec<NodeId> {
    let deg = degrees(tree);
    let mut ids: Vec<NodeId> = tree.node_ids().collect();
    ids.sort_by_key(|&v| (std::cmp::Reverse(deg[v]), v));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bt256_matches_paper_dimensions() {
        let t = complete_binary_tree_bt(256);
        assert_eq!(t.n_switches(), 255);
        assert_eq!(t.n_with_dest(), 256);
        assert_eq!(t.height(), 7);
        assert_eq!(t.leaves().count(), 128);
        // Every internal node of a complete binary tree on 255 nodes has exactly 2 children.
        for v in t.internal_nodes() {
            assert_eq!(t.n_children(v), 2);
        }
    }

    #[test]
    fn bt_small_sizes() {
        for n in [2usize, 3, 4, 8, 16, 32, 64, 128, 512, 1024, 2048, 4096] {
            let t = complete_binary_tree_bt(n);
            assert_eq!(t.n_switches(), n - 1);
            t.validate().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn bt_requires_at_least_one_switch() {
        complete_binary_tree_bt(1);
    }

    #[test]
    fn complete_binary_tree_shape() {
        let t = complete_binary_tree(7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.children(2), &[5, 6]);
        let t = complete_binary_tree(6);
        assert_eq!(t.n_switches(), 6);
        assert_eq!(t.children(2), &[5]);
    }

    #[test]
    fn kary_tree_shape() {
        let t = complete_kary_tree(3, 13);
        assert_eq!(t.height(), 2);
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.children(1), &[4, 5, 6]);
        assert_eq!(t.leaves().count(), 9);

        let t = complete_kary_tree_of_depth(3, 2);
        assert_eq!(t.n_switches(), 1 + 3 + 9);
        assert_eq!(t.height(), 2);

        let unary = complete_kary_tree(1, 5);
        assert_eq!(unary.height(), 4);
        assert_eq!(unary.leaves().count(), 1);
    }

    #[test]
    fn path_and_star_and_caterpillar() {
        let p = path(5);
        assert_eq!(p.height(), 4);
        assert_eq!(p.leaves().count(), 1);

        let s = star(5);
        assert_eq!(s.height(), 1);
        assert_eq!(s.leaves().count(), 4);
        assert_eq!(s.n_children(ROOT), 4);

        let c = caterpillar(3, 2);
        assert_eq!(c.n_switches(), 3 + 6);
    }

    #[test]
    fn caterpillar_leaf_count_exact() {
        // spine of 3: s0 - s1 - s2, each with 2 legs. The spine tail s2 has children
        // (its legs), so leaves are exactly the 6 legs.
        let c = caterpillar(3, 2);
        assert_eq!(c.leaves().count(), 6);
        let c = caterpillar(4, 0);
        // A pure path of length 4: a single leaf.
        assert_eq!(c.leaves().count(), 1);
    }

    #[test]
    fn two_tier_shape() {
        let t = two_tier_fat_tree(4, 8);
        assert_eq!(t.n_switches(), 1 + 4 + 32);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves().count(), 32);
        for agg in t.children(ROOT) {
            assert_eq!(t.n_children(*agg), 8);
        }
    }

    #[test]
    #[should_panic(expected = "at least one aggregation switch")]
    fn two_tier_zero_aggs_panics() {
        // 0 aggs is a fabric/tree with no aggregation layer at all — rejected.
        two_tier_fat_tree(0, 8);
    }

    #[test]
    fn two_tier_zero_tors_degenerates_to_a_star() {
        // 0 ToRs per agg leaves the aggregation switches as the leaves: a star.
        let t = two_tier_fat_tree(4, 0);
        assert_eq!(t.n_switches(), 1 + 4);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaves().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        t.validate().unwrap();
    }

    #[test]
    fn multi_core_fat_tree_shape_invariants() {
        // 2 cores, 5 pods, 3 aggs/pod, 2 tors/agg: pods 0,2,4 -> core 0 and
        // pods 1,3 -> core 1.
        let forest = multi_core_fat_tree(2, 5, 3, 2);
        assert_eq!(forest.len(), 2);
        let pod_switches = 3 * (1 + 2);
        assert_eq!(forest[0].n_switches(), 1 + 3 * pod_switches);
        assert_eq!(forest[1].n_switches(), 1 + 2 * pod_switches);
        let total: usize = forest.iter().map(Tree::n_switches).sum();
        assert_eq!(total, 2 + 5 * pod_switches);
        for tree in &forest {
            tree.validate().unwrap();
            // Level grouping: root at depth 0, aggs at 1, ToRs at 2.
            let levels = tree.levels();
            assert_eq!(levels.len(), 3);
            assert_eq!(levels[0], vec![ROOT]);
            assert_eq!(levels[1].len(), tree.n_children(ROOT));
            for &agg in tree.children(ROOT) {
                assert_eq!(tree.n_children(agg), 2);
            }
            // The leaves are exactly the depth-2 ToRs, in id order.
            let leaves: Vec<NodeId> = tree.leaves().collect();
            assert_eq!(leaves, levels[2]);
        }
    }

    #[test]
    fn multi_core_fat_tree_is_deterministic() {
        assert_eq!(
            multi_core_fat_tree(3, 7, 2, 4),
            multi_core_fat_tree(3, 7, 2, 4)
        );
    }

    #[test]
    fn multi_core_single_core_matches_two_tier() {
        assert_eq!(
            multi_core_fat_tree(1, 1, 4, 8),
            vec![two_tier_fat_tree(4, 8)]
        );
    }

    #[test]
    fn multi_core_more_cores_than_pods_yields_bare_roots() {
        let forest = multi_core_fat_tree(4, 2, 2, 1);
        assert_eq!(forest.len(), 4);
        // Cores 2 and 3 get no pod: a single-switch tree each.
        assert_eq!(forest[2].n_switches(), 1);
        assert_eq!(forest[3].n_switches(), 1);
        assert_eq!(forest[0].n_switches(), 1 + 2 * 2);
    }

    #[test]
    #[should_panic(expected = "at least one pod")]
    fn multi_core_zero_pods_panics() {
        multi_core_fat_tree(2, 0, 2, 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn multi_core_zero_cores_panics() {
        multi_core_fat_tree(0, 2, 2, 2);
    }

    #[test]
    fn random_tree_is_valid_and_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let t1 = random_tree(64, &mut rng);
        t1.validate().unwrap();
        assert_eq!(t1.n_switches(), 64);
        let mut rng = StdRng::seed_from_u64(7);
        let t2 = random_tree(64, &mut rng);
        assert_eq!(t1, t2, "same seed must give the same tree");
    }

    #[test]
    fn random_tree_bounded_degree_respects_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = random_tree_bounded_degree(100, 3, &mut rng);
        for v in t.node_ids() {
            assert!(t.n_children(v) <= 3);
        }
        t.validate().unwrap();
    }

    #[test]
    fn scale_free_tree_has_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = scale_free_tree_sf(128, &mut rng);
        assert_eq!(t.n_switches(), 127);
        t.validate().unwrap();
        let deg = degrees(&t);
        let max_deg = *deg.iter().max().unwrap();
        // A preferential-attachment tree on 127 nodes reliably grows a hub far larger
        // than the average degree (~2).
        assert!(
            max_deg >= 8,
            "expected a hub of degree >= 8 in SF(128), got {max_deg}"
        );
    }

    #[test]
    fn scale_free_degree_ordering_helper() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = scale_free_tree(50, &mut rng);
        let order = nodes_by_degree_desc(&t);
        assert_eq!(order.len(), 50);
        let deg = degrees(&t);
        for w in order.windows(2) {
            assert!(deg[w[0]] >= deg[w[1]]);
        }
    }

    #[test]
    fn degrees_count_children_plus_uplink() {
        let t = star(4);
        let deg = degrees(&t);
        assert_eq!(deg[ROOT], 4); // 3 children + up-link to d
        assert_eq!(deg[1], 1);
    }
}
