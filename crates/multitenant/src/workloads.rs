//! Workload-sequence generators for the online scenario.
//!
//! Sec. 5.2 of the paper generates each arriving workload "from either the uniform load
//! distribution, or the power-law load distribution, each with probability 1/2";
//! [`MixedWorkloadGenerator`] reproduces that arrival model and also supports custom
//! mixtures.

use rand::Rng;
use serde::{Deserialize, Serialize};
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::Tree;

/// A mixture of load distributions from which successive workloads are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkloadGenerator {
    /// The candidate distributions and their selection weights.
    components: Vec<(f64, LoadSpec)>,
    /// Where the load of every workload is placed.
    placement: LoadPlacement,
}

impl MixedWorkloadGenerator {
    /// Builds a generator from `(weight, distribution)` components.
    ///
    /// # Panics
    ///
    /// Panics if no component is given or all weights are non-positive.
    pub fn new(components: Vec<(f64, LoadSpec)>, placement: LoadPlacement) -> Self {
        assert!(
            !components.is_empty(),
            "at least one load distribution is required"
        );
        assert!(
            components.iter().any(|(w, _)| *w > 0.0),
            "at least one component must have positive weight"
        );
        MixedWorkloadGenerator {
            components,
            placement,
        }
    }

    /// The paper's arrival model: uniform `[4, 6]` and power-law (mean 5) loads on the
    /// leaves, each chosen with probability ½.
    pub fn paper_default() -> Self {
        MixedWorkloadGenerator::new(
            vec![
                (0.5, LoadSpec::paper_uniform()),
                (0.5, LoadSpec::paper_power_law()),
            ],
            LoadPlacement::Leaves,
        )
    }

    /// Draws a single workload (a per-switch load vector) for the given tree.
    pub fn draw<R: Rng + ?Sized>(&self, tree: &Tree, rng: &mut R) -> Vec<u64> {
        let total: f64 = self.components.iter().map(|(w, _)| w.max(0.0)).sum();
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = &self.components[0].1;
        for (weight, spec) in &self.components {
            if *weight <= 0.0 {
                continue;
            }
            if pick < *weight {
                chosen = spec;
                break;
            }
            pick -= weight;
        }
        tree.draw_loads(chosen, self.placement, rng)
    }

    /// Draws a sequence of `count` workloads.
    pub fn draw_sequence<R: Rng + ?Sized>(
        &self,
        tree: &Tree,
        count: usize,
        rng: &mut R,
    ) -> Vec<Vec<u64>> {
        (0..count).map(|_| self.draw(tree, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;

    #[test]
    fn paper_default_draws_leaf_loads_in_expected_ranges() {
        let tree = builders::complete_binary_tree_bt(64);
        let generator = MixedWorkloadGenerator::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        let sequence = generator.draw_sequence(&tree, 50, &mut rng);
        assert_eq!(sequence.len(), 50);
        let mut saw_heavy_tail = false;
        for loads in &sequence {
            assert_eq!(loads.len(), tree.n_switches());
            for v in tree.node_ids() {
                if tree.is_leaf(v) {
                    assert!(
                        (1..=63).contains(&loads[v]),
                        "leaf load {} out of range",
                        loads[v]
                    );
                } else {
                    assert_eq!(loads[v], 0);
                }
            }
            if loads.iter().any(|&l| l > 6) {
                saw_heavy_tail = true; // must have come from the power-law component
            }
        }
        assert!(
            saw_heavy_tail,
            "50 mixed draws should include power-law workloads"
        );
    }

    #[test]
    fn single_component_mixture_always_uses_it() {
        let tree = builders::complete_binary_tree_bt(16);
        let generator = MixedWorkloadGenerator::new(
            vec![(1.0, LoadSpec::Constant(3))],
            LoadPlacement::AllSwitches,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let loads = generator.draw(&tree, &mut rng);
        assert!(loads.iter().all(|&l| l == 3));
    }

    #[test]
    fn zero_weight_components_are_skipped() {
        let tree = builders::complete_binary_tree_bt(16);
        let generator = MixedWorkloadGenerator::new(
            vec![(0.0, LoadSpec::Constant(99)), (1.0, LoadSpec::Constant(2))],
            LoadPlacement::Leaves,
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let loads = generator.draw(&tree, &mut rng);
            assert!(loads.iter().all(|&l| l == 0 || l == 2));
        }
    }

    #[test]
    #[should_panic]
    fn empty_mixture_is_rejected() {
        let _ = MixedWorkloadGenerator::new(vec![], LoadPlacement::Leaves);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_are_rejected() {
        let _ =
            MixedWorkloadGenerator::new(vec![(0.0, LoadSpec::Constant(1))], LoadPlacement::Leaves);
    }
}
