//! # soar-multitenant
//!
//! The online multi-workload scenario of Sec. 5.2 of the SOAR paper.
//!
//! Workloads `L_0, L_1, ...` arrive one at a time over a shared tree network. Every
//! switch `s` has a fixed **aggregation capacity** `a(s)` bounding the number of
//! workloads for which it may serve as an aggregation switch; the residual capacity
//! `a_t(s)` shrinks by one whenever `s` is chosen for workload `L_t`. The availability
//! set offered to the placement algorithm for workload `t` is
//! `Λ_t = {s | a_t(s) > 0}` (intersected with any static availability restriction),
//! and each workload is granted at most `k` aggregation switches.
//!
//! The [`OnlineAllocator`] drives this process for any placement
//! [`soar_core::Strategy`]; the [`workloads::MixedWorkloadGenerator`] reproduces the
//! paper's arrival model (each workload drawn from the uniform or the power-law load
//! distribution with probability ½). The [`churn`] module extends the arrival
//! model into full **churn timelines** (tenants arriving *and departing*, leaf
//! rates drifting, budgets changing) — the event streams consumed by the
//! `soar-online` incremental re-optimization engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod workloads;

use rand::Rng;
use serde::{Deserialize, Serialize};
use soar_core::api::{Instance, Solver};
use soar_core::Strategy;
use soar_reduce::{cost, Coloring};
use soar_topology::{NodeId, Tree};

/// Per-switch aggregation capacities `a(s)` and their residual values `a_t(s)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityState {
    initial: Vec<u32>,
    residual: Vec<u32>,
}

impl CapacityState {
    /// Uniform capacity `a(s) = capacity` for every switch.
    pub fn uniform(n_switches: usize, capacity: u32) -> Self {
        CapacityState {
            initial: vec![capacity; n_switches],
            residual: vec![capacity; n_switches],
        }
    }

    /// Explicit per-switch capacities.
    pub fn explicit(capacities: Vec<u32>) -> Self {
        CapacityState {
            residual: capacities.clone(),
            initial: capacities,
        }
    }

    /// The residual capacity of switch `v` before the next workload.
    pub fn residual(&self, v: NodeId) -> u32 {
        self.residual[v]
    }

    /// The initial capacity of switch `v`.
    pub fn initial(&self, v: NodeId) -> u32 {
        self.initial[v]
    }

    /// Switches that can still accept at least one more workload.
    pub fn available_switches(&self) -> Vec<NodeId> {
        self.residual
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| if c > 0 { Some(v) } else { None })
            .collect()
    }

    /// Consumes one unit of capacity at every blue switch of `coloring`.
    ///
    /// # Panics
    ///
    /// Panics if a blue switch has no residual capacity left — the allocator must only
    /// offer switches with residual capacity to the placement strategies.
    pub fn consume(&mut self, coloring: &Coloring) {
        for v in coloring.iter_blue() {
            assert!(
                self.residual[v] > 0,
                "switch {v} was used as an aggregation switch without residual capacity"
            );
            self.residual[v] -= 1;
        }
    }

    /// Resets all residual capacities to their initial values.
    pub fn reset(&mut self) {
        self.residual = self.initial.clone();
    }

    /// Total residual capacity across all switches.
    pub fn total_residual(&self) -> u64 {
        self.residual.iter().map(|&c| c as u64).sum()
    }
}

/// The outcome of placing and serving a single workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Index of the workload in the arrival sequence.
    pub index: usize,
    /// The aggregation switches granted to this workload.
    pub coloring: Coloring,
    /// Utilization complexity achieved for this workload.
    pub phi: f64,
    /// Utilization complexity the same workload would incur with no aggregation at all.
    pub all_red_phi: f64,
    /// Number of switches that still had residual capacity when this workload arrived.
    pub available_switches: usize,
}

impl WorkloadOutcome {
    /// This workload's cost normalized to its own all-red baseline.
    pub fn normalized(&self) -> f64 {
        if self.all_red_phi == 0.0 {
            1.0
        } else {
            self.phi / self.all_red_phi
        }
    }
}

/// Aggregate report over a whole workload sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Per-workload outcomes, in arrival order.
    pub outcomes: Vec<WorkloadOutcome>,
}

impl OnlineReport {
    /// Sum of the achieved utilizations over all workloads.
    pub fn total_phi(&self) -> f64 {
        self.outcomes.iter().map(|o| o.phi).sum()
    }

    /// Sum of the all-red baselines over all workloads.
    pub fn total_all_red_phi(&self) -> f64 {
        self.outcomes.iter().map(|o| o.all_red_phi).sum()
    }

    /// The paper's headline metric: total utilization normalized to the all-red total.
    pub fn normalized_total(&self) -> f64 {
        let baseline = self.total_all_red_phi();
        if baseline == 0.0 {
            1.0
        } else {
            self.total_phi() / baseline
        }
    }

    /// Number of workloads served.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no workload was served.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// Drives the online allocation process for one placement strategy.
#[derive(Debug, Clone)]
pub struct OnlineAllocator {
    /// The shared topology (rates matter; its load vector is overwritten per workload).
    tree: Tree,
    /// Static availability restriction (independent of capacity), captured from the
    /// tree at construction time.
    static_availability: Vec<bool>,
    /// Per-switch aggregation capacities.
    capacities: CapacityState,
    /// Aggregation-switch budget `k` granted to every workload.
    k: usize,
}

impl OnlineAllocator {
    /// Creates an allocator over `tree` with budget `k` per workload and uniform
    /// capacity `a(s) = capacity`.
    pub fn new(tree: &Tree, k: usize, capacity: u32) -> Self {
        OnlineAllocator {
            static_availability: tree.availability(),
            capacities: CapacityState::uniform(tree.n_switches(), capacity),
            tree: tree.clone(),
            k,
        }
    }

    /// Creates an allocator with explicit per-switch capacities.
    pub fn with_capacities(tree: &Tree, k: usize, capacities: CapacityState) -> Self {
        OnlineAllocator {
            static_availability: tree.availability(),
            capacities,
            tree: tree.clone(),
            k,
        }
    }

    /// The per-workload aggregation-switch budget.
    pub fn budget(&self) -> usize {
        self.k
    }

    /// Read access to the capacity state.
    pub fn capacities(&self) -> &CapacityState {
        &self.capacities
    }

    /// The residual availability set Λ_t: statically available switches that still
    /// have residual capacity. The single source of truth shared by
    /// [`OnlineAllocator::handle_workload`] and [`OnlineAllocator::instance_for`].
    fn residual_availability(&self) -> Vec<bool> {
        self.static_availability
            .iter()
            .enumerate()
            .map(|(v, &a)| a && self.capacities.residual(v) > 0)
            .collect()
    }

    /// Installs the workload's loads and the residual availability set Λ_t on the
    /// shared tree, returning how many switches were offered.
    fn stage_workload(&mut self, loads: &[u64]) -> usize {
        assert_eq!(
            loads.len(),
            self.tree.n_switches(),
            "workload load vector must cover every switch"
        );
        let availability = self.residual_availability();
        let available_switches = availability.iter().filter(|&&a| a).count();
        self.tree.set_loads(loads);
        self.tree.set_availability(&availability);
        available_switches
    }

    /// Records a placement for the staged workload, consuming capacity.
    /// `all_red_phi` is the workload's own all-red baseline, computed by the
    /// caller (the solver path already has it cached on its `Instance`).
    fn commit_placement(
        &mut self,
        index: usize,
        coloring: Coloring,
        available_switches: usize,
        all_red_phi: f64,
    ) -> WorkloadOutcome {
        debug_assert!(coloring.validate(&self.tree, usize::MAX).is_ok());
        let phi = cost::phi(&self.tree, &coloring);
        self.capacities.consume(&coloring);
        WorkloadOutcome {
            index,
            coloring,
            phi,
            all_red_phi,
            available_switches,
        }
    }

    /// The φ-BIC instance the next workload would be solved against: the shared
    /// topology with the given loads, the residual availability set Λ_t, and the
    /// per-workload budget. This is the bridge to the unified
    /// [`soar_core::api`] layer — any [`Solver`] can be applied to it.
    pub fn instance_for(&self, loads: &[u64]) -> Instance {
        let mut tree = self.tree.clone();
        tree.set_loads(loads);
        tree.set_availability(&self.residual_availability());
        Instance::from_tree_owned(tree, self.k)
    }

    /// Places aggregation switches for one workload (given as a per-switch load
    /// vector), updates the residual capacities, and reports the outcome.
    pub fn handle_workload<R: Rng + ?Sized>(
        &mut self,
        index: usize,
        loads: &[u64],
        strategy: Strategy,
        rng: &mut R,
    ) -> WorkloadOutcome {
        let available_switches = self.stage_workload(loads);
        let coloring = strategy.place(&self.tree, self.k, rng);
        let all_red_phi = cost::phi(&self.tree, &Coloring::all_red(self.tree.n_switches()));
        self.commit_placement(index, coloring, available_switches, all_red_phi)
    }

    /// Like [`OnlineAllocator::handle_workload`], but placing through any
    /// [`Solver`] from the unified API (e.g. one obtained from
    /// [`soar_core::api::solvers::by_name`]).
    ///
    /// Solvers take an owned, immutable [`Instance`], so this path clones the
    /// shared tree once per workload — the price of solver pluggability. For
    /// tight inner loops over deterministic strategies the borrowing
    /// [`OnlineAllocator::handle_workload`] path remains available.
    ///
    /// Solvers are deterministic per instance by contract, so a *randomized*
    /// solver (e.g. `solvers::by_name("random")`) will pick the **same**
    /// placement for identical workloads in a sequence; to genuinely sample
    /// random placements over a sequence, use [`OnlineAllocator::handle_workload`]
    /// with [`soar_core::Strategy::Random`] and a threaded RNG, or vary the
    /// solver seed per workload via
    /// [`soar_core::api::StrategySolver::with_seed`].
    pub fn handle_workload_with(
        &mut self,
        index: usize,
        loads: &[u64],
        solver: &dyn Solver,
    ) -> WorkloadOutcome {
        let available_switches = self.stage_workload(loads);
        let instance = Instance::from_tree(&self.tree, self.k);
        let all_red_phi = instance.all_red_cost();
        let report = solver.solve(&instance);
        self.commit_placement(
            index,
            report.solution.coloring,
            available_switches,
            all_red_phi,
        )
    }

    /// Serves a whole sequence of workloads and collects the aggregate report.
    pub fn run_sequence<R: Rng + ?Sized>(
        &mut self,
        workloads: &[Vec<u64>],
        strategy: Strategy,
        rng: &mut R,
    ) -> OnlineReport {
        let outcomes = workloads
            .iter()
            .enumerate()
            .map(|(index, loads)| self.handle_workload(index, loads, strategy, rng))
            .collect();
        OnlineReport { outcomes }
    }

    /// Serves a whole sequence of workloads through a [`Solver`].
    pub fn run_sequence_with(
        &mut self,
        workloads: &[Vec<u64>],
        solver: &dyn Solver,
    ) -> OnlineReport {
        let outcomes = workloads
            .iter()
            .enumerate()
            .map(|(index, loads)| self.handle_workload_with(index, loads, solver))
            .collect();
        OnlineReport { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;
    use soar_topology::load::{LoadPlacement, LoadSpec};

    fn base_tree() -> Tree {
        builders::complete_binary_tree_bt(32)
    }

    fn draw_workloads(tree: &Tree, count: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| tree.draw_loads(&LoadSpec::paper_uniform(), LoadPlacement::Leaves, &mut rng))
            .collect()
    }

    #[test]
    fn capacity_state_bookkeeping() {
        let mut caps = CapacityState::uniform(4, 2);
        assert_eq!(caps.total_residual(), 8);
        assert_eq!(caps.available_switches(), vec![0, 1, 2, 3]);
        let coloring = Coloring::from_blue_nodes(4, [1, 3]).unwrap();
        caps.consume(&coloring);
        caps.consume(&coloring);
        assert_eq!(caps.residual(1), 0);
        assert_eq!(caps.residual(0), 2);
        assert_eq!(caps.available_switches(), vec![0, 2]);
        assert_eq!(caps.initial(1), 2);
        caps.reset();
        assert_eq!(caps.total_residual(), 8);

        let explicit = CapacityState::explicit(vec![1, 0, 3]);
        assert_eq!(explicit.available_switches(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "without residual capacity")]
    fn consuming_exhausted_capacity_panics() {
        let mut caps = CapacityState::uniform(2, 1);
        let coloring = Coloring::from_blue_nodes(2, [0]).unwrap();
        caps.consume(&coloring);
        caps.consume(&coloring);
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let tree = base_tree();
        let workloads = draw_workloads(&tree, 24, 7);
        for strategy in [
            Strategy::Soar,
            Strategy::Top,
            Strategy::MaxLoad,
            Strategy::Level,
        ] {
            let mut allocator = OnlineAllocator::new(&tree, 4, 2);
            let mut rng = StdRng::seed_from_u64(1);
            let report = allocator.run_sequence(&workloads, strategy, &mut rng);
            assert_eq!(report.len(), 24);
            // Every switch was used at most `capacity` times in total.
            let mut usage = vec![0u32; tree.n_switches()];
            for outcome in &report.outcomes {
                for v in outcome.coloring.iter_blue() {
                    usage[v] += 1;
                }
                assert!(outcome.coloring.n_blue() <= 4);
            }
            assert!(usage.iter().all(|&u| u <= 2), "{}", strategy.name());
        }
    }

    #[test]
    fn normalized_utilization_degrades_towards_all_red_as_capacity_runs_out() {
        let tree = base_tree();
        let workloads = draw_workloads(&tree, 40, 3);
        let mut allocator = OnlineAllocator::new(&tree, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let report = allocator.run_sequence(&workloads, Strategy::Soar, &mut rng);
        // Early workloads benefit from aggregation, late ones cannot (capacity 1 over
        // 31 switches is exhausted quickly).
        let first = report.outcomes.first().unwrap().normalized();
        let last = report.outcomes.last().unwrap().normalized();
        assert!(first < 0.9);
        assert!(
            (last - 1.0).abs() < 1e-9,
            "late workloads run all-red, got {last}"
        );
        assert!(report.normalized_total() > first);
        assert!(report.normalized_total() <= 1.0 + 1e-9);
    }

    #[test]
    fn soar_is_best_or_tied_in_the_online_setting() {
        let tree = base_tree();
        let workloads = {
            let mut rng = StdRng::seed_from_u64(11);
            let generator = workloads::MixedWorkloadGenerator::paper_default();
            generator.draw_sequence(&tree, 16, &mut rng)
        };
        let mut totals = std::collections::BTreeMap::new();
        for strategy in [
            Strategy::Soar,
            Strategy::Top,
            Strategy::MaxLoad,
            Strategy::Level,
        ] {
            let mut allocator = OnlineAllocator::new(&tree, 4, 4);
            let mut rng = StdRng::seed_from_u64(5);
            let report = allocator.run_sequence(&workloads, strategy, &mut rng);
            totals.insert(strategy.name(), report.normalized_total());
        }
        let soar = totals["SOAR"];
        for (name, &value) in &totals {
            assert!(
                soar <= value + 1e-9,
                "SOAR ({soar}) should not lose to {name} ({value}) online"
            );
        }
    }

    #[test]
    fn unbounded_capacity_matches_per_workload_optimum() {
        let tree = base_tree();
        let workloads = draw_workloads(&tree, 6, 13);
        let mut allocator = OnlineAllocator::new(&tree, 4, u32::MAX);
        let mut rng = StdRng::seed_from_u64(5);
        let report = allocator.run_sequence(&workloads, Strategy::Soar, &mut rng);
        for (outcome, loads) in report.outcomes.iter().zip(&workloads) {
            let offline = soar_core::solve(&tree.with_loads(loads), 4);
            assert!(
                (outcome.phi - offline.cost).abs() < 1e-9,
                "with unbounded capacity the online run must equal the offline optimum"
            );
        }
    }

    #[test]
    fn static_availability_restrictions_are_honored() {
        let mut tree = base_tree();
        tree.set_available(0, false);
        let workloads = draw_workloads(&tree, 8, 17);
        let mut allocator = OnlineAllocator::new(&tree, 3, 8);
        let mut rng = StdRng::seed_from_u64(23);
        let report = allocator.run_sequence(&workloads, Strategy::Top, &mut rng);
        for outcome in &report.outcomes {
            assert!(!outcome.coloring.is_blue(0));
        }
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = OnlineReport { outcomes: vec![] };
        assert!(report.is_empty());
        assert_eq!(report.normalized_total(), 1.0);
        assert_eq!(report.total_phi(), 0.0);
    }

    #[test]
    fn solver_path_matches_strategy_path_for_deterministic_strategies() {
        let tree = base_tree();
        let workloads = draw_workloads(&tree, 12, 21);
        for (strategy, name) in [
            (Strategy::Soar, "soar"),
            (Strategy::Top, "top"),
            (Strategy::MaxLoad, "max-load"),
            (Strategy::Level, "level"),
        ] {
            let mut via_strategy = OnlineAllocator::new(&tree, 4, 2);
            let mut rng = StdRng::seed_from_u64(0);
            let strategy_report = via_strategy.run_sequence(&workloads, strategy, &mut rng);
            let mut via_solver = OnlineAllocator::new(&tree, 4, 2);
            let solver = soar_core::api::solvers::by_name(name).expect("registered");
            let solver_report = via_solver.run_sequence_with(&workloads, solver.as_ref());
            assert_eq!(strategy_report, solver_report, "{name}");
        }
    }

    #[test]
    fn instance_for_exposes_residual_availability() {
        let tree = base_tree();
        let workloads = draw_workloads(&tree, 3, 8);
        let mut allocator = OnlineAllocator::new(&tree, 2, 1);
        let outcome = allocator.handle_workload_with(0, &workloads[0], &soar_core::api::SoarSolver);
        // Capacity 1: the switches just used must vanish from the next instance's Λ.
        let instance = allocator.instance_for(&workloads[1]);
        assert_eq!(instance.budget(), 2);
        for v in outcome.coloring.iter_blue() {
            assert!(!instance.tree().available(v));
        }
        assert_eq!(instance.tree().loads(), workloads[1]);
    }

    #[test]
    #[should_panic(expected = "must cover every switch")]
    fn wrong_load_vector_length_panics() {
        let tree = base_tree();
        let mut allocator = OnlineAllocator::new(&tree, 2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = allocator.handle_workload(0, &[1, 2, 3], Strategy::Soar, &mut rng);
    }
}
