//! Churn timelines: the event streams driving `soar-online`'s dynamic
//! workloads.
//!
//! The multi-tenant scenario of Sec. 5.2 serves workloads that *arrive once
//! and stay*; real datacenter aggregation additionally sees **churn** — tenants
//! come and go, and a tenant's per-rack sending rate drifts while it runs. A
//! [`ChurnTimeline`] captures that as a sequence of epochs, each a batch of
//! [`ChurnEvent`]s, and [`ChurnModel`] generates reproducible timelines from a
//! seed: tenant arrivals (a footprint of leaf switches with drawn loads, using
//! the paper's ½-uniform/½-power-law mixture like
//! [`MixedWorkloadGenerator`](crate::workloads::MixedWorkloadGenerator)),
//! geometric departures, and single-leaf rate re-draws.
//!
//! The events themselves are plain data — `soar-online` applies them to a
//! [`DynamicInstance`](https://docs.rs/soar-online) and re-optimizes
//! incrementally.

use rand::Rng;
use serde::{Deserialize, Serialize};
use soar_topology::load::LoadSpec;
use soar_topology::{NodeId, Tree};

/// Identifier of a tenant across its arrive/depart events.
pub type TenantId = u64;

/// One dynamic-workload event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A leaf's sending rate changed: its load `L(v)` is replaced by `load`
    /// (the non-tenant "background" load in `soar-online`'s bookkeeping).
    LeafRateChange {
        /// The leaf switch whose rate changed.
        leaf: NodeId,
        /// The new load value.
        load: u64,
    },
    /// A tenant arrives with a footprint of per-switch loads, added on top of
    /// the background load.
    TenantArrive {
        /// The tenant's identifier (must be unique among active tenants).
        tenant: TenantId,
        /// The tenant's per-switch loads, one entry per occupied switch.
        loads: Vec<(NodeId, u64)>,
    },
    /// A previously-arrived tenant departs; its loads are removed.
    TenantDepart {
        /// The departing tenant.
        tenant: TenantId,
    },
    /// The aggregation budget `k` changes (e.g. switches freed or reclaimed by
    /// the operator). Forces a full re-solve — the DP table shape depends on
    /// `k`.
    BudgetChange {
        /// The new budget.
        budget: usize,
    },
    /// A switch exhausts (`available = false`) or regains (`true`) its
    /// in-network compute capacity. An unavailable switch degrades to
    /// forwarding-only — the DP can no longer color it blue (`Λ` shrinks), so
    /// its root-to-leaf closure is re-solved.
    SwitchAvailability {
        /// The switch whose capacity state flipped.
        switch: NodeId,
        /// Whether the switch can aggregate after the event.
        available: bool,
    },
    /// The rate ω of the up-link of `switch` changed (link degradation or
    /// repair). This moves the transmission time ρ = 1/ω of that link, and
    /// with it the ρ prefix blocks of *every* switch below it — the whole
    /// subtree is re-solved through the partial rho-arena reset.
    LinkRateChange {
        /// The switch whose up-link rate changed.
        switch: NodeId,
        /// The new rate ω (must be positive and finite).
        rate: f64,
    },
}

/// The events of one epoch, applied together before the epoch's re-solve.
pub type Epoch = Vec<ChurnEvent>;

/// A whole churn history: one event batch per epoch.
pub type ChurnTimeline = Vec<Epoch>;

/// A reproducible generator of churn timelines over a fixed topology.
///
/// All counts are *expected* values per epoch: the integer part always
/// happens, the fractional part is a Bernoulli draw — deterministic given the
/// RNG, and simple enough that a spec stays human-auditable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Expected tenant arrivals per epoch.
    pub arrivals_per_epoch: f64,
    /// Mean tenant lifetime in epochs (each active tenant departs with
    /// probability `1 / mean_lifetime` per epoch). Must be at least 1.
    pub mean_lifetime: f64,
    /// Expected single-leaf rate re-draws per epoch.
    pub rate_changes_per_epoch: f64,
    /// Number of distinct leaf switches in a tenant's footprint.
    pub tenant_leaves: usize,
    /// Load distribution of background rate re-draws, and of tenant footprints
    /// when `mixed_tenants` is off.
    pub load: LoadSpec,
    /// Draw each tenant's footprint from the paper's ½-uniform/½-power-law
    /// mixture (the Sec. 5.2 arrival model) instead of `load`.
    pub mixed_tenants: bool,
    /// Expected switch-availability flaps per epoch (failure-domain churn). A
    /// flap toggles a uniformly-drawn switch between available and exhausted;
    /// the stream tracks which switches are down, so every exhaustion is
    /// eventually paired with a recovery draw. Defaults to 0 — existing seeded
    /// timelines consume no extra RNG draws and stay byte-identical.
    #[serde(default)]
    pub switch_flaps_per_epoch: f64,
    /// Expected link-rate (ω) re-draws per epoch (failure-domain churn), each
    /// re-drawing a uniformly-chosen switch's up-link rate from `link_rates`.
    /// Defaults to 0 with the same draw-order guarantee as
    /// `switch_flaps_per_epoch`.
    #[serde(default)]
    pub link_rate_changes_per_epoch: f64,
    /// `(min, max)` of the uniform link-rate re-draw. Defaults to `(0.5, 2.0)`
    /// — degraded to half speed or upgraded to double.
    #[serde(default = "default_link_rates")]
    pub link_rates: (f64, f64),
}

fn default_link_rates() -> (f64, f64) {
    (0.5, 2.0)
}

impl ChurnModel {
    /// The default model: one arrival per epoch, mean lifetime of four epochs,
    /// two single-leaf rate changes per epoch, four-leaf tenant footprints,
    /// paper-uniform background loads and mixed tenant draws.
    pub fn paper_default() -> Self {
        ChurnModel {
            arrivals_per_epoch: 1.0,
            mean_lifetime: 4.0,
            rate_changes_per_epoch: 2.0,
            tenant_leaves: 4,
            load: LoadSpec::paper_uniform(),
            mixed_tenants: true,
            switch_flaps_per_epoch: 0.0,
            link_rate_changes_per_epoch: 0.0,
            link_rates: default_link_rates(),
        }
    }

    /// The [`Self::paper_default`] model with failure-domain churn switched
    /// on: one switch-availability flap and one link-rate re-draw per epoch on
    /// top of the default load/tenant churn.
    pub fn failure_default() -> Self {
        ChurnModel {
            switch_flaps_per_epoch: 1.0,
            link_rate_changes_per_epoch: 1.0,
            ..ChurnModel::paper_default()
        }
    }

    /// Generates a timeline of `epochs` event batches over `tree`,
    /// deterministic for a given RNG state.
    ///
    /// Tenant ids are allocated sequentially; every `TenantDepart` refers to a
    /// previously-arrived, still-active tenant, so the timeline replays
    /// cleanly.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        tree: &Tree,
        epochs: usize,
        rng: &mut R,
    ) -> ChurnTimeline {
        let mut stream = ChurnStream::new(self.clone(), tree, rng);
        (0..epochs).map(|_| stream.next_epoch()).collect()
    }

    /// The load distribution of one arriving tenant.
    fn tenant_load_spec<R: Rng + ?Sized>(&self, rng: &mut R) -> LoadSpec {
        if self.mixed_tenants {
            if rng.random::<f64>() < 0.5 {
                LoadSpec::paper_uniform()
            } else {
                LoadSpec::paper_power_law()
            }
        } else {
            self.load.clone()
        }
    }
}

/// An incremental churn generator: the lazy form of [`ChurnModel::generate`].
///
/// [`ChurnModel::generate`] materializes a whole timeline up front, which is
/// right for experiment specs (bounded, serialized into artifacts) but wrong
/// for a load generator that drives *millions* of events across thousands of
/// tenants — there the stream keeps the arrival/departure bookkeeping (active
/// tenant set, next tenant id) alive across draws and emits one epoch at a
/// time in O(epoch) memory.
///
/// Draw-order compatible with `generate`: collecting `n` epochs from a fresh
/// stream yields byte-identical events to `generate(tree, n, rng)` from the
/// same RNG state (`generate` *is* this stream, collected — a golden-pinned
/// guarantee, see `crates/exp` dynamic-churn goldens).
#[derive(Debug, Clone)]
pub struct ChurnStream<R> {
    model: ChurnModel,
    rng: R,
    depart_probability: f64,
    // The leaf set is collected once per stream (not per event — a
    // paper-scale run draws hundreds of events) and sampled exactly like
    // `Tree::random_leaf` / `Tree::sample_leaves`, so seeded timelines are
    // unchanged by the hoisting.
    leaf_pool: Vec<NodeId>,
    footprint: Vec<NodeId>,
    next_tenant: TenantId,
    active: Vec<TenantId>,
    /// Switch count of the tree — the draw pool of failure-domain events.
    n_switches: usize,
    /// Switches currently exhausted, so flaps toggle instead of re-failing.
    down: Vec<NodeId>,
}

impl<R: Rng> ChurnStream<R> {
    /// A stream over `tree` owning its RNG. Panics if `model.mean_lifetime`
    /// is below one epoch.
    pub fn new(model: ChurnModel, tree: &Tree, rng: R) -> Self {
        assert!(
            model.mean_lifetime >= 1.0,
            "mean_lifetime must be at least one epoch"
        );
        let leaf_pool: Vec<NodeId> = tree.leaves().collect();
        ChurnStream {
            depart_probability: 1.0 / model.mean_lifetime,
            footprint: leaf_pool.clone(),
            leaf_pool,
            model,
            rng,
            next_tenant: 0,
            active: Vec::new(),
            n_switches: tree.n_switches(),
            down: Vec::new(),
        }
    }

    /// Number of tenants currently active (arrived, not yet departed).
    pub fn active_tenants(&self) -> usize {
        self.active.len()
    }

    /// Draws the next epoch's event batch.
    pub fn next_epoch(&mut self) -> Epoch {
        let rng = &mut self.rng;
        let mut epoch = Epoch::new();
        // Departures first: a tenant never arrives and departs in one epoch.
        let mut idx = 0;
        while idx < self.active.len() {
            if rng.random::<f64>() < self.depart_probability {
                epoch.push(ChurnEvent::TenantDepart {
                    tenant: self.active.swap_remove(idx),
                });
            } else {
                idx += 1;
            }
        }
        for _ in 0..count(self.model.arrivals_per_epoch, rng) {
            let spec = self.model.tenant_load_spec(rng);
            // Partial Fisher-Yates over the reused pool copy — the same
            // draw `Tree::sample_leaves` performs.
            self.footprint.copy_from_slice(&self.leaf_pool);
            let take = self.model.tenant_leaves.min(self.footprint.len());
            for slot in 0..take {
                let pick = rng.random_range(slot..self.footprint.len());
                self.footprint.swap(slot, pick);
            }
            self.footprint[..take].sort_unstable();
            let loads = self.footprint[..take]
                .iter()
                .enumerate()
                .map(|(i, &leaf)| (leaf, spec.sample(i, rng).max(1)))
                .collect();
            epoch.push(ChurnEvent::TenantArrive {
                tenant: self.next_tenant,
                loads,
            });
            self.active.push(self.next_tenant);
            self.next_tenant += 1;
        }
        for _ in 0..count(self.model.rate_changes_per_epoch, rng) {
            let leaf = self.leaf_pool[rng.random_range(0..self.leaf_pool.len())];
            epoch.push(ChurnEvent::LeafRateChange {
                leaf,
                load: self.model.load.sample(leaf, rng),
            });
        }
        // Failure-domain draws come last and are gated on their expectations
        // being non-zero: a zeroed model consumes no extra RNG draws, so the
        // golden-pinned timelines of pre-failure models are byte-identical.
        if self.model.switch_flaps_per_epoch > 0.0 {
            for _ in 0..count(self.model.switch_flaps_per_epoch, rng) {
                let switch = rng.random_range(0..self.n_switches);
                match self.down.iter().position(|&s| s == switch) {
                    Some(at) => {
                        self.down.swap_remove(at);
                        epoch.push(ChurnEvent::SwitchAvailability {
                            switch,
                            available: true,
                        });
                    }
                    None => {
                        self.down.push(switch);
                        epoch.push(ChurnEvent::SwitchAvailability {
                            switch,
                            available: false,
                        });
                    }
                }
            }
        }
        if self.model.link_rate_changes_per_epoch > 0.0 {
            let (lo, hi) = self.model.link_rates;
            assert!(
                lo.is_finite() && lo > 0.0 && hi >= lo,
                "link_rates must be a positive, ordered range, got ({lo}, {hi})"
            );
            for _ in 0..count(self.model.link_rate_changes_per_epoch, rng) {
                let switch = rng.random_range(0..self.n_switches);
                let rate = lo + (hi - lo) * rng.random::<f64>();
                epoch.push(ChurnEvent::LinkRateChange { switch, rate });
            }
        }
        epoch
    }
}

/// Draws an integer with the given expectation: the integer part always
/// happens, the fractional part with matching probability.
fn count<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    let base = mean.max(0.0).floor();
    let extra = usize::from(rng.random::<f64>() < mean.max(0.0) - base);
    base as usize + extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;
    use std::collections::BTreeSet;

    #[test]
    fn timelines_are_seed_deterministic_and_replay_cleanly() {
        let tree = builders::complete_binary_tree_bt(64);
        let model = ChurnModel::paper_default();
        let a = model.generate(&tree, 20, &mut StdRng::seed_from_u64(3));
        let b = model.generate(&tree, 20, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b, "same seed, same timeline");
        assert_eq!(a.len(), 20);

        // Every departure names an active tenant; arrivals are unique.
        let mut active: BTreeSet<TenantId> = BTreeSet::new();
        let mut saw_arrival = false;
        let mut saw_rate_change = false;
        for epoch in &a {
            for event in epoch {
                match event {
                    ChurnEvent::TenantArrive { tenant, loads } => {
                        assert!(active.insert(*tenant), "tenant {tenant} arrived twice");
                        assert_eq!(loads.len(), model.tenant_leaves);
                        assert!(loads.iter().all(|&(v, load)| tree.is_leaf(v) && load > 0));
                        saw_arrival = true;
                    }
                    ChurnEvent::TenantDepart { tenant } => {
                        assert!(active.remove(tenant), "tenant {tenant} departed twice");
                    }
                    ChurnEvent::LeafRateChange { leaf, .. } => {
                        assert!(tree.is_leaf(*leaf));
                        saw_rate_change = true;
                    }
                    ChurnEvent::BudgetChange { .. } => {}
                    ChurnEvent::SwitchAvailability { .. } | ChurnEvent::LinkRateChange { .. } => {
                        panic!("paper_default draws no failure-domain events")
                    }
                }
            }
        }
        assert!(saw_arrival && saw_rate_change);
    }

    #[test]
    fn fractional_rates_hit_their_expectation_roughly() {
        let tree = builders::complete_binary_tree_bt(32);
        let model = ChurnModel {
            arrivals_per_epoch: 0.5,
            mean_lifetime: 1.0, // depart immediately the next epoch
            rate_changes_per_epoch: 0.0,
            tenant_leaves: 2,
            load: LoadSpec::Constant(3),
            mixed_tenants: false,
            ..ChurnModel::paper_default()
        };
        let timeline = model.generate(&tree, 400, &mut StdRng::seed_from_u64(11));
        let arrivals: usize = timeline
            .iter()
            .flatten()
            .filter(|e| matches!(e, ChurnEvent::TenantArrive { .. }))
            .count();
        // E = 200; a generous band keeps the test robust across RNG streams.
        assert!((120..=280).contains(&arrivals), "arrivals = {arrivals}");
        // Constant loads come through verbatim when mixing is off.
        for event in timeline.iter().flatten() {
            if let ChurnEvent::TenantArrive { loads, .. } = event {
                assert!(loads.iter().all(|&(_, load)| load == 3));
            }
        }
    }

    #[test]
    fn stream_matches_generate_draw_for_draw() {
        let tree = builders::complete_binary_tree_bt(64);
        let model = ChurnModel::paper_default();
        let timeline = model.generate(&tree, 50, &mut StdRng::seed_from_u64(9));
        let mut stream = ChurnStream::new(model, &tree, StdRng::seed_from_u64(9));
        let mut active = 0usize;
        for (i, epoch) in timeline.iter().enumerate() {
            assert_eq!(&stream.next_epoch(), epoch, "epoch {i}");
            for event in epoch {
                match event {
                    ChurnEvent::TenantArrive { .. } => active += 1,
                    ChurnEvent::TenantDepart { .. } => active -= 1,
                    _ => {}
                }
            }
            assert_eq!(stream.active_tenants(), active);
        }
    }

    #[test]
    fn failure_model_draws_paired_flaps_and_bounded_rates() {
        let tree = builders::complete_binary_tree_bt(64);
        let model = ChurnModel::failure_default();
        let timeline = model.generate(&tree, 200, &mut StdRng::seed_from_u64(21));

        // Flaps toggle: a switch that goes down is down until its next flap,
        // so the per-switch event sequence strictly alternates.
        let mut down: BTreeSet<NodeId> = BTreeSet::new();
        let mut saw_flap = false;
        let mut saw_rate = false;
        for event in timeline.iter().flatten() {
            match event {
                ChurnEvent::SwitchAvailability { switch, available } => {
                    saw_flap = true;
                    assert!(*switch < tree.n_switches());
                    if *available {
                        assert!(down.remove(switch), "recovery of an up switch");
                    } else {
                        assert!(down.insert(*switch), "failure of a down switch");
                    }
                }
                ChurnEvent::LinkRateChange { switch, rate } => {
                    saw_rate = true;
                    assert!(*switch < tree.n_switches());
                    assert!((0.5..=2.0).contains(rate), "rate {rate} out of range");
                }
                _ => {}
            }
        }
        assert!(saw_flap && saw_rate);

        // Zeroing the failure fields reproduces the pre-failure draw stream:
        // the gated draws consume no RNG state.
        let quiet = ChurnModel::paper_default();
        assert_eq!(
            quiet.generate(&tree, 50, &mut StdRng::seed_from_u64(9)),
            ChurnModel {
                switch_flaps_per_epoch: 0.0,
                link_rate_changes_per_epoch: 0.0,
                ..ChurnModel::failure_default()
            }
            .generate(&tree, 50, &mut StdRng::seed_from_u64(9)),
        );
    }

    #[test]
    fn events_round_trip_through_json() {
        let events: Epoch = vec![
            ChurnEvent::LeafRateChange { leaf: 3, load: 7 },
            ChurnEvent::TenantArrive {
                tenant: 1,
                loads: vec![(3, 5), (4, 2)],
            },
            ChurnEvent::TenantDepart { tenant: 1 },
            ChurnEvent::BudgetChange { budget: 8 },
            ChurnEvent::SwitchAvailability {
                switch: 2,
                available: false,
            },
            ChurnEvent::LinkRateChange {
                switch: 1,
                rate: 0.75,
            },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let parsed: Epoch = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, events);
    }
}
