//! A minimal, self-contained benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use, for offline builds.
//!
//! Each benchmark runs a short warm-up, then a measured batch, and prints the mean
//! wall-clock time per iteration. Statistical analysis, plots and HTML reports of
//! the real crate are intentionally out of scope; timings are real, so the benches
//! remain useful for relative comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_id}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: let caches and branch predictors settle, and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) && warmup_iters < 1_000 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        // Aim for ~200 ms of measurement, capped to keep huge benches bounded.
        let target = (0.2 / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim uses its own
    /// time-based batch sizing).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, &mut routine);
        self
    }

    /// Benchmarks a routine that receives an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, &mut |b| routine(b, input));
        self
    }

    /// Finishes the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim ignores CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut routine);
        self
    }

    fn run_one(&mut self, label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.iters == 0 {
            println!("{label:<50} (no iterations recorded)");
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        println!(
            "{label:<50} {:>12}   ({} iterations)",
            format_time(per_iter),
            bencher.iters
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); the shim ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
