//! JSON rendering and parsing for the local serde shim's [`serde::Value`] model.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON parsing or by the value-to-type conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into the raw [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at offset {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let rendered = f.to_string();
                out.push_str(&rendered);
                // Keep floats recognizable as floats where cheap (serde_json prints
                // `2.0`, not `2`).
                if !rendered.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at offset {pos:?}",
            byte as char
        )))
    }
}

fn parse(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at offset {pos:?}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() {
        return Err(Error(format!("unexpected character at offset {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Some(stripped) = text.strip_prefix('-') {
            if stripped.parse::<u64>().is_ok() {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "3",
            "-4",
            "2.5",
            "\"hi\\n\"",
            "[]",
            "{}",
        ] {
            let value = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&value, &mut out, None, 0);
            assert_eq!(out, json, "round-trip of {json}");
        }
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        let value = parse_value(json).unwrap();
        assert_eq!(value.get("c"), Some(&Value::Null));
        let mut out = String::new();
        write_value(&value, &mut out, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn typed_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let value = parse_value(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let mut out = String::new();
        write_value(&value, &mut out, Some(2), 0);
        assert_eq!(parse_value(&out).unwrap(), value);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nope").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
