//! A small, self-contained implementation of the subset of the `rand` 0.9 API this
//! workspace uses, for offline builds: [`rng`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded through
//! SplitMix64 exactly like `rand`'s `seed_from_u64`, so seeded streams are
//! deterministic, portable and of high statistical quality. This is *not* a
//! cryptographic RNG.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the `StandardUniform`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the `SampleRange` of the real crate).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, bound)` by rejection on the widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Lemire's multiply-shift with rejection for exact uniformity.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t>::sample_standard(rng);
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG from OS-ish entropy (time + ASLR noise).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // RandomState carries per-process random keys, adding entropy beyond the clock.
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(nanos);
    h.finish()
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily entropy-seeded RNG, one per call site of [`super::rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh entropy-seeded RNG (the moral equivalent of `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::StdRng::from_entropy())
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Extension methods on slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(4..=6);
            assert!((4..=6).contains(&x));
            let y: usize = rng.random_range(0..5);
            assert!(y < 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is essentially never identity"
        );
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut StdRng = &mut rng;
        let x = draw(dynrng);
        assert!((0.0..1.0).contains(&x));
    }
}
