//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the local serde shim.
//!
//! The macros are written against the raw `proc_macro` API (no `syn`/`quote`, which
//! are unavailable offline). They support what this workspace actually derives:
//! non-generic structs with named fields and non-generic enums with unit, tuple and
//! struct variants, plus the `#[serde(default)]` field attribute. Generated impls
//! convert through `serde::Value` using serde's default encoding conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Parses the derive input into our tiny item model.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "pub" {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                } else if word == "struct" || word == "enum" {
                    i += 1;
                    break word;
                } else {
                    return Err(format!("unexpected token `{word}` before struct/enum"));
                }
            }
            other => return Err(format!("unexpected derive input near {other:?}")),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the serde shim derive does not support generics (type `{name}`)"
        ));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the serde shim derive does not support tuple structs (type `{name}`)"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("no body found for type `{name}`")),
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_fields(&body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        })
    }
}

/// `true` if this `#[...]` attribute group is `serde(... default ...)`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parses `attr* vis? name : Type ,` sequences from a brace-group body.
fn parse_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                default |= is_serde_default(g);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type up to the next top-level comma (tracking angle brackets).
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or past the end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Counts the fields of a tuple-variant payload group.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(&g.stream().into_iter().collect::<Vec<_>>())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip anything up to the separating comma (e.g. discriminants).
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct_body(fields: &[Field]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from({name:?}), serde::Serialize::to_value(&self.{name}))",
                name = f.name
            )
        })
        .collect();
    format!("serde::Value::Obj(vec![{}])", entries.join(", "))
}

fn serialize_fields_of_bindings(fields: &[Field]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from({name:?}), serde::Serialize::to_value({name}))",
                name = f.name
            )
        })
        .collect();
    format!("serde::Value::Obj(vec![{}])", entries.join(", "))
}

fn deserialize_struct_fields(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let helper = if f.default {
                "field_or_default"
            } else {
                "field"
            };
            format!("{}: serde::{helper}({source}, {:?})?,", f.name, f.name)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {} }}\n\
             }}",
            serialize_struct_body(fields)
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => serde::Value::Str(String::from({v:?})),",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(f0) => serde::Value::Obj(vec![(String::from({v:?}), \
                         serde::Serialize::to_value(f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|j| format!("f{j}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Obj(vec![(String::from({v:?}), \
                             serde::Value::Arr(vec![{items}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Obj(vec![(String::from({v:?}), {inner})]),",
                            v = v.name,
                            binds = binds.join(", "),
                            inner = serialize_fields_of_bindings(fields)
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     if value.as_object().is_none() {{\n\
                         return Err(serde::Error::msg(format!(\
                             \"expected an object for {name}, got {{value:?}}\")));\n\
                     }}\n\
                     Ok({name} {{ {} }})\n\
                 }}\n\
             }}",
            deserialize_struct_fields(fields, "value")
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{v:?} => return Ok({name}::{v}),", v = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "{v:?} => return Ok({name}::{v}(serde::Deserialize::from_value(payload)?)),",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|j| format!("serde::Deserialize::from_value(&items[{j}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match payload {{\n\
                                 serde::Value::Arr(items) if items.len() == {n} => \
                                     return Ok({name}::{v}({items})),\n\
                                 _ => return Err(serde::Error::msg(format!(\
                                     \"variant {v} of {name} expects a {n}-array\"))),\n\
                             }},",
                            v = v.name,
                            items = items.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => Some(format!(
                        "{v:?} => return Ok({name}::{v} {{ {} }}),",
                        deserialize_struct_fields(fields, "payload"),
                        v = v.name
                    )),
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         if let Some(s) = value.as_str() {{\n\
                             match s {{\n\
                                 {units}\n\
                                 _ => return Err(serde::Error::msg(format!(\
                                     \"unknown variant `{{s}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         #[allow(unused_variables)]\n\
                         if let Some((key, payload)) = value.as_single_entry() {{\n\
                             match key {{\n\
                                 {datas}\n\
                                 _ => return Err(serde::Error::msg(format!(\
                                     \"unknown variant `{{key}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         Err(serde::Error::msg(format!(\
                             \"expected a {name} variant, got {{value:?}}\")))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n")
            )
        }
    }
}

/// Derives `serde::Serialize` (shim) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize` (shim) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}
