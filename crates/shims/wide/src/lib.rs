//! Local API-compatible subset of the [`wide`](https://docs.rs/wide) crate.
//!
//! The build environment has no crates.io access, so this shim provides the one
//! lane type the SOAR gather kernel needs: [`f64x4`], a four-lane f64 vector with
//! element-wise add / min / compare / blend. Every method is written as a plain
//! per-lane loop over a `#[repr(align(32))]` array — the shapes LLVM's
//! auto-vectorizer reliably turns into `vaddpd` / `vminpd` / `vcmppd` /
//! `vblendvpd` on AVX targets (and NEON equivalents on aarch64) without any
//! `unsafe` or target-feature gates. Swapping in the real `wide` crate is a
//! Cargo.toml-only change.
//!
//! Semantics notes that the min-plus kernel relies on:
//!
//! * [`f64x4::min`] is IEEE-754 `minNum`-like via `f64::min` per lane; the kernel
//!   never produces NaN (it only adds and compares non-negative costs and `INF`),
//!   so NaN propagation rules never come into play.
//! * [`f64x4::cmp_lt`] returns an all-bits mask per lane (the `wide` convention),
//!   consumed by [`f64x4::blend`]: `mask.blend(t, f)` picks `t` where the mask is
//!   set. Masks are total (all-ones or all-zeros per lane), never partial.

/// Four f64 lanes, 32-byte aligned so a lane load/store is a single vector move.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C, align(32))]
pub struct f64x4 {
    arr: [f64; 4],
}

#[allow(non_camel_case_types)]
impl f64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// All lanes zero.
    pub const ZERO: f64x4 = f64x4 { arr: [0.0; 4] };

    /// Builds a vector from four lane values.
    #[inline(always)]
    pub const fn new(arr: [f64; 4]) -> Self {
        f64x4 { arr }
    }

    /// Broadcasts one value into all lanes.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        f64x4 { arr: [v; 4] }
    }

    /// Loads four consecutive lanes from `slice[0..4]`.
    #[inline(always)]
    pub fn from_slice(slice: &[f64]) -> Self {
        f64x4 {
            arr: [slice[0], slice[1], slice[2], slice[3]],
        }
    }

    /// Stores the lanes into `slice[0..4]`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f64]) {
        slice[..4].copy_from_slice(&self.arr);
    }

    /// The lanes as a plain array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.arr
    }

    /// Element-wise minimum (`f64::min` per lane).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| self.arr[lane].min(rhs.arr[lane])),
        }
    }

    /// Element-wise `self < rhs`, as an all-bits-per-lane mask.
    #[inline(always)]
    pub fn cmp_lt(self, rhs: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| {
                if self.arr[lane] < rhs.arr[lane] {
                    f64::from_bits(u64::MAX)
                } else {
                    0.0
                }
            }),
        }
    }

    /// Lane-wise select: where `self`'s lane mask is set take `t`, else `f`.
    #[inline(always)]
    pub fn blend(self, t: Self, f: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| {
                let m = self.arr[lane].to_bits();
                f64::from_bits((t.arr[lane].to_bits() & m) | (f.arr[lane].to_bits() & !m))
            }),
        }
    }

    /// Horizontal minimum across the four lanes.
    #[inline(always)]
    pub fn reduce_min(self) -> f64 {
        self.arr[0]
            .min(self.arr[1])
            .min(self.arr[2].min(self.arr[3]))
    }

    /// True if any lane's mask bit is set (for masks produced by [`cmp_lt`]).
    ///
    /// [`cmp_lt`]: f64x4::cmp_lt
    #[inline(always)]
    pub fn any(self) -> bool {
        self.arr.iter().any(|&m| m.to_bits() != 0)
    }
}

impl core::ops::Add for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| self.arr[lane] + rhs.arr[lane]),
        }
    }
}

impl core::ops::Sub for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| self.arr[lane] - rhs.arr[lane]),
        }
    }
}

impl core::ops::Mul for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        f64x4 {
            arr: core::array::from_fn(|lane| self.arr[lane] * rhs.arr[lane]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::f64x4;

    #[test]
    fn add_min_blend_roundtrip() {
        let a = f64x4::new([1.0, 5.0, 3.0, f64::INFINITY]);
        let b = f64x4::splat(4.0);
        assert_eq!((a + b).to_array(), [5.0, 9.0, 7.0, f64::INFINITY]);
        assert_eq!(a.min(b).to_array(), [1.0, 4.0, 3.0, 4.0]);

        let mask = a.cmp_lt(b);
        assert!(mask.any());
        let picked = mask.blend(f64x4::splat(-1.0), f64x4::splat(1.0));
        assert_eq!(picked.to_array(), [-1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn slice_io_and_reduce() {
        let src = [9.0, 2.0, 7.0, 4.0, 99.0];
        let v = f64x4::from_slice(&src);
        assert_eq!(v.reduce_min(), 2.0);
        let mut dst = [0.0; 4];
        v.write_to_slice(&mut dst);
        assert_eq!(dst, [9.0, 2.0, 7.0, 4.0]);
    }

    #[test]
    fn infinities_compare_like_scalar() {
        let inf = f64x4::splat(f64::INFINITY);
        // INF < INF is false, so the mask is empty and blend keeps the fallback.
        assert!(!inf.cmp_lt(inf).any());
        assert_eq!(
            inf.cmp_lt(inf).blend(f64x4::ZERO, inf).to_array(),
            [f64::INFINITY; 4]
        );
    }
}
