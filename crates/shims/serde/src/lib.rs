//! A small data-model-based stand-in for `serde`, sufficient for the derives this
//! workspace uses, for offline builds.
//!
//! Instead of serde's visitor architecture, values convert to and from a single
//! self-describing [`Value`] tree; `serde_json` (the sibling shim) renders that tree
//! as JSON. The [`Serialize`] / [`Deserialize`] derive macros are re-exported from
//! `serde_derive` and generate `Value`-based impls with serde's default encoding
//! conventions (structs as objects, unit enum variants as strings, data-carrying
//! variants as single-entry objects). The only field attribute honoured is
//! `#[serde(default)]`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing value tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// For single-entry objects (`{"Variant": ...}`), the key and payload.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Obj(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// Looks up a field in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected an unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!("expected an integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // serde_json encodes non-finite floats as null.
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected a number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected an array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected a 2-array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected a 3-array, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => render_key(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

fn render_key(value: &Value) -> String {
    match value {
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            ("nanos".to_owned(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = field(value, "secs")?;
        let nanos: u32 = field(value, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code
// ---------------------------------------------------------------------------

/// Extracts and deserializes a required object field (type inferred at the call site).
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
        }
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Extracts an object field marked `#[serde(default)]`, falling back to `Default`.
pub fn field_or_default<T: Deserialize + Default>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
        }
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&3u8.to_value()), Ok(Some(3)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }

    #[test]
    fn field_helpers() {
        let obj = Value::Obj(vec![("a".into(), Value::UInt(3))]);
        assert_eq!(field::<u32>(&obj, "a"), Ok(3));
        assert!(field::<u32>(&obj, "b").is_err());
        assert_eq!(field_or_default::<Vec<bool>>(&obj, "b"), Ok(vec![]));
    }
}
