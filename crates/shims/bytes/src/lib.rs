//! A minimal implementation of the subset of the `bytes` crate this workspace uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] cursor traits, for offline
//! builds.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable storage
//! (`Arc<[u8]>` + offset/length), which preserves the zero-copy `clone`/`slice`
//! semantics the dataplane relies on when fanning one encoded frame out to several
//! links.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(data.into_boxed_slice());
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer. All `get_*` methods use big-endian order and panic
/// when the buffer is too short, exactly like the real crate.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes from the front.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.as_slice()[..n].to_vec();
        self.start += n;
        out
    }
}

/// Write cursor over a growable byte buffer; all `put_*` methods use big-endian order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_f64(2.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 1 + 4 + 8 + 8);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(bytes.get_f64(), 2.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_clone_cheaply() {
        let bytes = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let head = bytes.slice(0..2);
        let tail = bytes.slice(2..);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
        assert_eq!(bytes.clone(), bytes);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::copy_from_slice(&[1]);
        let _ = bytes.get_u32();
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let bytes = Bytes::copy_from_slice(&[1, 2]);
        let _ = bytes.slice(0..3);
    }
}
