//! End-to-end smoke: an in-process server driven by a small closed-loop
//! loadtest run, then a deliberately tiny-queue overload run that must shed
//! instead of buffer.

use soar_loadtest::{artifact, run, LoadtestConfig};
use soar_serve::server::{start, ServeConfig};

#[test]
fn closed_loop_run_applies_events_cleanly() {
    let handle = start(ServeConfig::default()).unwrap();
    let config = LoadtestConfig {
        addr: handle.addr(),
        tenants: 8,
        switches: 64,
        budget: 4,
        connections: 2,
        window: 8,
        events_per_batch: 20,
        batches: 40,
        solve_every: 4,
        shutdown: true,
        ..LoadtestConfig::default()
    };
    let report = run(&config).unwrap();
    let snap = handle.join();

    assert_eq!(report.batches_sent, 40);
    assert!(report.events_applied >= 40 * 20, "{report:?}");
    assert_eq!(report.sheds, 0, "closed loop at low load must not shed");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.solves, 40 / 4);
    assert!(report.events_per_sec() > 0.0);
    assert!(report.churn_latency.count >= 40);
    assert_eq!(snap.io_errors, 0);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.events_applied, report.events_applied);

    // The artifact mirrors the report: 3 charts, finite timing values,
    // zeroed failure counters.
    let art = artifact(&config, &report);
    assert_eq!(art.charts.len(), 3);
    assert_eq!(art.spec.timing_chart_indices(), vec![0, 1]);
    for series in &art.charts[2].series {
        assert_eq!(series.points[0].1, 0.0, "{}", series.label);
    }
    assert!(art.charts[1].series[0].points[0].1.is_finite());
}

#[test]
fn overloaded_open_loop_sheds_instead_of_buffering() {
    let handle = start(ServeConfig {
        queue_cap: 2,
        tenant_inflight_cap: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let config = LoadtestConfig {
        addr: handle.addr(),
        tenants: 2,
        switches: 512,
        budget: 8,
        connections: 1,
        window: 1,
        events_per_batch: 50,
        batches: 64,
        solve_every: 1,
        rate: 1e9, // effectively "as fast as possible", open loop
        shutdown: true,
        ..LoadtestConfig::default()
    };
    let report = run(&config).unwrap();
    let snap = handle.join();

    assert!(
        report.sheds > 0,
        "open loop against cap 2 must shed: {report:?}"
    );
    assert_eq!(
        report.sheds,
        snap.sheds(),
        "client and server shed counts agree"
    );
    // Shed batches may break churn-stream continuity (dropped TenantArrive →
    // later TenantDepart errors), so errors are tolerated here — but the
    // transport must stay healthy and work must still flow.
    assert_eq!(snap.io_errors, 0);
    assert!(
        report.events_applied > 0,
        "some batches still get through under overload"
    );
}
