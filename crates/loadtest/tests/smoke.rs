//! End-to-end smoke: an in-process server driven by a small closed-loop
//! loadtest run, a deliberately tiny-queue overload run that must shed
//! instead of buffer, and a chaos run whose delivery accounting must balance
//! exactly.

use soar_loadtest::{artifact, chaos_artifact, run, ChaosConfig, LoadtestConfig};
use soar_serve::server::{start, ServeConfig};

#[test]
fn closed_loop_run_applies_events_cleanly() {
    let handle = start(ServeConfig {
        obs_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    })
    .unwrap();
    let config = LoadtestConfig {
        addr: handle.addr(),
        tenants: 8,
        switches: 64,
        budget: 4,
        connections: 2,
        window: 8,
        events_per_batch: 20,
        batches: 40,
        solve_every: 4,
        shutdown: true,
        obs_addr: handle.obs_addr(),
        ..LoadtestConfig::default()
    };
    let report = run(&config).unwrap();
    let snap = handle.join();
    // The Prometheus scrape agreed with the binary snapshot (run() errors
    // out otherwise).
    assert!(report.obs_counters_checked.unwrap() >= 8);

    assert_eq!(report.batches_sent, 40);
    assert!(report.events_applied >= 40 * 20, "{report:?}");
    assert_eq!(report.sheds, 0, "closed loop at low load must not shed");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.solves, 40 / 4);
    assert!(report.events_per_sec() > 0.0);
    assert!(report.churn_latency.count >= 40);
    assert_eq!(snap.io_errors, 0);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.events_applied, report.events_applied);

    // The artifact mirrors the report: 3 charts, finite timing values,
    // zeroed failure counters.
    let art = artifact(&config, &report);
    assert_eq!(art.charts.len(), 3);
    assert_eq!(art.spec.timing_chart_indices(), vec![0, 1]);
    for series in &art.charts[2].series {
        assert_eq!(series.points[0].1, 0.0, "{}", series.label);
    }
    assert!(art.charts[1].series[0].points[0].1.is_finite());
}

#[test]
fn overloaded_open_loop_sheds_instead_of_buffering() {
    let handle = start(ServeConfig {
        queue_cap: 2,
        tenant_inflight_cap: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let config = LoadtestConfig {
        addr: handle.addr(),
        tenants: 2,
        switches: 512,
        budget: 8,
        connections: 1,
        window: 1,
        events_per_batch: 50,
        batches: 64,
        solve_every: 1,
        rate: 1e9, // effectively "as fast as possible", open loop
        shutdown: true,
        ..LoadtestConfig::default()
    };
    let report = run(&config).unwrap();
    let snap = handle.join();

    assert!(
        report.sheds > 0,
        "open loop against cap 2 must shed: {report:?}"
    );
    assert_eq!(
        report.sheds,
        snap.sheds(),
        "client and server shed counts agree"
    );
    // Shed batches may break churn-stream continuity (dropped TenantArrive →
    // later TenantDepart errors), so errors are tolerated here — but the
    // transport must stay healthy and work must still flow.
    assert_eq!(snap.io_errors, 0);
    assert!(
        report.events_applied > 0,
        "some batches still get through under overload"
    );
}

#[test]
fn chaos_run_accounts_for_every_batch_exactly() {
    let state_dir = std::env::temp_dir().join(format!("soar-chaos-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let handle = start(ServeConfig {
        state_dir: Some(state_dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let config = LoadtestConfig {
        addr: handle.addr(),
        tenants: 4,
        switches: 64,
        budget: 4,
        connections: 2,
        events_per_batch: 10,
        batches: 80,
        solve_every: 8,
        chaos: Some(ChaosConfig::standard()),
        shutdown: true,
        ..LoadtestConfig::default()
    };
    let report = run(&config).unwrap();
    let snap = handle.join();
    let _ = std::fs::remove_dir_all(&state_dir);

    let r = report.resilience.as_ref().expect("resilient run");
    // The exactly-once contract: every generated batch is accounted, and with
    // the server up throughout, none may be lost.
    assert_eq!(r.batches_generated, 80);
    assert_eq!(r.unaccounted(), 0, "{r:?}");
    assert_eq!(r.batches_lost, 0, "{r:?}");
    assert_eq!(r.batches_applied, 80, "{r:?}");
    // ~20% injection over 80 batches: statistically certain to fire, and the
    // run must have healed (retries reconnect through every fault class).
    let injected = r.injected_drops
        + r.injected_mid_frame_kills
        + r.injected_malformed_frames
        + r.injected_stalls;
    assert!(injected > 0, "{r:?}");
    assert!(r.retries > 0 && r.reconnects > 0, "{r:?}");
    // Deduped replays equal the server's own count of duplicate acks.
    assert_eq!(r.duplicates, snap.duplicate_churns, "{r:?}");
    // Retried-until-applied batches keep churn-stream continuity, so no
    // application errors; the client's applied-event count misses only
    // batches whose ack was destroyed (deduped on replay with applied=0).
    assert_eq!(report.errors, 0, "{report:?}");
    assert!(report.events_applied <= snap.events_applied);
    // Every batch applied exactly once with >= events_per_batch events.
    assert!(snap.events_applied >= 80 * 10, "{snap:?}");
    // WAL persisted every consumed batch: registers + churn (incl. probes).
    assert!(snap.wal_records >= 4 + 80);
    assert_eq!(snap.wal_errors, 0);

    let art = chaos_artifact(&config, &report);
    assert_eq!(art.charts.len(), 3);
    assert_eq!(art.spec.timing_chart_indices(), vec![0, 1]);
    for series in &art.charts[2].series {
        assert_eq!(series.points[0].1, 0.0, "{}", series.label);
    }
}
