//! # soar-loadtest
//!
//! A client harness for `soar serve`: synthesizes churn for thousands of
//! tenants from [`ChurnStream`]s, drives the daemon over its wire protocol
//! with open- or closed-loop arrival control, and reports sustained
//! events/sec plus client-side p50/p99/p999 latency — both human-readable and
//! as a `BENCH_serve.json` [`RunArtifact`] that `soar history check` gates.
//!
//! Shape of a run:
//!
//! 1. every connection thread registers its share of the tenants (awaiting
//!    each ack — registration is the one strictly-ordered step);
//! 2. senders stream churn batches (one request per accumulated
//!    [`ChurnStream`] epoch run, sized by `events_per_batch`), optionally
//!    interleaving solves, while a receiver thread per connection correlates
//!    responses by `req_id` and records end-to-end latency into
//!    [`LatencyHistogram`]s;
//! 3. **closed loop** (`rate == 0`): at most `window` requests in flight per
//!    connection — throughput is whatever the server sustains. **Open loop**
//!    (`rate > 0`): batches are injected on a wall-clock schedule regardless
//!    of completions — an overloaded server then *sheds* (explicit
//!    `Overloaded` responses) rather than queueing without bound, and the
//!    report counts the sheds;
//! 4. the harness fetches the server's [`MetricsSnapshot`] over a fresh
//!    control connection and folds both sides into the report/artifact.
//!
//! With [`LoadtestConfig::chaos`] set the harness switches to the **resilient
//! driver**: per-request read timeouts, reconnect with capped exponential
//! backoff, and per-tenant sequence numbers so a batch whose ack was lost can
//! be blindly replayed — the server dedupes and answers `duplicate: true`.
//! [`ChaosConfig`] injects faults (connection drops before/after send, torn
//! frames, undecodable frames, slow-reader stalls) around real traffic, and
//! the run keeps **exact accounting**: every generated batch ends up either
//! applied exactly once or explicitly counted lost
//! ([`ResilienceReport::unaccounted`] is zero by construction on a completed
//! run). The same driver rides out a server SIGKILL-and-restart (`--recover`)
//! cycle, which is how the CI chaos smoke exercises crash recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar_dataplane::framing;
use soar_exp::spec::ExperimentKind;
use soar_exp::{Chart, ExperimentSpec, RunArtifact, Series};
use soar_multitenant::churn::{ChurnEvent, ChurnModel, ChurnStream};
use soar_obs::hist::LatencyHistogram;
use soar_serve::metrics::{LatencySummary, MetricsSnapshot};
use soar_serve::protocol::{ErrorCode, Request, RequestBody, ResponseBody};
use soar_serve::server::{Client, ClientError};
use soar_topology::builders;
use soar_topology::load::LoadSpec;
use soar_topology::Tree;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Loadtest knobs. `Default` is a small smoke-sized run; the CLI maps flags
/// onto every field.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The server to drive.
    pub addr: SocketAddr,
    /// Service tenants to register (spread round-robin over connections).
    pub tenants: u64,
    /// `BT(n)` size of every tenant's tree.
    pub switches: u32,
    /// Aggregation budget `k` of every tenant.
    pub budget: u32,
    /// Concurrent client connections (clamped to the tenant count).
    pub connections: usize,
    /// Closed-loop in-flight window per connection.
    pub window: usize,
    /// Minimum churn events per request batch (the churn model is sized to
    /// emit roughly this many per epoch).
    pub events_per_batch: usize,
    /// Total churn batches across all connections.
    pub batches: u64,
    /// Interleave one `Solve` after every N churn batches per connection
    /// (0 = never).
    pub solve_every: u64,
    /// Open-loop target in churn events/sec across the whole run
    /// (0 = closed loop).
    pub rate: f64,
    /// Base seed; tenant `t`'s instance seed and churn stream derive from it.
    pub seed: u64,
    /// Send `Shutdown` when done (the CI smoke asserts the daemon then exits
    /// cleanly).
    pub shutdown: bool,
    /// Fault injection. `Some` switches every connection to the resilient
    /// driver (timeouts, reconnect, sequence-numbered idempotent replay) —
    /// `ChaosConfig::default()` is all-zero probabilities, i.e. resilience
    /// without injected faults.
    pub chaos: Option<ChaosConfig>,
    /// Per-request read timeout of the resilient driver; a response that
    /// doesn't arrive in time counts as a failed attempt and triggers
    /// reconnect + replay.
    pub request_timeout: Duration,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling (the knee of "capped exponential").
    pub backoff_cap: Duration,
    /// Attempts per churn batch before it is *classified*: a final probe asks
    /// the server whether the batch's sequence number was consumed, and the
    /// batch is counted applied or explicitly lost accordingly.
    pub max_attempts: u32,
    /// The daemon's Prometheus endpoint (`soar serve --obs-addr`). `Some`
    /// makes the control tail scrape `/metrics` and **fail the run** if the
    /// exposition disagrees with the binary metrics snapshot on any quiesced
    /// counter — the two render paths share one source, so drift is a bug.
    pub obs_addr: Option<SocketAddr>,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7171".parse().unwrap(),
            tenants: 32,
            switches: 256,
            budget: 8,
            connections: 2,
            window: 32,
            events_per_batch: 100,
            batches: 200,
            solve_every: 8,
            rate: 0.0,
            seed: 1,
            shutdown: false,
            chaos: None,
            request_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            max_attempts: 24,
            obs_addr: None,
        }
    }
}

/// Per-attempt fault-injection probabilities of the chaos harness. Each churn
/// attempt draws at most one fault; the probabilities are cumulative and
/// should sum to well under 1 so runs converge.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Close the connection instead of sending (the server never sees the
    /// batch; the retry is a plain resend).
    pub drop_before_send: f64,
    /// Send the full request, then close before reading the ack (the server
    /// applies it; the retry must come back `duplicate: true`).
    pub drop_after_send: f64,
    /// Write a torn frame — a length prefix promising more bytes than follow —
    /// then close (the server must drop the connection without applying
    /// anything or panicking).
    pub kill_mid_frame: f64,
    /// Send a well-framed but undecodable payload first (the server answers
    /// `BadRequest` and drops the desynced connection).
    pub malformed_frame: f64,
    /// Sleep [`ChaosConfig::stall_for`] before reading the response — a slow
    /// reader the server's write deadline guards against.
    pub stall: f64,
    /// How long a stall lasts.
    pub stall_for: Duration,
}

impl Default for ChaosConfig {
    /// No injected faults: resilient transport only.
    fn default() -> Self {
        ChaosConfig {
            drop_before_send: 0.0,
            drop_after_send: 0.0,
            kill_mid_frame: 0.0,
            malformed_frame: 0.0,
            stall: 0.0,
            stall_for: Duration::from_millis(50),
        }
    }
}

impl ChaosConfig {
    /// The `--chaos` preset: every fault class on at a rate that injects
    /// roughly one fault per five batches.
    pub fn standard() -> Self {
        ChaosConfig {
            drop_before_send: 0.05,
            drop_after_send: 0.05,
            kill_mid_frame: 0.04,
            malformed_frame: 0.03,
            stall: 0.04,
            stall_for: Duration::from_millis(50),
        }
    }
}

/// One injected fault, drawn per churn attempt.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    DropBeforeSend,
    DropAfterSend,
    KillMidFrame,
    MalformedFrame,
    Stall,
}

fn pick_fault(rng: &mut StdRng, chaos: &ChaosConfig) -> Option<Fault> {
    let r: f64 = rng.random();
    let mut edge = 0.0;
    for (p, fault) in [
        (chaos.drop_before_send, Fault::DropBeforeSend),
        (chaos.drop_after_send, Fault::DropAfterSend),
        (chaos.kill_mid_frame, Fault::KillMidFrame),
        (chaos.malformed_frame, Fault::MalformedFrame),
        (chaos.stall, Fault::Stall),
    ] {
        edge += p;
        if r < edge {
            return Some(fault);
        }
    }
    None
}

/// What one run measured. All latencies are client-side end-to-end
/// (send → response decoded), which upper-bounds the server's own numbers.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Wall time of the churn-driving phase (registration excluded).
    pub elapsed: Duration,
    /// Churn events acknowledged as applied by the server.
    pub events_applied: u64,
    /// Churn batches sent.
    pub batches_sent: u64,
    /// Solves completed.
    pub solves: u64,
    /// Requests shed (`Overloaded` responses).
    pub sheds: u64,
    /// Error responses.
    pub errors: u64,
    /// Client-side churn-batch latency.
    pub churn_latency: LatencySummary,
    /// Client-side solve latency.
    pub solve_latency: LatencySummary,
    /// The server's own metrics snapshot, fetched at the end of the run.
    pub server: MetricsSnapshot,
    /// Counters cross-checked against the Prometheus scrape (`Some` exactly
    /// when [`LoadtestConfig::obs_addr`] was set; the run fails on drift).
    pub obs_counters_checked: Option<usize>,
    /// Resilient-driver accounting — `Some` exactly when the run used the
    /// chaos/resilience path.
    pub resilience: Option<ResilienceReport>,
}

/// Exact delivery accounting of a resilient run: every generated churn batch
/// ends up in `batches_applied` (consumed by the server exactly once —
/// including batches the server answered with an application error after a
/// partial apply, which also bump `errors`) or in `batches_lost` (explicitly
/// given up on after the retry budget and a final classification probe).
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Churn batches generated.
    pub batches_generated: u64,
    /// Batches confirmed consumed by the server exactly once.
    pub batches_applied: u64,
    /// Batches explicitly reported lost (never confirmed applied).
    pub batches_lost: u64,
    /// Replayed batches the server deduplicated (`duplicate: true` acks) —
    /// each one is an ack the chaos harness destroyed.
    pub duplicates: u64,
    /// Attempts beyond the first, across all batches.
    pub retries: u64,
    /// Reconnections after the initial connect per connection.
    pub reconnects: u64,
    /// Injected connection drops (before- and after-send).
    pub injected_drops: u64,
    /// Injected torn-frame kills.
    pub injected_mid_frame_kills: u64,
    /// Injected undecodable frames.
    pub injected_malformed_frames: u64,
    /// Injected slow-reader stalls.
    pub injected_stalls: u64,
}

impl ResilienceReport {
    /// Batches neither confirmed applied nor reported lost. Zero by
    /// construction on any completed run — the invariant the chaos smoke and
    /// the CI gate assert.
    pub fn unaccounted(&self) -> u64 {
        self.batches_generated
            .saturating_sub(self.batches_applied)
            .saturating_sub(self.batches_lost)
    }
}

impl LoadtestReport {
    /// Sustained applied-events throughput.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events_applied as f64 / secs
        } else {
            0.0
        }
    }

    /// The same throughput inverted into a *lower-is-better* metric — this is
    /// what the gated artifact chart carries, because the history gate treats
    /// every tracked value as a cost.
    pub fn ns_per_event(&self) -> f64 {
        if self.events_applied > 0 {
            self.elapsed.as_nanos() as f64 / self.events_applied as f64
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable summary block the CLI prints.
    pub fn render(&self) -> String {
        let lat = |s: &LatencySummary| {
            format!(
                "p50 {:>9.1} us   p99 {:>9.1} us   p999 {:>9.1} us   max {:>9.1} us   (n={})",
                s.p50_us, s.p99_us, s.p999_us, s.max_us, s.count
            )
        };
        let mut out = String::new();
        out.push_str(&format!(
            "events applied   {:>12}   in {:.2?}\n",
            self.events_applied, self.elapsed
        ));
        out.push_str(&format!(
            "throughput       {:>12.0} events/sec   ({:.0} ns/event)\n",
            self.events_per_sec(),
            self.ns_per_event()
        ));
        out.push_str(&format!("churn latency    {}\n", lat(&self.churn_latency)));
        if self.solve_latency.count > 0 {
            out.push_str(&format!("solve latency    {}\n", lat(&self.solve_latency)));
        }
        out.push_str(&format!(
            "batches {}   solves {}   sheds {}   errors {}\n",
            self.batches_sent, self.solves, self.sheds, self.errors
        ));
        if let Some(r) = &self.resilience {
            out.push_str(&format!(
                "delivery: {} generated = {} applied-once + {} lost ({} unaccounted)\n",
                r.batches_generated,
                r.batches_applied,
                r.batches_lost,
                r.unaccounted()
            ));
            out.push_str(&format!(
                "resilience: {} retries   {} reconnects   {} deduped replays\n",
                r.retries, r.reconnects, r.duplicates
            ));
            out.push_str(&format!(
                "chaos injected: {} drops   {} torn frames   {} malformed   {} stalls\n",
                r.injected_drops,
                r.injected_mid_frame_kills,
                r.injected_malformed_frames,
                r.injected_stalls
            ));
        }
        out.push_str(&format!(
            "server: requests {}   events {}   sheds {}   errors {}   io_errors {}   \
             cells_written {}   alloc_events {}   resident {}\n",
            self.server.requests,
            self.server.events_applied,
            self.server.sheds(),
            self.server.errors,
            self.server.io_errors,
            self.server.cells_written,
            self.server.alloc_events,
            self.server.resident_tenants
        ));
        if let Some(n) = self.obs_counters_checked {
            out.push_str(&format!(
                "obs scrape: {n} counters verified against the binary snapshot\n"
            ));
        }
        out
    }
}

/// A failed loadtest run.
#[derive(Debug)]
pub enum LoadtestError {
    /// Transport/protocol failure against the server.
    Client(ClientError),
    /// The server answered a request with something structurally unexpected.
    Protocol(String),
}

impl std::fmt::Display for LoadtestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadtestError::Client(e) => write!(f, "{e}"),
            LoadtestError::Protocol(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for LoadtestError {}

impl From<ClientError> for LoadtestError {
    fn from(e: ClientError) -> Self {
        LoadtestError::Client(e)
    }
}

impl From<std::io::Error> for LoadtestError {
    fn from(e: std::io::Error) -> Self {
        LoadtestError::Client(ClientError::from(e))
    }
}

/// The churn model a loadtest tenant streams from: sized so one epoch emits
/// roughly `events_per_batch` rate re-draws, with a slow trickle of
/// intra-instance tenant arrivals and departures on top.
fn batch_model(events_per_batch: usize) -> ChurnModel {
    ChurnModel {
        arrivals_per_epoch: 0.5,
        mean_lifetime: 50.0,
        rate_changes_per_epoch: events_per_batch.saturating_sub(1).max(1) as f64,
        tenant_leaves: 4,
        load: LoadSpec::paper_uniform(),
        mixed_tenants: true,
        ..ChurnModel::paper_default()
    }
}

/// The bookkeeping for one in-flight request: when it was sent and whether it
/// was a solve (routes the latency sample to the right histogram).
type Pending = HashMap<u64, (Instant, bool)>;

/// Per-connection in-flight accounting: a condvar-guarded window for the
/// closed loop plus the `req_id → (sent_at, is_solve)` correlation map.
struct Window {
    inflight: Mutex<(usize, Pending)>,
    cv: Condvar,
}

impl Window {
    fn new() -> Self {
        Window {
            inflight: Mutex::new((0, HashMap::new())),
            cv: Condvar::new(),
        }
    }

    /// Closed loop: block until a slot frees. Open loop (`cap == None`): just
    /// book the request.
    fn acquire(&self, req_id: u64, is_solve: bool, cap: Option<usize>) {
        let mut guard = self.inflight.lock().unwrap();
        if let Some(cap) = cap {
            while guard.0 >= cap {
                guard = self.cv.wait(guard).unwrap();
            }
        }
        guard.0 += 1;
        guard.1.insert(req_id, (Instant::now(), is_solve));
    }

    fn release(&self, req_id: u64) -> Option<(Instant, bool)> {
        let mut guard = self.inflight.lock().unwrap();
        let entry = guard.1.remove(&req_id);
        if entry.is_some() {
            guard.0 -= 1;
            self.cv.notify_one();
        }
        entry
    }
}

/// Shared tallies across every connection's receiver.
#[derive(Default)]
struct Tally {
    events_applied: AtomicU64,
    solves: AtomicU64,
    sheds: AtomicU64,
    errors: AtomicU64,
    // Resilient-driver accounting (zero on the pipelined path).
    batches_applied: AtomicU64,
    batches_lost: AtomicU64,
    duplicates: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    injected_drops: AtomicU64,
    injected_kills: AtomicU64,
    injected_malformed: AtomicU64,
    injected_stalls: AtomicU64,
}

/// Effective connection count (never more connections than tenants).
fn effective_connections(config: &LoadtestConfig) -> usize {
    config.connections.min(config.tenants as usize).max(1)
}

/// Runs the loadtest to completion against an already-listening server.
pub fn run(config: &LoadtestConfig) -> Result<LoadtestReport, LoadtestError> {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(config.connections > 0, "need at least one connection");
    assert!(
        config.rate > 0.0 || config.window > 0,
        "closed loop needs a nonzero window"
    );
    let shape = builders::complete_binary_tree_bt(config.switches as usize);
    let tally = Tally::default();
    let churn_hist = LatencyHistogram::new();
    let solve_hist = LatencyHistogram::new();
    let conns = effective_connections(config);

    let started = Instant::now();
    let batches_sent = std::thread::scope(|scope| -> Result<u64, LoadtestError> {
        let mut workers = Vec::new();
        for conn_idx in 0..conns {
            let my_tenants: Vec<u64> = (0..config.tenants)
                .filter(|t| (*t as usize) % conns == conn_idx)
                .collect();
            let my_batches = config.batches / conns as u64
                + u64::from((config.batches % conns as u64) > conn_idx as u64);
            let (shape, tally) = (&shape, &tally);
            let (churn_hist, solve_hist) = (&churn_hist, &solve_hist);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("loadtest-conn-{conn_idx}"))
                    .spawn_scoped(scope, move || {
                        if config.chaos.is_some() {
                            drive_resilient(
                                config,
                                shape,
                                conn_idx,
                                &my_tenants,
                                my_batches,
                                tally,
                                churn_hist,
                                solve_hist,
                            )
                        } else {
                            drive_connection(
                                config,
                                shape,
                                conn_idx,
                                &my_tenants,
                                my_batches,
                                tally,
                                churn_hist,
                                solve_hist,
                            )
                        }
                    })
                    .expect("spawn connection thread"),
            );
        }
        let mut sent = 0u64;
        for worker in workers {
            sent += worker
                .join()
                .map_err(|_| LoadtestError::Protocol("connection thread panicked".into()))??;
        }
        Ok(sent)
    })?;
    let elapsed = started.elapsed();

    // Control tail: fetch server metrics (and optionally shut the server
    // down) on a fresh connection. A chaos run may race a server restart, so
    // the resilient path retries the connect with the configured backoff.
    let mut control = if config.chaos.is_some() {
        connect_with_backoff(config)?
    } else {
        Client::connect(&config.addr)?
    };
    let resp = control.call(&Request {
        req_id: u64::MAX,
        body: RequestBody::Metrics,
    })?;
    let ResponseBody::MetricsReport { json } = resp.body else {
        return Err(LoadtestError::Protocol(format!(
            "expected MetricsReport, got {:?}",
            resp.body
        )));
    };
    let server: MetricsSnapshot = serde_json::from_str(&json)
        .map_err(|e| LoadtestError::Protocol(format!("bad metrics JSON: {e}")))?;
    // With the workers joined and every response received, the workload
    // counters are quiesced: the Prometheus exposition must agree with the
    // binary snapshot exactly (both render from the same `ServeMetrics`).
    let obs_counters_checked = match &config.obs_addr {
        None => None,
        Some(addr) => Some(scrape_and_check(addr, &server)?),
    };
    if config.shutdown {
        let resp = control.call(&Request {
            req_id: u64::MAX,
            body: RequestBody::Shutdown,
        })?;
        if resp.body != ResponseBody::ShuttingDown {
            return Err(LoadtestError::Protocol(format!(
                "expected ShuttingDown, got {:?}",
                resp.body
            )));
        }
    }

    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let resilience = config.chaos.as_ref().map(|_| ResilienceReport {
        batches_generated: batches_sent,
        batches_applied: get(&tally.batches_applied),
        batches_lost: get(&tally.batches_lost),
        duplicates: get(&tally.duplicates),
        retries: get(&tally.retries),
        reconnects: get(&tally.reconnects),
        injected_drops: get(&tally.injected_drops),
        injected_mid_frame_kills: get(&tally.injected_kills),
        injected_malformed_frames: get(&tally.injected_malformed),
        injected_stalls: get(&tally.injected_stalls),
    });
    Ok(LoadtestReport {
        elapsed,
        events_applied: get(&tally.events_applied),
        batches_sent,
        solves: get(&tally.solves),
        sheds: get(&tally.sheds),
        errors: get(&tally.errors),
        churn_latency: LatencySummary::of(&churn_hist),
        solve_latency: LatencySummary::of(&solve_hist),
        server,
        obs_counters_checked,
        resilience,
    })
}

/// Scrapes `/metrics` off the daemon's obs endpoint and cross-checks every
/// quiesced workload counter against the binary snapshot. Counters the
/// control connection itself perturbs (`requests`, `responses`,
/// `accepted_conns`) are deliberately excluded. Returns how many counters
/// were verified.
fn scrape_and_check(addr: &SocketAddr, server: &MetricsSnapshot) -> Result<usize, LoadtestError> {
    use std::io::{Read, Write};
    let fail = |m: String| LoadtestError::Protocol(m);
    let mut sock = std::net::TcpStream::connect(addr)
        .map_err(|e| fail(format!("obs scrape: connect to {addr} failed: {e}")))?;
    let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: loadtest\r\n\r\n")
        .map_err(|e| fail(format!("obs scrape: write failed: {e}")))?;
    let mut text = String::new();
    sock.read_to_string(&mut text)
        .map_err(|e| fail(format!("obs scrape: read failed: {e}")))?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(fail("obs scrape: no header/body split in response".into()));
    };
    if !head.starts_with("HTTP/1.0 200") {
        return Err(fail(format!("obs scrape: non-200 response: {head}")));
    }
    let sample = |name: &str| -> Option<u64> {
        body.lines().find_map(|line| {
            let (n, v) = line.split_once(' ')?;
            if n != name {
                return None;
            }
            v.parse::<f64>().ok().map(|f| f as u64)
        })
    };
    let expected = [
        ("soar_serve_events_applied_total", server.events_applied),
        ("soar_serve_solves_total", server.solves),
        ("soar_serve_sweeps_total", server.sweeps),
        ("soar_serve_registers_total", server.registers),
        ("soar_serve_evictions_total", server.evictions),
        ("soar_serve_shed_global_total", server.shed_global),
        ("soar_serve_shed_tenant_total", server.shed_tenant),
        ("soar_serve_wal_records_total", server.wal_records),
        ("soar_serve_duplicate_churns_total", server.duplicate_churns),
    ];
    for (name, want) in expected {
        match sample(name) {
            None => return Err(fail(format!("obs scrape: exposition is missing {name}"))),
            Some(got) if got != want => {
                return Err(fail(format!(
                    "obs scrape: {name} = {got} but the binary snapshot says {want} — \
                     the two exposition paths drifted"
                )))
            }
            Some(_) => {}
        }
    }
    Ok(expected.len())
}

/// Connects with the resilient backoff schedule — rides out a server that is
/// mid-restart.
fn connect_with_backoff(config: &LoadtestConfig) -> Result<Client, LoadtestError> {
    let mut last = None;
    for attempt in 0..config.max_attempts.max(1) {
        match Client::connect(&config.addr) {
            Ok(client) => {
                client.set_read_timeout(Some(config.request_timeout))?;
                return Ok(client);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(backoff_delay(config, attempt));
            }
        }
    }
    Err(LoadtestError::Client(ClientError::from(last.unwrap())))
}

/// Capped exponential backoff: `base * 2^attempt`, clamped to `cap`.
fn backoff_delay(config: &LoadtestConfig, attempt: u32) -> Duration {
    let exp = config
        .backoff_base
        .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
    exp.min(config.backoff_cap)
}

/// One connection's whole lifecycle: register its tenants, pipeline churn
/// (and interleaved solves) under the loop discipline, drain every response.
/// Returns the churn batches it sent.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    config: &LoadtestConfig,
    shape: &Tree,
    conn_idx: usize,
    tenants: &[u64],
    batches: u64,
    tally: &Tally,
    churn_hist: &LatencyHistogram,
    solve_hist: &LatencyHistogram,
) -> Result<u64, LoadtestError> {
    let mut client = Client::connect(&config.addr)?;

    // Register this connection's tenants, strictly ordered (each ack awaited
    // before the tenant is referenced).
    for &tenant in tenants {
        let resp = client.call(&Request {
            req_id: tenant,
            body: RequestBody::Register {
                tenant,
                switches: config.switches,
                budget: config.budget,
                seed: config.seed.wrapping_add(tenant),
            },
        })?;
        match resp.body {
            ResponseBody::Registered { .. } => {}
            other => {
                return Err(LoadtestError::Protocol(format!(
                    "register of tenant {tenant} answered {other:?}"
                )))
            }
        }
    }
    if batches == 0 {
        return Ok(0);
    }

    // One churn stream per tenant, seeded off the tenant id.
    let model = batch_model(config.events_per_batch);
    let mut streams: Vec<ChurnStream<StdRng>> = tenants
        .iter()
        .map(|&t| {
            ChurnStream::new(
                model.clone(),
                shape,
                StdRng::seed_from_u64(config.seed.wrapping_add(t) ^ 0x5eed_cafe),
            )
        })
        .collect();

    // The receiver drains exactly as many correlated responses as the sender
    // books — both sides derive the count from the same arithmetic, so
    // termination needs no extra signalling.
    let solves = batches.checked_div(config.solve_every).unwrap_or(0);
    let expected = batches + solves;
    let window = Window::new();
    let (mut tx, mut rx) = client.split()?;

    std::thread::scope(|scope| -> Result<u64, LoadtestError> {
        let window = &window;
        let receiver = std::thread::Builder::new()
            .name(format!("loadtest-rx-{conn_idx}"))
            .spawn_scoped(scope, move || -> Result<(), LoadtestError> {
                let mut seen = 0u64;
                while seen < expected {
                    let Some(resp) = rx.recv()? else {
                        return Err(LoadtestError::Protocol(
                            "server closed the connection mid-run".into(),
                        ));
                    };
                    let Some((sent_at, is_solve)) = window.release(resp.req_id) else {
                        continue;
                    };
                    seen += 1;
                    let nanos = sent_at.elapsed().as_nanos() as u64;
                    if is_solve {
                        solve_hist.record(nanos);
                    } else {
                        churn_hist.record(nanos);
                    }
                    match resp.body {
                        ResponseBody::ChurnApplied { applied, .. } => {
                            tally
                                .events_applied
                                .fetch_add(u64::from(applied), Ordering::Relaxed);
                        }
                        ResponseBody::Solved(_) => {
                            tally.solves.fetch_add(1, Ordering::Relaxed);
                        }
                        ResponseBody::Overloaded { .. } => {
                            tally.sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        ResponseBody::Error { .. } => {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        other => {
                            return Err(LoadtestError::Protocol(format!(
                                "unexpected response {other:?}"
                            )));
                        }
                    }
                }
                Ok(())
            })
            .expect("spawn receiver thread");

        // Sender: closed loop honors the window; open loop paces on the wall
        // clock, trusting the server to shed what it cannot absorb.
        let cap = if config.rate > 0.0 {
            None
        } else {
            Some(config.window)
        };
        let per_conn_rate = config.rate / effective_connections(config) as f64;
        let batch_secs = if config.rate > 0.0 {
            config.events_per_batch as f64 / per_conn_rate
        } else {
            0.0
        };
        let t0 = Instant::now();
        let mut req_id = (1u64 << 32).wrapping_add((conn_idx as u64) << 24);
        let mut sent = 0u64;
        let mut events: Vec<ChurnEvent> = Vec::new();
        for batch in 0..batches {
            if config.rate > 0.0 {
                let due = t0 + Duration::from_secs_f64(batch as f64 * batch_secs);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let slot = (batch as usize) % tenants.len();
            let tenant = tenants[slot];
            events.clear();
            while events.len() < config.events_per_batch {
                events.extend(streams[slot].next_epoch());
            }
            req_id += 1;
            window.acquire(req_id, false, cap);
            // seq 0 opts out of idempotent-replay dedupe: the pipelined path
            // can have several same-tenant batches in flight, which the pool
            // may apply out of order — sequencing belongs to the resilient
            // driver, which keeps at most one in-flight request per tenant.
            tx.send(&Request {
                req_id,
                body: RequestBody::Churn {
                    tenant,
                    seq: 0,
                    events: events.clone(),
                },
            })?;
            sent += 1;
            if config.solve_every > 0 && (batch + 1) % config.solve_every == 0 {
                req_id += 1;
                window.acquire(req_id, true, cap);
                tx.send(&Request {
                    req_id,
                    body: RequestBody::Solve { tenant },
                })?;
            }
        }
        receiver
            .join()
            .map_err(|_| LoadtestError::Protocol("receiver thread panicked".into()))??;
        Ok(sent)
    })
}

/// The resilient driver: synchronous request/response per connection — at
/// most one in-flight request per tenant, which is what makes per-tenant
/// sequence numbers safe against reordering — with a read timeout on every
/// receive, reconnect with capped exponential backoff on any transport
/// failure, idempotent replay of unacknowledged batches, and chaos injection
/// wrapped around the real traffic.
#[allow(clippy::too_many_arguments)]
fn drive_resilient(
    config: &LoadtestConfig,
    shape: &Tree,
    conn_idx: usize,
    tenants: &[u64],
    batches: u64,
    tally: &Tally,
    churn_hist: &LatencyHistogram,
    solve_hist: &LatencyHistogram,
) -> Result<u64, LoadtestError> {
    let chaos = config.chaos.clone().unwrap_or_default();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC4A0_5EED ^ ((conn_idx as u64) << 40));
    let mut link = Link {
        config,
        tally,
        client: None,
        connected_once: false,
        req_id: (2u64 << 32).wrapping_add((conn_idx as u64) << 24),
    };

    for &tenant in tenants {
        link.register(tenant)?;
    }
    if batches == 0 {
        return Ok(0);
    }

    let model = batch_model(config.events_per_batch);
    let mut streams: Vec<ChurnStream<StdRng>> = tenants
        .iter()
        .map(|&t| {
            ChurnStream::new(
                model.clone(),
                shape,
                StdRng::seed_from_u64(config.seed.wrapping_add(t) ^ 0x5eed_cafe),
            )
        })
        .collect();

    let mut seqs = vec![0u64; tenants.len()];
    let mut events: Vec<ChurnEvent> = Vec::new();
    for batch in 0..batches {
        let slot = (batch as usize) % tenants.len();
        let tenant = tenants[slot];
        events.clear();
        while events.len() < config.events_per_batch {
            events.extend(streams[slot].next_epoch());
        }
        seqs[slot] += 1;
        link.deliver_churn(tenant, seqs[slot], &events, &mut rng, &chaos, churn_hist);
        if config.solve_every > 0 && (batch + 1) % config.solve_every == 0 {
            link.deliver_solve(tenant, solve_hist);
        }
    }
    Ok(batches)
}

/// One resilient connection: an optional live [`Client`] plus the reconnect
/// and request-id bookkeeping.
struct Link<'a> {
    config: &'a LoadtestConfig,
    tally: &'a Tally,
    client: Option<Client>,
    connected_once: bool,
    req_id: u64,
}

impl Link<'_> {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn disconnect(&mut self) {
        self.client = None;
    }

    /// Connects if there is no live connection. Returns `false` when the
    /// connect itself failed (the caller backs off and retries).
    fn ensure_connected(&mut self) -> bool {
        if self.client.is_some() {
            return true;
        }
        match Client::connect(&self.config.addr) {
            Ok(client) => {
                let _ = client.set_read_timeout(Some(self.config.request_timeout));
                if self.connected_once {
                    self.bump(&self.tally.reconnects);
                }
                self.connected_once = true;
                self.client = Some(client);
                true
            }
            Err(_) => false,
        }
    }

    fn next_req_id(&mut self) -> u64 {
        self.req_id += 1;
        self.req_id
    }

    /// Sends one request on the live connection; any failure drops it.
    fn send_req(&mut self, req: &Request) -> bool {
        let Some(client) = self.client.as_mut() else {
            return false;
        };
        if client.send(req).is_err() {
            self.disconnect();
            return false;
        }
        true
    }

    /// Receives the response to `req_id`. A timeout, EOF, decode failure, or
    /// a response to some *other* request (the stream is desynced — e.g. the
    /// req-id-0 error answering an injected malformed frame) drops the
    /// connection and returns `None`.
    fn recv_matching(&mut self, req_id: u64) -> Option<ResponseBody> {
        let client = self.client.as_mut()?;
        match client.recv() {
            Ok(Some(resp)) if resp.req_id == req_id => Some(resp.body),
            _ => {
                self.disconnect();
                None
            }
        }
    }

    /// Registers a tenant, retrying through transport faults. A
    /// `DuplicateTenant` answer means a previous attempt's ack was lost (or
    /// the tenant survived a server restart) — success either way.
    fn register(&mut self, tenant: u64) -> Result<(), LoadtestError> {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.bump(&self.tally.retries);
                std::thread::sleep(backoff_delay(self.config, attempt - 1));
            }
            if !self.ensure_connected() {
                continue;
            }
            let req = Request {
                req_id: self.next_req_id(),
                body: RequestBody::Register {
                    tenant,
                    switches: self.config.switches,
                    budget: self.config.budget,
                    seed: self.config.seed.wrapping_add(tenant),
                },
            };
            if !self.send_req(&req) {
                continue;
            }
            match self.recv_matching(req.req_id) {
                Some(ResponseBody::Registered { .. }) => return Ok(()),
                Some(ResponseBody::Error {
                    code: ErrorCode::DuplicateTenant,
                    ..
                }) => return Ok(()),
                Some(ResponseBody::Overloaded { .. }) => continue,
                Some(ResponseBody::Error { code, message }) => {
                    return Err(LoadtestError::Protocol(format!(
                        "register of tenant {tenant} rejected ({code:?}): {message}"
                    )))
                }
                Some(other) => {
                    return Err(LoadtestError::Protocol(format!(
                        "register of tenant {tenant} answered {other:?}"
                    )))
                }
                None => continue,
            }
        }
        Err(LoadtestError::Protocol(format!(
            "tenant {tenant}: registration never succeeded within the retry budget"
        )))
    }

    /// Delivers one sequenced churn batch under chaos. Terminates with the
    /// batch *accounted*: applied exactly once (`batches_applied`) or
    /// explicitly lost (`batches_lost` via [`Link::classify`]). Transport
    /// failures never abort the run.
    fn deliver_churn(
        &mut self,
        tenant: u64,
        seq: u64,
        events: &[ChurnEvent],
        rng: &mut StdRng,
        chaos: &ChaosConfig,
        hist: &LatencyHistogram,
    ) {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.bump(&self.tally.retries);
                std::thread::sleep(backoff_delay(self.config, attempt - 1));
            }
            if !self.ensure_connected() {
                continue;
            }
            let req = Request {
                req_id: self.next_req_id(),
                body: RequestBody::Churn {
                    tenant,
                    seq,
                    events: events.to_vec(),
                },
            };
            let fault = pick_fault(rng, chaos);
            match fault {
                Some(Fault::DropBeforeSend) => {
                    self.bump(&self.tally.injected_drops);
                    self.disconnect();
                    continue;
                }
                Some(Fault::KillMidFrame) => {
                    self.inject_torn_frame(&req, rng);
                    continue;
                }
                Some(Fault::MalformedFrame) => {
                    self.inject_malformed();
                    continue;
                }
                _ => {}
            }
            let sent_at = Instant::now();
            if !self.send_req(&req) {
                continue;
            }
            if fault == Some(Fault::DropAfterSend) {
                // The server (most likely) applies this; the ack dies here.
                // The next attempt must come back `duplicate: true`.
                self.bump(&self.tally.injected_drops);
                self.disconnect();
                continue;
            }
            if fault == Some(Fault::Stall) {
                self.bump(&self.tally.injected_stalls);
                std::thread::sleep(chaos.stall_for);
            }
            match self.recv_matching(req.req_id) {
                Some(ResponseBody::ChurnApplied {
                    applied, duplicate, ..
                }) => {
                    hist.record(sent_at.elapsed().as_nanos() as u64);
                    if duplicate {
                        self.bump(&self.tally.duplicates);
                    }
                    self.tally
                        .events_applied
                        .fetch_add(u64::from(applied), Ordering::Relaxed);
                    self.bump(&self.tally.batches_applied);
                    return;
                }
                Some(ResponseBody::Overloaded { .. }) => {
                    self.bump(&self.tally.sheds);
                    continue;
                }
                // `Internal` is the server's "the request had no effect"
                // contract (WAL append failed before any mutation) — the seq
                // was not consumed, so a plain retry is correct.
                Some(ResponseBody::Error {
                    code: ErrorCode::Internal,
                    ..
                }) => {
                    self.bump(&self.tally.errors);
                    continue;
                }
                // Any other error consumed the seq (apply-until-first-error):
                // the batch reached the server exactly once.
                Some(ResponseBody::Error { .. }) => {
                    self.bump(&self.tally.errors);
                    self.bump(&self.tally.batches_applied);
                    return;
                }
                Some(_) | None => continue,
            }
        }
        self.classify(tenant, seq);
    }

    /// The batch exhausted its retry budget — ask the server whether `seq`
    /// was consumed, without chaos. An *empty* batch with the same seq either
    /// dedupes (the original was applied) or consumes the seq applying zero
    /// events — after which any straggling original still queued server-side
    /// dedupes too, so the classification itself preserves exactly-once.
    fn classify(&mut self, tenant: u64, seq: u64) {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(self.config, attempt - 1));
            }
            if !self.ensure_connected() {
                continue;
            }
            let req = Request {
                req_id: self.next_req_id(),
                body: RequestBody::Churn {
                    tenant,
                    seq,
                    events: Vec::new(),
                },
            };
            if !self.send_req(&req) {
                continue;
            }
            match self.recv_matching(req.req_id) {
                Some(ResponseBody::ChurnApplied { duplicate, .. }) => {
                    if duplicate {
                        self.bump(&self.tally.batches_applied);
                    } else {
                        self.bump(&self.tally.batches_lost);
                    }
                    return;
                }
                Some(ResponseBody::Overloaded { .. }) => continue,
                Some(ResponseBody::Error {
                    code: ErrorCode::Internal,
                    ..
                }) => continue,
                Some(_) => break,
                None => continue,
            }
        }
        // The server never answered the probe: explicitly lost.
        self.bump(&self.tally.batches_lost);
    }

    /// Read-only solve with retry; a solve that never completes is surfaced
    /// as an error (it is not part of the exactly-once churn accounting).
    fn deliver_solve(&mut self, tenant: u64, hist: &LatencyHistogram) {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.bump(&self.tally.retries);
                std::thread::sleep(backoff_delay(self.config, attempt - 1));
            }
            if !self.ensure_connected() {
                continue;
            }
            let req = Request {
                req_id: self.next_req_id(),
                body: RequestBody::Solve { tenant },
            };
            let sent_at = Instant::now();
            if !self.send_req(&req) {
                continue;
            }
            match self.recv_matching(req.req_id) {
                Some(ResponseBody::Solved(_)) => {
                    hist.record(sent_at.elapsed().as_nanos() as u64);
                    self.bump(&self.tally.solves);
                    return;
                }
                Some(ResponseBody::Overloaded { .. }) => {
                    self.bump(&self.tally.sheds);
                    continue;
                }
                Some(ResponseBody::Error { .. }) => {
                    self.bump(&self.tally.errors);
                    return;
                }
                Some(_) | None => continue,
            }
        }
        self.bump(&self.tally.errors);
    }

    /// Chaos: write a strict prefix of a real frame, then close. The server
    /// must treat the torn frame as a dead peer — no application, no panic.
    fn inject_torn_frame(&mut self, req: &Request, rng: &mut StdRng) {
        self.bump(&self.tally.injected_kills);
        let mut payload = Vec::new();
        req.encode(&mut payload);
        let mut frame = Vec::new();
        framing::write_frame(&mut frame, &payload).expect("in-memory frame");
        let keep = rng.random_range(1..frame.len());
        if let Some(client) = self.client.as_mut() {
            let _ = client.send_raw(&frame[..keep]);
        }
        self.disconnect();
    }

    /// Chaos: a well-framed but undecodable payload. The server answers
    /// `BadRequest` (req_id 0) once and drops the desynced connection.
    fn inject_malformed(&mut self) {
        self.bump(&self.tally.injected_malformed);
        let mut frame = Vec::new();
        framing::write_frame(&mut frame, &[0xEE_u8; 12]).expect("in-memory frame");
        if let Some(client) = self.client.as_mut() {
            if client.send_raw(&frame).is_ok() {
                let _ = client.recv();
            }
        }
        self.disconnect();
    }
}

/// Builds the gated `BENCH_serve.json` artifact: latency and inverse
/// throughput as *timing* charts (structural + relative-band comparison),
/// sheds and errors as exact charts (any increase fails the gate).
pub fn artifact(config: &LoadtestConfig, report: &LoadtestReport) -> RunArtifact {
    let spec = ExperimentSpec::new(
        "serve-bench",
        "soar serve under loadtest churn",
        1,
        ExperimentKind::ServeBench {
            tenants: config.tenants,
            switches: config.switches,
            budget: config.budget,
            connections: effective_connections(config),
            window: config.window,
            events_per_batch: config.events_per_batch,
            solve_every: config.solve_every,
            batches: config.batches,
            rate: config.rate,
        },
    );
    let x = config.tenants as f64;

    let mut latency = Chart::new(
        "serve request latency",
        "tenants",
        "client-side latency [us]",
    );
    for (label, value) in [
        ("churn p50", report.churn_latency.p50_us),
        ("churn p99", report.churn_latency.p99_us),
        ("churn p999", report.churn_latency.p999_us),
        ("solve p50", report.solve_latency.p50_us),
        ("solve p99", report.solve_latency.p99_us),
        ("solve p999", report.solve_latency.p999_us),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        latency.push(series);
    }

    let mut throughput = Chart::new("serve churn throughput", "tenants", "ns per applied event");
    let mut series = Series::new("ns per event");
    series.push(x, report.ns_per_event());
    throughput.push(series);

    let mut counters = Chart::new("serve failure counters", "tenants", "count");
    for (label, value) in [
        ("sheds", report.sheds as f64),
        ("errors", report.errors as f64),
        ("server io_errors", report.server.io_errors as f64),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        counters.push(series);
    }

    RunArtifact::new(spec, vec![latency, throughput, counters], None)
}

/// Builds the gated `BENCH_chaos.json` artifact of a resilient run: charts 0
/// (latency) and 1 (ns/event + recovery-replay ns/record) compare as timing;
/// chart 2 — batches lost and batches unaccounted — diffs **exactly**, so any
/// chaos run that loses or mislays a batch against a zero baseline fails
/// `soar history check`.
pub fn chaos_artifact(config: &LoadtestConfig, report: &LoadtestReport) -> RunArtifact {
    let chaos = config.chaos.clone().unwrap_or_default();
    let resilience = report.resilience.clone().unwrap_or_default();
    let spec = ExperimentSpec::new(
        "chaos-bench",
        "soar serve under fault-injected churn",
        1,
        ExperimentKind::ChaosBench {
            tenants: config.tenants,
            switches: config.switches,
            budget: config.budget,
            connections: effective_connections(config),
            events_per_batch: config.events_per_batch,
            batches: config.batches,
            drop_before_send: chaos.drop_before_send,
            drop_after_send: chaos.drop_after_send,
            kill_mid_frame: chaos.kill_mid_frame,
            malformed_frame: chaos.malformed_frame,
            stall: chaos.stall,
        },
    );
    let x = config.tenants as f64;

    let mut latency = Chart::new("chaos churn latency", "tenants", "client-side latency [us]");
    for (label, value) in [
        ("churn p50", report.churn_latency.p50_us),
        ("churn p99", report.churn_latency.p99_us),
        ("churn p999", report.churn_latency.p999_us),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        latency.push(series);
    }

    let mut throughput = Chart::new(
        "chaos throughput and recovery replay",
        "tenants",
        "nanoseconds",
    );
    let replay_ns_per_record =
        report.server.recovery_replay_ns as f64 / report.server.replayed_wal_records.max(1) as f64;
    for (label, value) in [
        ("ns per applied event", report.ns_per_event()),
        ("recovery replay ns per record", replay_ns_per_record),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        throughput.push(series);
    }

    let mut accounting = Chart::new("chaos exact accounting", "tenants", "batches");
    for (label, value) in [
        ("batches lost", resilience.batches_lost as f64),
        ("batches unaccounted", resilience.unaccounted() as f64),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        accounting.push(series);
    }

    RunArtifact::new(spec, vec![latency, throughput, accounting], None)
}
