//! # soar-loadtest
//!
//! A client harness for `soar serve`: synthesizes churn for thousands of
//! tenants from [`ChurnStream`]s, drives the daemon over its wire protocol
//! with open- or closed-loop arrival control, and reports sustained
//! events/sec plus client-side p50/p99/p999 latency — both human-readable and
//! as a `BENCH_serve.json` [`RunArtifact`] that `soar history check` gates.
//!
//! Shape of a run:
//!
//! 1. every connection thread registers its share of the tenants (awaiting
//!    each ack — registration is the one strictly-ordered step);
//! 2. senders stream churn batches (one request per accumulated
//!    [`ChurnStream`] epoch run, sized by `events_per_batch`), optionally
//!    interleaving solves, while a receiver thread per connection correlates
//!    responses by `req_id` and records end-to-end latency into
//!    [`LatencyHistogram`]s;
//! 3. **closed loop** (`rate == 0`): at most `window` requests in flight per
//!    connection — throughput is whatever the server sustains. **Open loop**
//!    (`rate > 0`): batches are injected on a wall-clock schedule regardless
//!    of completions — an overloaded server then *sheds* (explicit
//!    `Overloaded` responses) rather than queueing without bound, and the
//!    report counts the sheds;
//! 4. the harness fetches the server's [`MetricsSnapshot`] over a fresh
//!    control connection and folds both sides into the report/artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_exp::spec::ExperimentKind;
use soar_exp::{Chart, ExperimentSpec, RunArtifact, Series};
use soar_multitenant::churn::{ChurnEvent, ChurnModel, ChurnStream};
use soar_pool::hist::LatencyHistogram;
use soar_serve::metrics::{LatencySummary, MetricsSnapshot};
use soar_serve::protocol::{Request, RequestBody, ResponseBody};
use soar_serve::server::{Client, ClientError};
use soar_topology::builders;
use soar_topology::load::LoadSpec;
use soar_topology::Tree;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Loadtest knobs. `Default` is a small smoke-sized run; the CLI maps flags
/// onto every field.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The server to drive.
    pub addr: SocketAddr,
    /// Service tenants to register (spread round-robin over connections).
    pub tenants: u64,
    /// `BT(n)` size of every tenant's tree.
    pub switches: u32,
    /// Aggregation budget `k` of every tenant.
    pub budget: u32,
    /// Concurrent client connections (clamped to the tenant count).
    pub connections: usize,
    /// Closed-loop in-flight window per connection.
    pub window: usize,
    /// Minimum churn events per request batch (the churn model is sized to
    /// emit roughly this many per epoch).
    pub events_per_batch: usize,
    /// Total churn batches across all connections.
    pub batches: u64,
    /// Interleave one `Solve` after every N churn batches per connection
    /// (0 = never).
    pub solve_every: u64,
    /// Open-loop target in churn events/sec across the whole run
    /// (0 = closed loop).
    pub rate: f64,
    /// Base seed; tenant `t`'s instance seed and churn stream derive from it.
    pub seed: u64,
    /// Send `Shutdown` when done (the CI smoke asserts the daemon then exits
    /// cleanly).
    pub shutdown: bool,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7171".parse().unwrap(),
            tenants: 32,
            switches: 256,
            budget: 8,
            connections: 2,
            window: 32,
            events_per_batch: 100,
            batches: 200,
            solve_every: 8,
            rate: 0.0,
            seed: 1,
            shutdown: false,
        }
    }
}

/// What one run measured. All latencies are client-side end-to-end
/// (send → response decoded), which upper-bounds the server's own numbers.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Wall time of the churn-driving phase (registration excluded).
    pub elapsed: Duration,
    /// Churn events acknowledged as applied by the server.
    pub events_applied: u64,
    /// Churn batches sent.
    pub batches_sent: u64,
    /// Solves completed.
    pub solves: u64,
    /// Requests shed (`Overloaded` responses).
    pub sheds: u64,
    /// Error responses.
    pub errors: u64,
    /// Client-side churn-batch latency.
    pub churn_latency: LatencySummary,
    /// Client-side solve latency.
    pub solve_latency: LatencySummary,
    /// The server's own metrics snapshot, fetched at the end of the run.
    pub server: MetricsSnapshot,
}

impl LoadtestReport {
    /// Sustained applied-events throughput.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events_applied as f64 / secs
        } else {
            0.0
        }
    }

    /// The same throughput inverted into a *lower-is-better* metric — this is
    /// what the gated artifact chart carries, because the history gate treats
    /// every tracked value as a cost.
    pub fn ns_per_event(&self) -> f64 {
        if self.events_applied > 0 {
            self.elapsed.as_nanos() as f64 / self.events_applied as f64
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable summary block the CLI prints.
    pub fn render(&self) -> String {
        let lat = |s: &LatencySummary| {
            format!(
                "p50 {:>9.1} us   p99 {:>9.1} us   p999 {:>9.1} us   max {:>9.1} us   (n={})",
                s.p50_us, s.p99_us, s.p999_us, s.max_us, s.count
            )
        };
        let mut out = String::new();
        out.push_str(&format!(
            "events applied   {:>12}   in {:.2?}\n",
            self.events_applied, self.elapsed
        ));
        out.push_str(&format!(
            "throughput       {:>12.0} events/sec   ({:.0} ns/event)\n",
            self.events_per_sec(),
            self.ns_per_event()
        ));
        out.push_str(&format!("churn latency    {}\n", lat(&self.churn_latency)));
        if self.solve_latency.count > 0 {
            out.push_str(&format!("solve latency    {}\n", lat(&self.solve_latency)));
        }
        out.push_str(&format!(
            "batches {}   solves {}   sheds {}   errors {}\n",
            self.batches_sent, self.solves, self.sheds, self.errors
        ));
        out.push_str(&format!(
            "server: requests {}   events {}   sheds {}   errors {}   io_errors {}   \
             cells_written {}   alloc_events {}   resident {}\n",
            self.server.requests,
            self.server.events_applied,
            self.server.sheds(),
            self.server.errors,
            self.server.io_errors,
            self.server.cells_written,
            self.server.alloc_events,
            self.server.resident_tenants
        ));
        out
    }
}

/// A failed loadtest run.
#[derive(Debug)]
pub enum LoadtestError {
    /// Transport/protocol failure against the server.
    Client(ClientError),
    /// The server answered a request with something structurally unexpected.
    Protocol(String),
}

impl std::fmt::Display for LoadtestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadtestError::Client(e) => write!(f, "{e}"),
            LoadtestError::Protocol(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for LoadtestError {}

impl From<ClientError> for LoadtestError {
    fn from(e: ClientError) -> Self {
        LoadtestError::Client(e)
    }
}

impl From<std::io::Error> for LoadtestError {
    fn from(e: std::io::Error) -> Self {
        LoadtestError::Client(ClientError::from(e))
    }
}

/// The churn model a loadtest tenant streams from: sized so one epoch emits
/// roughly `events_per_batch` rate re-draws, with a slow trickle of
/// intra-instance tenant arrivals and departures on top.
fn batch_model(events_per_batch: usize) -> ChurnModel {
    ChurnModel {
        arrivals_per_epoch: 0.5,
        mean_lifetime: 50.0,
        rate_changes_per_epoch: events_per_batch.saturating_sub(1).max(1) as f64,
        tenant_leaves: 4,
        load: LoadSpec::paper_uniform(),
        mixed_tenants: true,
    }
}

/// The bookkeeping for one in-flight request: when it was sent and whether it
/// was a solve (routes the latency sample to the right histogram).
type Pending = HashMap<u64, (Instant, bool)>;

/// Per-connection in-flight accounting: a condvar-guarded window for the
/// closed loop plus the `req_id → (sent_at, is_solve)` correlation map.
struct Window {
    inflight: Mutex<(usize, Pending)>,
    cv: Condvar,
}

impl Window {
    fn new() -> Self {
        Window {
            inflight: Mutex::new((0, HashMap::new())),
            cv: Condvar::new(),
        }
    }

    /// Closed loop: block until a slot frees. Open loop (`cap == None`): just
    /// book the request.
    fn acquire(&self, req_id: u64, is_solve: bool, cap: Option<usize>) {
        let mut guard = self.inflight.lock().unwrap();
        if let Some(cap) = cap {
            while guard.0 >= cap {
                guard = self.cv.wait(guard).unwrap();
            }
        }
        guard.0 += 1;
        guard.1.insert(req_id, (Instant::now(), is_solve));
    }

    fn release(&self, req_id: u64) -> Option<(Instant, bool)> {
        let mut guard = self.inflight.lock().unwrap();
        let entry = guard.1.remove(&req_id);
        if entry.is_some() {
            guard.0 -= 1;
            self.cv.notify_one();
        }
        entry
    }
}

/// Shared tallies across every connection's receiver.
#[derive(Default)]
struct Tally {
    events_applied: AtomicU64,
    solves: AtomicU64,
    sheds: AtomicU64,
    errors: AtomicU64,
}

/// Effective connection count (never more connections than tenants).
fn effective_connections(config: &LoadtestConfig) -> usize {
    config.connections.min(config.tenants as usize).max(1)
}

/// Runs the loadtest to completion against an already-listening server.
pub fn run(config: &LoadtestConfig) -> Result<LoadtestReport, LoadtestError> {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(config.connections > 0, "need at least one connection");
    assert!(
        config.rate > 0.0 || config.window > 0,
        "closed loop needs a nonzero window"
    );
    let shape = builders::complete_binary_tree_bt(config.switches as usize);
    let tally = Tally::default();
    let churn_hist = LatencyHistogram::new();
    let solve_hist = LatencyHistogram::new();
    let conns = effective_connections(config);

    let started = Instant::now();
    let batches_sent = std::thread::scope(|scope| -> Result<u64, LoadtestError> {
        let mut workers = Vec::new();
        for conn_idx in 0..conns {
            let my_tenants: Vec<u64> = (0..config.tenants)
                .filter(|t| (*t as usize) % conns == conn_idx)
                .collect();
            let my_batches = config.batches / conns as u64
                + u64::from((config.batches % conns as u64) > conn_idx as u64);
            let (shape, tally) = (&shape, &tally);
            let (churn_hist, solve_hist) = (&churn_hist, &solve_hist);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("loadtest-conn-{conn_idx}"))
                    .spawn_scoped(scope, move || {
                        drive_connection(
                            config,
                            shape,
                            conn_idx,
                            &my_tenants,
                            my_batches,
                            tally,
                            churn_hist,
                            solve_hist,
                        )
                    })
                    .expect("spawn connection thread"),
            );
        }
        let mut sent = 0u64;
        for worker in workers {
            sent += worker
                .join()
                .map_err(|_| LoadtestError::Protocol("connection thread panicked".into()))??;
        }
        Ok(sent)
    })?;
    let elapsed = started.elapsed();

    // Control tail: fetch server metrics (and optionally shut the server
    // down) on a fresh connection.
    let mut control = Client::connect(&config.addr)?;
    let resp = control.call(&Request {
        req_id: u64::MAX,
        body: RequestBody::Metrics,
    })?;
    let ResponseBody::MetricsReport { json } = resp.body else {
        return Err(LoadtestError::Protocol(format!(
            "expected MetricsReport, got {:?}",
            resp.body
        )));
    };
    let server: MetricsSnapshot = serde_json::from_str(&json)
        .map_err(|e| LoadtestError::Protocol(format!("bad metrics JSON: {e}")))?;
    if config.shutdown {
        let resp = control.call(&Request {
            req_id: u64::MAX,
            body: RequestBody::Shutdown,
        })?;
        if resp.body != ResponseBody::ShuttingDown {
            return Err(LoadtestError::Protocol(format!(
                "expected ShuttingDown, got {:?}",
                resp.body
            )));
        }
    }

    Ok(LoadtestReport {
        elapsed,
        events_applied: tally.events_applied.load(Ordering::Relaxed),
        batches_sent,
        solves: tally.solves.load(Ordering::Relaxed),
        sheds: tally.sheds.load(Ordering::Relaxed),
        errors: tally.errors.load(Ordering::Relaxed),
        churn_latency: LatencySummary::of(&churn_hist),
        solve_latency: LatencySummary::of(&solve_hist),
        server,
    })
}

/// One connection's whole lifecycle: register its tenants, pipeline churn
/// (and interleaved solves) under the loop discipline, drain every response.
/// Returns the churn batches it sent.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    config: &LoadtestConfig,
    shape: &Tree,
    conn_idx: usize,
    tenants: &[u64],
    batches: u64,
    tally: &Tally,
    churn_hist: &LatencyHistogram,
    solve_hist: &LatencyHistogram,
) -> Result<u64, LoadtestError> {
    let mut client = Client::connect(&config.addr)?;

    // Register this connection's tenants, strictly ordered (each ack awaited
    // before the tenant is referenced).
    for &tenant in tenants {
        let resp = client.call(&Request {
            req_id: tenant,
            body: RequestBody::Register {
                tenant,
                switches: config.switches,
                budget: config.budget,
                seed: config.seed.wrapping_add(tenant),
            },
        })?;
        match resp.body {
            ResponseBody::Registered { .. } => {}
            other => {
                return Err(LoadtestError::Protocol(format!(
                    "register of tenant {tenant} answered {other:?}"
                )))
            }
        }
    }
    if batches == 0 {
        return Ok(0);
    }

    // One churn stream per tenant, seeded off the tenant id.
    let model = batch_model(config.events_per_batch);
    let mut streams: Vec<ChurnStream<StdRng>> = tenants
        .iter()
        .map(|&t| {
            ChurnStream::new(
                model.clone(),
                shape,
                StdRng::seed_from_u64(config.seed.wrapping_add(t) ^ 0x5eed_cafe),
            )
        })
        .collect();

    // The receiver drains exactly as many correlated responses as the sender
    // books — both sides derive the count from the same arithmetic, so
    // termination needs no extra signalling.
    let solves = batches.checked_div(config.solve_every).unwrap_or(0);
    let expected = batches + solves;
    let window = Window::new();
    let (mut tx, mut rx) = client.split()?;

    std::thread::scope(|scope| -> Result<u64, LoadtestError> {
        let window = &window;
        let receiver = std::thread::Builder::new()
            .name(format!("loadtest-rx-{conn_idx}"))
            .spawn_scoped(scope, move || -> Result<(), LoadtestError> {
                let mut seen = 0u64;
                while seen < expected {
                    let Some(resp) = rx.recv()? else {
                        return Err(LoadtestError::Protocol(
                            "server closed the connection mid-run".into(),
                        ));
                    };
                    let Some((sent_at, is_solve)) = window.release(resp.req_id) else {
                        continue;
                    };
                    seen += 1;
                    let nanos = sent_at.elapsed().as_nanos() as u64;
                    if is_solve {
                        solve_hist.record(nanos);
                    } else {
                        churn_hist.record(nanos);
                    }
                    match resp.body {
                        ResponseBody::ChurnApplied { applied, .. } => {
                            tally
                                .events_applied
                                .fetch_add(u64::from(applied), Ordering::Relaxed);
                        }
                        ResponseBody::Solved(_) => {
                            tally.solves.fetch_add(1, Ordering::Relaxed);
                        }
                        ResponseBody::Overloaded { .. } => {
                            tally.sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        ResponseBody::Error { .. } => {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        other => {
                            return Err(LoadtestError::Protocol(format!(
                                "unexpected response {other:?}"
                            )));
                        }
                    }
                }
                Ok(())
            })
            .expect("spawn receiver thread");

        // Sender: closed loop honors the window; open loop paces on the wall
        // clock, trusting the server to shed what it cannot absorb.
        let cap = if config.rate > 0.0 {
            None
        } else {
            Some(config.window)
        };
        let per_conn_rate = config.rate / effective_connections(config) as f64;
        let batch_secs = if config.rate > 0.0 {
            config.events_per_batch as f64 / per_conn_rate
        } else {
            0.0
        };
        let t0 = Instant::now();
        let mut req_id = (1u64 << 32).wrapping_add((conn_idx as u64) << 24);
        let mut sent = 0u64;
        let mut events: Vec<ChurnEvent> = Vec::new();
        for batch in 0..batches {
            if config.rate > 0.0 {
                let due = t0 + Duration::from_secs_f64(batch as f64 * batch_secs);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let slot = (batch as usize) % tenants.len();
            let tenant = tenants[slot];
            events.clear();
            while events.len() < config.events_per_batch {
                events.extend(streams[slot].next_epoch());
            }
            req_id += 1;
            window.acquire(req_id, false, cap);
            tx.send(&Request {
                req_id,
                body: RequestBody::Churn {
                    tenant,
                    events: events.clone(),
                },
            })?;
            sent += 1;
            if config.solve_every > 0 && (batch + 1) % config.solve_every == 0 {
                req_id += 1;
                window.acquire(req_id, true, cap);
                tx.send(&Request {
                    req_id,
                    body: RequestBody::Solve { tenant },
                })?;
            }
        }
        receiver
            .join()
            .map_err(|_| LoadtestError::Protocol("receiver thread panicked".into()))??;
        Ok(sent)
    })
}

/// Builds the gated `BENCH_serve.json` artifact: latency and inverse
/// throughput as *timing* charts (structural + relative-band comparison),
/// sheds and errors as exact charts (any increase fails the gate).
pub fn artifact(config: &LoadtestConfig, report: &LoadtestReport) -> RunArtifact {
    let spec = ExperimentSpec::new(
        "serve-bench",
        "soar serve under loadtest churn",
        1,
        ExperimentKind::ServeBench {
            tenants: config.tenants,
            switches: config.switches,
            budget: config.budget,
            connections: effective_connections(config),
            window: config.window,
            events_per_batch: config.events_per_batch,
            solve_every: config.solve_every,
            batches: config.batches,
            rate: config.rate,
        },
    );
    let x = config.tenants as f64;

    let mut latency = Chart::new(
        "serve request latency",
        "tenants",
        "client-side latency [us]",
    );
    for (label, value) in [
        ("churn p50", report.churn_latency.p50_us),
        ("churn p99", report.churn_latency.p99_us),
        ("churn p999", report.churn_latency.p999_us),
        ("solve p50", report.solve_latency.p50_us),
        ("solve p99", report.solve_latency.p99_us),
        ("solve p999", report.solve_latency.p999_us),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        latency.push(series);
    }

    let mut throughput = Chart::new("serve churn throughput", "tenants", "ns per applied event");
    let mut series = Series::new("ns per event");
    series.push(x, report.ns_per_event());
    throughput.push(series);

    let mut counters = Chart::new("serve failure counters", "tenants", "count");
    for (label, value) in [
        ("sheds", report.sheds as f64),
        ("errors", report.errors as f64),
        ("server io_errors", report.server.io_errors as f64),
    ] {
        let mut series = Series::new(label);
        series.push(x, value);
        counters.push(series);
    }

    RunArtifact::new(spec, vec![latency, throughput, counters], None)
}
