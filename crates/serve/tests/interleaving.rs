//! Response-equivalence property: N tenants' churn/solve traffic interleaved
//! arbitrarily over one pipelined connection produces responses bit-identical
//! to a sequential offline replay of each tenant's stream in isolation.
//!
//! This is the serving guarantee that makes the daemon trustworthy: batching
//! across tenants, dispatcher grouping, and warm-workspace reuse are pure
//! scheduling — they may never leak one tenant's state into another's
//! numbers, and per-tenant order on one connection is preserved exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_multitenant::churn::{ChurnEvent, ChurnModel, ChurnStream};
use soar_serve::protocol::{Request, RequestBody, ResponseBody, SolveOutcome};
use soar_serve::server::{build_tenant, comparable, solve_offline, start, Client, ServeConfig};
use soar_topology::builders;
use soar_topology::load::LoadSpec;
use std::collections::HashMap;

const TENANTS: u64 = 6;
const SWITCHES: u32 = 128;
const BUDGET: u32 = 6;
const ROUNDS: usize = 5;
const SEED: u64 = 0xD1CE;

fn tenant_batches(tenant: u64) -> Vec<Vec<ChurnEvent>> {
    let model = ChurnModel {
        arrivals_per_epoch: 1.0,
        mean_lifetime: 3.0,
        rate_changes_per_epoch: 6.0,
        tenant_leaves: 3,
        load: LoadSpec::paper_uniform(),
        mixed_tenants: true,
        ..ChurnModel::paper_default()
    };
    let tree = builders::complete_binary_tree_bt(SWITCHES as usize);
    let mut stream = ChurnStream::new(model, &tree, StdRng::seed_from_u64(SEED ^ tenant));
    (0..ROUNDS).map(|_| stream.next_epoch()).collect()
}

#[test]
fn interleaved_tenants_match_sequential_offline_replay() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(&handle.addr()).unwrap();

    let batches: Vec<Vec<Vec<ChurnEvent>>> = (0..TENANTS).map(tenant_batches).collect();

    for tenant in 0..TENANTS {
        let resp = client
            .call(&Request {
                req_id: tenant,
                body: RequestBody::Register {
                    tenant,
                    switches: SWITCHES,
                    budget: BUDGET,
                    seed: SEED.wrapping_add(tenant),
                },
            })
            .unwrap();
        assert!(
            matches!(resp.body, ResponseBody::Registered { .. }),
            "{resp:?}"
        );
    }

    // Pipeline everything: round-robin across tenants, one churn batch plus
    // one solve per tenant per round, all in flight at once. req_id encodes
    // (round, tenant, kind) so responses correlate without assuming order.
    let (mut tx, mut rx) = client.split().unwrap();
    let churn_id = |round: usize, tenant: u64| 1_000 + (round as u64) * 100 + tenant * 2;
    let solve_id = |round: usize, tenant: u64| churn_id(round, tenant) + 1;
    let mut outstanding = 0usize;
    for (round, _) in batches[0].iter().enumerate() {
        for tenant in 0..TENANTS {
            tx.send(&Request {
                req_id: churn_id(round, tenant),
                body: RequestBody::Churn {
                    tenant,
                    // Per-tenant strictly increasing batch seq, as a resilient
                    // client would assign.
                    seq: round as u64 + 1,
                    events: batches[tenant as usize][round].clone(),
                },
            })
            .unwrap();
            tx.send(&Request {
                req_id: solve_id(round, tenant),
                body: RequestBody::Solve { tenant },
            })
            .unwrap();
            outstanding += 2;
        }
    }
    let mut responses: HashMap<u64, ResponseBody> = HashMap::new();
    for _ in 0..outstanding {
        let resp = rx.recv().unwrap().expect("server closed early");
        assert!(responses.insert(resp.req_id, resp.body).is_none());
    }

    // Sequential oracle: each tenant's instance replayed alone, in order.
    for tenant in 0..TENANTS {
        let mut offline = build_tenant(SWITCHES, BUDGET, SEED.wrapping_add(tenant));
        for (round, batch) in batches[tenant as usize].iter().enumerate() {
            for event in batch {
                offline.apply(event).unwrap();
            }
            match &responses[&churn_id(round, tenant)] {
                ResponseBody::ChurnApplied {
                    tenant: t,
                    applied,
                    duplicate,
                } => {
                    assert_eq!(*t, tenant);
                    assert_eq!(*applied as usize, batch.len());
                    assert!(!duplicate);
                }
                other => panic!("tenant {tenant} round {round}: {other:?}"),
            }
            let want: SolveOutcome = solve_offline(&offline, tenant);
            match &responses[&solve_id(round, tenant)] {
                ResponseBody::Solved(got) => {
                    assert_eq!(
                        comparable(got),
                        comparable(&want),
                        "tenant {tenant} round {round} diverged from offline replay"
                    );
                }
                other => panic!("tenant {tenant} round {round}: {other:?}"),
            }
        }
    }

    let mut control = Client::connect(&handle.addr()).unwrap();
    let resp = control
        .call(&Request {
            req_id: 0,
            body: RequestBody::Shutdown,
        })
        .unwrap();
    assert_eq!(resp.body, ResponseBody::ShuttingDown);
    let snap = handle.join();
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.io_errors, 0);
}
