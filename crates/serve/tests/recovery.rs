//! Crash-recovery properties of the `soar serve` WAL:
//!
//! 1. a daemon restarted with `--recover` serves solves **bit-identical** to
//!    the uninterrupted run, remembers churn-batch sequence numbers across the
//!    restart, and forgets evicted tenants;
//! 2. a simulated SIGKILL at *any* byte offset of the WAL (torn tail) recovers
//!    exactly the surviving record prefix — never panics, never invents or
//!    loses an applied record before the tear;
//! 3. corrupt middles (flipped bits) and illegally duplicated sequence numbers
//!    stop recovery at the bad record, keeping everything before it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar_multitenant::churn::ChurnEvent;
use soar_online::DynamicInstance;
use soar_serve::protocol::{Request, RequestBody, ResponseBody};
use soar_serve::server::{build_tenant, comparable, solve_offline, start, Client, ServeConfig};
use soar_serve::wal::{self, TenantParams, WalWriter};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soar-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn request(req_id: u64, body: RequestBody) -> Request {
    Request { req_id, body }
}

fn churn_batch(tenant: u64, seq: u64, events: Vec<ChurnEvent>) -> RequestBody {
    RequestBody::Churn {
        tenant,
        seq,
        events,
    }
}

/// End-to-end: run, shut down, restart with `--recover`, and verify solves
/// are bit-identical and seq dedupe survives the restart.
#[test]
fn restarted_server_serves_bit_identical_solves() {
    let dir = temp_dir("restart");
    let config = |recover: bool| ServeConfig {
        state_dir: Some(dir.clone()),
        recover,
        // Small cadence so the run exercises snapshot rotation mid-stream,
        // not just the shutdown snapshot.
        snapshot_every: 3,
        ..ServeConfig::default()
    };

    let handle = start(config(false)).unwrap();
    let mut client = Client::connect(&handle.addr()).unwrap();
    for tenant in [1u64, 2, 3] {
        let resp = client
            .call(&request(
                tenant,
                RequestBody::Register {
                    tenant,
                    switches: 64,
                    budget: 4,
                    seed: 100 + tenant,
                },
            ))
            .unwrap();
        assert!(matches!(resp.body, ResponseBody::Registered { .. }));
    }
    // A few sequenced batches per tenant, including failure-domain events.
    for seq in 1..=4u64 {
        for tenant in [1u64, 2, 3] {
            let events = vec![
                ChurnEvent::LeafRateChange {
                    leaf: 62,
                    load: seq * 3 + tenant,
                },
                ChurnEvent::SwitchAvailability {
                    switch: 5,
                    available: seq % 2 == 0,
                },
                ChurnEvent::LinkRateChange {
                    switch: 9,
                    rate: 1.0 / seq as f64,
                },
            ];
            let resp = client
                .call(&request(1000 + seq, churn_batch(tenant, seq, events)))
                .unwrap();
            assert!(
                matches!(
                    resp.body,
                    ResponseBody::ChurnApplied {
                        applied: 3,
                        duplicate: false,
                        ..
                    }
                ),
                "{resp:?}"
            );
        }
    }
    // Evict tenant 2: recovery must *not* resurrect it.
    let resp = client
        .call(&request(2000, RequestBody::Evict { tenant: 2 }))
        .unwrap();
    assert!(matches!(resp.body, ResponseBody::Evicted { tenant: 2 }));

    let mut before = Vec::new();
    for tenant in [1u64, 3] {
        let resp = client
            .call(&request(3000 + tenant, RequestBody::Solve { tenant }))
            .unwrap();
        let ResponseBody::Solved(outcome) = resp.body else {
            panic!("{resp:?}");
        };
        before.push(comparable(&outcome));
    }
    client.call(&request(4000, RequestBody::Shutdown)).unwrap();
    let snap = handle.join();
    assert!(snap.snapshots >= 2, "startup + cadence/shutdown snapshots");
    assert_eq!(snap.wal_errors, 0);

    // ---- restart ----
    let handle = start(config(true)).unwrap();
    let mut client = Client::connect(&handle.addr()).unwrap();
    let snap = handle.snapshot();
    assert_eq!(snap.recovered_tenants, 2);
    assert_eq!(snap.recovery_truncated, 0);
    for (i, tenant) in [1u64, 3].into_iter().enumerate() {
        let resp = client
            .call(&request(5000 + tenant, RequestBody::Solve { tenant }))
            .unwrap();
        let ResponseBody::Solved(outcome) = resp.body else {
            panic!("{resp:?}");
        };
        assert_eq!(
            comparable(&outcome),
            before[i],
            "tenant {tenant}: post-recovery solve deviates from the uninterrupted run"
        );
    }
    // Seq high-water marks survived: a blind replay of an old batch dedupes.
    let resp = client
        .call(&request(
            6000,
            churn_batch(1, 4, vec![ChurnEvent::BudgetChange { budget: 1 }]),
        ))
        .unwrap();
    assert!(
        matches!(
            resp.body,
            ResponseBody::ChurnApplied {
                applied: 0,
                duplicate: true,
                ..
            }
        ),
        "{resp:?}"
    );
    // The evicted tenant stayed gone.
    let resp = client
        .call(&request(6001, RequestBody::Solve { tenant: 2 }))
        .unwrap();
    assert!(matches!(resp.body, ResponseBody::Error { .. }));
    client.call(&request(7000, RequestBody::Shutdown)).unwrap();
    handle.join();
    let _ = fs::remove_dir_all(&dir);
}

/// The WAL operations of the abort property test, mirrored on an offline
/// oracle.
enum Op {
    Register(u64, TenantParams),
    Evict(u64),
    Churn(u64, u64, Vec<ChurnEvent>),
}

fn oracle_replay(ops: &[Op]) -> BTreeMap<u64, (u64, DynamicInstance)> {
    let mut tenants = BTreeMap::new();
    for op in ops {
        match op {
            Op::Register(t, p) => {
                tenants.insert(*t, (0u64, build_tenant(p.switches, p.budget, p.seed)));
            }
            Op::Evict(t) => {
                tenants.remove(t);
            }
            Op::Churn(t, seq, events) => {
                let entry = tenants.get_mut(t).unwrap();
                entry.0 = *seq;
                for event in events {
                    if entry.1.apply(event).is_err() {
                        break;
                    }
                }
            }
        }
    }
    tenants
}

fn assert_matches_oracle(dir: &std::path::Path, ops: &[Op], context: &str) {
    let recovery = wal::recover(dir).unwrap_or_else(|e| panic!("{context}: {e}"));
    let want = oracle_replay(ops);
    let got: Vec<u64> = recovery.tenants.iter().map(|t| t.tenant).collect();
    assert_eq!(
        got,
        want.keys().copied().collect::<Vec<_>>(),
        "{context}: tenant set"
    );
    for rec in &recovery.tenants {
        let (last_seq, oracle) = &want[&rec.tenant];
        assert_eq!(
            rec.last_seq, *last_seq,
            "{context}: tenant {} seq",
            rec.tenant
        );
        assert_eq!(
            comparable(&solve_offline(&rec.instance, rec.tenant)),
            comparable(&solve_offline(oracle, rec.tenant)),
            "{context}: tenant {} solve deviates",
            rec.tenant
        );
    }
}

/// Simulated SIGKILL mid-churn: truncate the WAL at random byte offsets —
/// clean record boundaries, torn headers, torn payloads — and verify recovery
/// is exactly the offline replay of the surviving record prefix.
#[test]
fn abort_at_any_wal_offset_recovers_the_surviving_prefix() {
    let dir = temp_dir("abort");
    let mut rng = StdRng::seed_from_u64(0xABCD);

    // Build a WAL the way a live daemon would (no snapshot rotation: this is
    // the log a crash interrupts), tracking the byte boundary and the oracle
    // op after every record.
    let mut writer = WalWriter::begin(&dir, 0, &[]).unwrap();
    let wal_path = dir.join("wal.soar");
    let mut ops: Vec<Op> = Vec::new();
    let mut boundaries: Vec<u64> = vec![fs::metadata(&wal_path).unwrap().len()];
    let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();
    for step in 0..40 {
        let resident: Vec<u64> = seqs.keys().copied().collect();
        let op = match rng.random_range(0..10) {
            0 | 1 if resident.len() < 4 => {
                let tenant = (0..8u64).find(|t| !seqs.contains_key(t)).unwrap();
                let params = TenantParams {
                    switches: 32 + 16 * (tenant as u32 % 3),
                    budget: 3 + tenant as u32 % 4,
                    seed: 50 + tenant,
                };
                writer.append_register(tenant, params).unwrap();
                seqs.insert(tenant, 0);
                Op::Register(tenant, params)
            }
            2 if resident.len() > 1 => {
                let tenant = resident[rng.random_range(0..resident.len())];
                writer.append_evict(tenant).unwrap();
                seqs.remove(&tenant);
                Op::Evict(tenant)
            }
            _ if !resident.is_empty() => {
                let tenant = resident[rng.random_range(0..resident.len())];
                let seq = seqs[&tenant] + 1;
                let events = vec![
                    ChurnEvent::LeafRateChange {
                        leaf: 17,
                        load: rng.random_range(0..50),
                    },
                    ChurnEvent::LinkRateChange {
                        switch: rng.random_range(1..16),
                        rate: 0.25 + rng.random::<f64>(),
                    },
                    ChurnEvent::SwitchAvailability {
                        switch: rng.random_range(1..16),
                        available: rng.random::<bool>(),
                    },
                ];
                writer.append_churn(tenant, seq, &events).unwrap();
                seqs.insert(tenant, seq);
                Op::Churn(tenant, seq, events)
            }
            _ => {
                let tenant = 7 - (step as u64 % 4);
                let params = TenantParams {
                    switches: 32,
                    budget: 3,
                    seed: 50 + tenant,
                };
                if seqs.contains_key(&tenant) {
                    continue;
                }
                writer.append_register(tenant, params).unwrap();
                seqs.insert(tenant, 0);
                Op::Register(tenant, params)
            }
        };
        ops.push(op);
        boundaries.push(fs::metadata(&wal_path).unwrap().len());
    }
    drop(writer);
    let full = fs::read(&wal_path).unwrap();
    assert_eq!(*boundaries.last().unwrap() as usize, full.len());

    // For every record: kill exactly at its boundary, mid-header, and
    // mid-payload. Recovery must equal the oracle replay of the records that
    // fully fit.
    let crash_dir = temp_dir("abort-crash");
    let mut cases = 0;
    for i in 0..ops.len() {
        let clean = boundaries[i + 1];
        let torn_header = boundaries[i] + 3;
        let torn_payload = clean.saturating_sub(2);
        for (kind, cut) in [
            ("boundary", clean),
            ("torn-header", torn_header),
            ("torn-payload", torn_payload),
        ] {
            // Records fully contained in the first `cut` bytes.
            let n = boundaries[1..].iter().filter(|&&b| b <= cut).count();
            fs::write(crash_dir.join("wal.soar"), &full[..cut as usize]).unwrap();
            assert_matches_oracle(
                &crash_dir,
                &ops[..n],
                &format!("record {i}, cut {kind} @{cut}"),
            );
            cases += 1;
        }
    }
    assert!(cases >= 100, "property exercised {cases} crash points");

    // A flipped bit mid-log stops recovery at that record.
    let mid = ops.len() / 2;
    let mut corrupt = full.clone();
    corrupt[(boundaries[mid] + 9) as usize] ^= 0x10;
    fs::write(crash_dir.join("wal.soar"), &corrupt).unwrap();
    let recovery = wal::recover(&crash_dir).unwrap();
    assert!(recovery.stats.truncated, "corruption must be reported");
    assert_matches_oracle_prefix_only(&crash_dir, &ops[..mid]);

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash_dir);
}

fn assert_matches_oracle_prefix_only(dir: &std::path::Path, ops: &[Op]) {
    assert_matches_oracle(dir, ops, "corrupt-middle");
}

/// An illegally duplicated sequence number in the log (the server dedupes
/// before appending, so one on disk means corruption) stops recovery.
#[test]
fn duplicate_seq_in_wal_stops_recovery() {
    let dir = temp_dir("dup-seq");
    let mut writer = WalWriter::begin(&dir, 0, &[]).unwrap();
    let params = TenantParams {
        switches: 32,
        budget: 3,
        seed: 9,
    };
    writer.append_register(1, params).unwrap();
    let eventa = vec![ChurnEvent::LeafRateChange { leaf: 17, load: 5 }];
    let eventb = vec![ChurnEvent::LeafRateChange { leaf: 17, load: 9 }];
    writer.append_churn(1, 1, &eventa).unwrap();
    writer.append_churn(1, 1, &eventb).unwrap(); // illegal duplicate
    writer.append_churn(1, 2, &eventb).unwrap(); // never reached
    drop(writer);

    let recovery = wal::recover(&dir).unwrap();
    assert!(recovery.stats.truncated);
    assert_eq!(recovery.stats.replayed_records, 2);
    assert_eq!(recovery.tenants.len(), 1);
    let t = &recovery.tenants[0];
    assert_eq!(t.last_seq, 1);
    // State reflects batch seq=1 only.
    let mut oracle = build_tenant(32, 3, 9);
    oracle.apply(&eventa[0]).unwrap();
    assert_eq!(
        comparable(&solve_offline(&t.instance, 1)),
        comparable(&solve_offline(&oracle, 1))
    );
    let _ = fs::remove_dir_all(&dir);
}
