//! Crash-safe tenant state: a write-ahead log of accepted requests plus
//! periodic snapshots of every resident tenant.
//!
//! # Why replay is exact
//!
//! The server is deterministic given its inputs: a tenant is built from
//! `(switches, budget, seed)` ([`build_tenant`](crate::server::build_tenant))
//! and mutated only by churn batches, applied in WAL order with
//! apply-until-first-error semantics. The WAL records exactly those inputs —
//! **before** they touch the instance — so replaying the surviving prefix
//! reproduces the pre-crash state bit-for-bit, and every post-recovery solve
//! is bit-identical to one from an uninterrupted run.
//!
//! # On-disk layout
//!
//! Two files in the state dir, both sequences of CRC-checked records
//! ([`soar_dataplane::framing::write_record`]):
//!
//! ```text
//! snapshot.soar   header { version, wal_next }
//!                 one record per tenant: params + last_seq + InstanceImage
//! wal.soar        header { version, first_index }
//!                 data records: Register | Evict | Churn{tenant, seq, events}
//! ```
//!
//! Every WAL data record has a monotonically increasing **global index**
//! (persisted across rotations via the header's `first_index`). A snapshot
//! stores `wal_next` — the index of the first record it does *not* cover —
//! and the WAL is rewritten fresh right after a snapshot lands. Both writes
//! are tmp-file + atomic rename, so a crash between the two renames merely
//! leaves a WAL whose covered prefix the next recovery skips by index.
//!
//! # Torn tails and corruption
//!
//! Appends are flushed per record but not fsynced: the target failure model
//! is process death (the chaos harness SIGKILLs the daemon), where flushed
//! bytes survive. A crash mid-append leaves a torn tail; recovery stops at
//! the first bad record — torn, CRC-corrupt, zero-length, out-of-order
//! duplicate sequence number, or undecodable — keeps everything before it,
//! and reports what it discarded. It never panics on file bytes.

use crate::protocol::{self, Cursor, DecodeError};
use crate::server::build_tenant;
use soar_dataplane::framing::{read_record, write_record, RecordError};
use soar_multitenant::churn::ChurnEvent;
use soar_online::{DynamicInstance, InstanceImage};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Cap on one durable record. Larger than the wire-frame cap because one
/// snapshot record carries a whole tenant image (~17 bytes per switch).
pub const MAX_RECORD_LEN: usize = 256 << 20;

const WAL_FILE: &str = "wal.soar";
const SNAPSHOT_FILE: &str = "snapshot.soar";
const VERSION: u32 = 1;

/// Record tags inside the WAL / snapshot files.
const TAG_WAL_HEADER: u8 = 0xA0;
const TAG_SNAP_HEADER: u8 = 0xA1;
const TAG_TENANT: u8 = 0xA2;
const TAG_REGISTER: u8 = 1;
const TAG_EVICT: u8 = 2;
const TAG_CHURN: u8 = 3;

/// The deterministic build parameters of one tenant, remembered so snapshots
/// can rebuild the tree shape and seeded base loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantParams {
    /// `BT(n)` size parameter of the register.
    pub switches: u32,
    /// Budget at register time (churn may have moved it since; the image
    /// carries the current value).
    pub budget: u32,
    /// Leaf-load seed of the register.
    pub seed: u64,
}

/// One tenant as written to / read from a snapshot.
#[derive(Debug, Clone)]
pub struct TenantRecord {
    /// The tenant id.
    pub tenant: u64,
    /// Deterministic build parameters.
    pub params: TenantParams,
    /// Churn-batch high-water mark (idempotent-replay dedupe state).
    pub last_seq: u64,
    /// The mutable instance state at capture time.
    pub image: InstanceImage,
}

/// One tenant reconstructed by [`recover`].
#[derive(Debug)]
pub struct RecoveredTenant {
    /// The tenant id.
    pub tenant: u64,
    /// Deterministic build parameters (kept for the next snapshot).
    pub params: TenantParams,
    /// Churn-batch high-water mark.
    pub last_seq: u64,
    /// The rebuilt instance, bit-identical to the pre-crash state.
    pub instance: DynamicInstance,
}

/// What [`recover`] found and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Tenants restored from the snapshot file.
    pub snapshot_tenants: u64,
    /// WAL data records replayed (not covered by the snapshot).
    pub replayed_records: u64,
    /// WAL data records skipped because the snapshot already covered them.
    pub skipped_records: u64,
    /// `true` when either file had a bad tail (torn, corrupt, or undecodable
    /// record); everything before it was kept.
    pub truncated: bool,
}

/// A WAL failure, wrapping IO and record-codec errors.
#[derive(Debug)]
pub enum WalError {
    /// File IO failed.
    Io(io::Error),
    /// A record failed its framing/CRC check.
    Record(RecordError),
    /// A CRC-valid record failed payload decoding.
    Decode(DecodeError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Record(e) => write!(f, "wal record error: {e}"),
            WalError::Decode(e) => write!(f, "wal decode error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<RecordError> for WalError {
    fn from(e: RecordError) -> Self {
        WalError::Record(e)
    }
}

impl From<DecodeError> for WalError {
    fn from(e: DecodeError) -> Self {
        WalError::Decode(e)
    }
}

// ---------------------------------------------------------------------------
// Payload codecs (record framing/CRC handled by soar_dataplane::framing).
// ---------------------------------------------------------------------------

fn encode_wal_header(out: &mut Vec<u8>, first_index: u64) {
    out.push(TAG_WAL_HEADER);
    protocol::put_u32(out, VERSION);
    protocol::put_u64(out, first_index);
}

fn encode_snap_header(out: &mut Vec<u8>, wal_next: u64) {
    out.push(TAG_SNAP_HEADER);
    protocol::put_u32(out, VERSION);
    protocol::put_u64(out, wal_next);
}

fn decode_header(buf: &[u8], tag: u8) -> Result<u64, WalError> {
    let mut cur = Cursor::new(buf);
    let got = cur.u8()?;
    if got != tag {
        return Err(DecodeError::UnknownTag(got).into());
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(DecodeError::BadLength(u64::from(version)).into());
    }
    Ok(cur.u64()?)
}

/// Encodes one register WAL record.
pub(crate) fn encode_register(out: &mut Vec<u8>, tenant: u64, params: TenantParams) {
    out.push(TAG_REGISTER);
    protocol::put_u64(out, tenant);
    protocol::put_u32(out, params.switches);
    protocol::put_u32(out, params.budget);
    protocol::put_u64(out, params.seed);
}

/// Encodes one evict WAL record.
pub(crate) fn encode_evict(out: &mut Vec<u8>, tenant: u64) {
    out.push(TAG_EVICT);
    protocol::put_u64(out, tenant);
}

/// Encodes one churn WAL record (same event codec as the wire protocol).
pub(crate) fn encode_churn(out: &mut Vec<u8>, tenant: u64, seq: u64, events: &[ChurnEvent]) {
    out.push(TAG_CHURN);
    protocol::put_u64(out, tenant);
    protocol::put_u64(out, seq);
    protocol::put_u32(out, events.len() as u32);
    for event in events {
        protocol::encode_event(out, event);
    }
}

fn encode_tenant_record(out: &mut Vec<u8>, rec: &TenantRecord) {
    out.push(TAG_TENANT);
    protocol::put_u64(out, rec.tenant);
    protocol::put_u32(out, rec.params.switches);
    protocol::put_u32(out, rec.params.budget);
    protocol::put_u64(out, rec.params.seed);
    protocol::put_u64(out, rec.last_seq);
    let image = &rec.image;
    protocol::put_u64(out, image.budget as u64);
    let n = image.base_loads.len();
    protocol::put_u32(out, n as u32);
    for &load in &image.base_loads {
        protocol::put_u64(out, load);
    }
    for &rate in &image.rates {
        protocol::put_u64(out, rate.to_bits());
    }
    for &a in &image.available {
        out.push(u8::from(a));
    }
    protocol::put_u32(out, image.tenants.len() as u32);
    for (id, loads) in &image.tenants {
        protocol::put_u64(out, *id);
        protocol::put_u32(out, loads.len() as u32);
        for &(v, load) in loads {
            protocol::put_u32(out, v as u32);
            protocol::put_u64(out, load);
        }
    }
}

fn decode_tenant_record(buf: &[u8]) -> Result<TenantRecord, WalError> {
    let mut cur = Cursor::new(buf);
    let tag = cur.u8()?;
    if tag != TAG_TENANT {
        return Err(DecodeError::UnknownTag(tag).into());
    }
    let tenant = cur.u64()?;
    let params = TenantParams {
        switches: cur.u32()?,
        budget: cur.u32()?,
        seed: cur.u64()?,
    };
    let last_seq = cur.u64()?;
    let budget = cur.u64()? as usize;
    let declared_n = cur.u32()?;
    let n = cur.check_count(u64::from(declared_n), 17)?;
    let mut base_loads = Vec::with_capacity(n);
    for _ in 0..n {
        base_loads.push(cur.u64()?);
    }
    let mut rates = Vec::with_capacity(n);
    for _ in 0..n {
        let rate = cur.f64()?;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DecodeError::BadLength(rate.to_bits()).into());
        }
        rates.push(rate);
    }
    let mut available = Vec::with_capacity(n);
    for _ in 0..n {
        match cur.u8()? {
            0 => available.push(false),
            1 => available.push(true),
            other => return Err(DecodeError::UnknownTag(other).into()),
        }
    }
    let declared_tenants = cur.u32()?;
    let n_tenants = cur.check_count(u64::from(declared_tenants), 12)?;
    let mut tenants = Vec::with_capacity(n_tenants);
    for _ in 0..n_tenants {
        let id = cur.u64()?;
        let declared = cur.u32()?;
        let count = cur.check_count(u64::from(declared), 12)?;
        let mut loads = Vec::with_capacity(count);
        for _ in 0..count {
            let v = cur.u32()? as usize;
            if v >= n {
                return Err(DecodeError::BadLength(v as u64).into());
            }
            loads.push((v, cur.u64()?));
        }
        tenants.push((id, loads));
    }
    Ok(TenantRecord {
        tenant,
        params,
        last_seq,
        image: InstanceImage {
            budget,
            base_loads,
            rates,
            available,
            tenants,
        },
    })
}

/// One decoded WAL data record.
enum WalRecord {
    Register {
        tenant: u64,
        params: TenantParams,
    },
    Evict {
        tenant: u64,
    },
    Churn {
        tenant: u64,
        seq: u64,
        events: Vec<ChurnEvent>,
    },
}

fn decode_wal_record(buf: &[u8]) -> Result<WalRecord, WalError> {
    let mut cur = Cursor::new(buf);
    match cur.u8()? {
        TAG_REGISTER => Ok(WalRecord::Register {
            tenant: cur.u64()?,
            params: TenantParams {
                switches: cur.u32()?,
                budget: cur.u32()?,
                seed: cur.u64()?,
            },
        }),
        TAG_EVICT => Ok(WalRecord::Evict { tenant: cur.u64()? }),
        TAG_CHURN => {
            let tenant = cur.u64()?;
            let seq = cur.u64()?;
            let declared = cur.u32()?;
            let count = cur.check_count(u64::from(declared), protocol::MIN_EVENT_BYTES)?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(protocol::decode_event(&mut cur)?);
            }
            Ok(WalRecord::Churn {
                tenant,
                seq,
                events,
            })
        }
        other => Err(DecodeError::UnknownTag(other).into()),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The append side of the WAL: one per daemon, behind a mutex.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: BufWriter<File>,
    /// Global index of the next data record to append.
    next_index: u64,
    /// Data records appended since the last snapshot.
    records_since_snapshot: u64,
    /// Scratch buffer for record payloads.
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Starts durable logging in `dir`: writes a snapshot of `tenants` (the
    /// recovered set, or empty on a fresh start) and opens a fresh WAL.
    /// Replaces whatever state files were there.
    pub fn begin(
        dir: &Path,
        next_index: u64,
        tenants: &[TenantRecord],
    ) -> Result<WalWriter, WalError> {
        fs::create_dir_all(dir)?;
        let mut writer = WalWriter {
            dir: dir.to_path_buf(),
            // Placeholder; `rotate` below installs the real file.
            file: BufWriter::new(tempfile(dir)?),
            next_index,
            records_since_snapshot: 0,
            scratch: Vec::new(),
        };
        writer.write_snapshot(tenants)?;
        Ok(writer)
    }

    /// Data records appended since the last snapshot — the caller's snapshot
    /// cadence trigger.
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    fn append(&mut self) -> Result<(), WalError> {
        write_record(&mut self.file, &self.scratch)?;
        // Flush to the OS so the record survives process death (the chaos
        // model); power-loss durability would additionally need sync_all.
        self.file.flush()?;
        self.next_index += 1;
        self.records_since_snapshot += 1;
        Ok(())
    }

    /// Logs a register. Call **before** inserting the tenant.
    pub fn append_register(&mut self, tenant: u64, params: TenantParams) -> Result<(), WalError> {
        self.scratch.clear();
        encode_register(&mut self.scratch, tenant, params);
        self.append()
    }

    /// Logs an evict. Call **before** removing the tenant.
    pub fn append_evict(&mut self, tenant: u64) -> Result<(), WalError> {
        self.scratch.clear();
        encode_evict(&mut self.scratch, tenant);
        self.append()
    }

    /// Logs a churn batch. Call **after** seq dedupe (a duplicate must never
    /// reach the log — replay treats one as corruption) and **before**
    /// applying any event.
    pub fn append_churn(
        &mut self,
        tenant: u64,
        seq: u64,
        events: &[ChurnEvent],
    ) -> Result<(), WalError> {
        self.scratch.clear();
        encode_churn(&mut self.scratch, tenant, seq, events);
        self.append()
    }

    /// Writes a snapshot of the full tenant set and rotates the WAL. The
    /// caller must pass a consistent cut (no concurrent appliers).
    pub fn write_snapshot(&mut self, tenants: &[TenantRecord]) -> Result<(), WalError> {
        // 1. Snapshot to tmp, fsync, atomic rename.
        let snap_tmp = self.dir.join("snapshot.tmp");
        {
            let mut out = BufWriter::new(File::create(&snap_tmp)?);
            self.scratch.clear();
            encode_snap_header(&mut self.scratch, self.next_index);
            write_record(&mut out, &self.scratch)?;
            for rec in tenants {
                self.scratch.clear();
                encode_tenant_record(&mut self.scratch, rec);
                write_record(&mut out, &self.scratch)?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        fs::rename(&snap_tmp, self.dir.join(SNAPSHOT_FILE))?;

        // 2. Fresh WAL to tmp, fsync, atomic rename, swap the open handle.
        //    A crash between the renames leaves the old WAL; its records are
        //    all `< wal_next`, so recovery skips them by index.
        let wal_tmp = self.dir.join("wal.tmp");
        let mut out = BufWriter::new(File::create(&wal_tmp)?);
        self.scratch.clear();
        encode_wal_header(&mut self.scratch, self.next_index);
        write_record(&mut out, &self.scratch)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        fs::rename(&wal_tmp, self.dir.join(WAL_FILE))?;
        self.file = out;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

fn tempfile(dir: &Path) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(dir.join("wal.tmp"))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// The outcome of [`recover`]: the rebuilt tenants (in increasing id order),
/// the next WAL index, and what happened along the way.
#[derive(Debug)]
pub struct Recovery {
    /// Rebuilt tenants.
    pub tenants: Vec<RecoveredTenant>,
    /// Global index the next WAL append should use.
    pub next_index: u64,
    /// Counters for metrics/operators.
    pub stats: RecoveryStats,
}

/// Rebuilds the tenant set from `dir`'s snapshot + WAL.
///
/// Stops at the first bad record of either file — torn tail, CRC mismatch,
/// zero-length record, undecodable payload, a churn record whose sequence
/// number is at or below the tenant's replayed high-water mark, or a churn
/// record for a tenant that does not exist at that point of the log — keeps
/// everything before it, and flags [`RecoveryStats::truncated`]. Missing
/// files mean a fresh start, not an error.
pub fn recover(dir: &Path) -> Result<Recovery, WalError> {
    use std::collections::BTreeMap;
    let mut tenants: BTreeMap<u64, RecoveredTenant> = BTreeMap::new();
    let mut stats = RecoveryStats::default();
    let mut wal_next = 0u64;

    // ---- snapshot ----
    let snap_path = dir.join(SNAPSHOT_FILE);
    if snap_path.exists() {
        let mut r = BufReader::new(File::open(&snap_path)?);
        let mut buf = Vec::new();
        match read_record(&mut r, &mut buf, MAX_RECORD_LEN) {
            Ok(true) => {
                wal_next = decode_header(&buf, TAG_SNAP_HEADER)?;
                loop {
                    match read_record(&mut r, &mut buf, MAX_RECORD_LEN) {
                        Ok(false) => break,
                        Ok(true) => match decode_tenant_record(&buf) {
                            Ok(rec) => {
                                let mut instance = build_tenant(
                                    rec.params.switches,
                                    rec.params.budget,
                                    rec.params.seed,
                                );
                                instance.restore_image(&rec.image);
                                stats.snapshot_tenants += 1;
                                tenants.insert(
                                    rec.tenant,
                                    RecoveredTenant {
                                        tenant: rec.tenant,
                                        params: rec.params,
                                        last_seq: rec.last_seq,
                                        instance,
                                    },
                                );
                            }
                            Err(_) => {
                                stats.truncated = true;
                                break;
                            }
                        },
                        Err(_) => {
                            stats.truncated = true;
                            break;
                        }
                    }
                }
            }
            Ok(false) => {}
            Err(_) => stats.truncated = true,
        }
    }

    // ---- WAL ----
    let mut next_index = wal_next;
    let wal_path = dir.join(WAL_FILE);
    if wal_path.exists() {
        let mut r = BufReader::new(File::open(&wal_path)?);
        let mut buf = Vec::new();
        match read_record(&mut r, &mut buf, MAX_RECORD_LEN) {
            Ok(true) => {
                let first_index = decode_header(&buf, TAG_WAL_HEADER)?;
                let mut index = first_index;
                loop {
                    match read_record(&mut r, &mut buf, MAX_RECORD_LEN) {
                        Ok(false) => break,
                        Ok(true) => {
                            let covered = index < wal_next;
                            index += 1;
                            if covered {
                                stats.skipped_records += 1;
                                continue;
                            }
                            match decode_wal_record(&buf) {
                                Ok(rec) => {
                                    if !replay(&mut tenants, rec) {
                                        stats.truncated = true;
                                        break;
                                    }
                                    stats.replayed_records += 1;
                                    next_index = index;
                                }
                                Err(_) => {
                                    stats.truncated = true;
                                    break;
                                }
                            }
                        }
                        Err(_) => {
                            stats.truncated = true;
                            break;
                        }
                    }
                }
            }
            Ok(false) => {}
            Err(_) => stats.truncated = true,
        }
    }

    Ok(Recovery {
        tenants: tenants.into_values().collect(),
        next_index,
        stats,
    })
}

/// Applies one WAL record to the replay state. Returns `false` when the
/// record is inconsistent with the log so far (recovery stops there).
fn replay(tenants: &mut std::collections::BTreeMap<u64, RecoveredTenant>, rec: WalRecord) -> bool {
    match rec {
        WalRecord::Register { tenant, params } => {
            if tenants.contains_key(&tenant) {
                return false;
            }
            let instance = build_tenant(params.switches, params.budget, params.seed);
            tenants.insert(
                tenant,
                RecoveredTenant {
                    tenant,
                    params,
                    last_seq: 0,
                    instance,
                },
            );
            true
        }
        WalRecord::Evict { tenant } => tenants.remove(&tenant).is_some(),
        WalRecord::Churn {
            tenant,
            seq,
            events,
        } => {
            let Some(entry) = tenants.get_mut(&tenant) else {
                return false;
            };
            // A duplicate seq can never legally reach the log (the server
            // dedupes before appending): treat it as corruption.
            if seq != 0 && seq <= entry.last_seq {
                return false;
            }
            if seq != 0 {
                entry.last_seq = seq;
            }
            // Apply-until-first-error, exactly like the live server: a batch
            // that failed partway was partially applied live too.
            for event in &events {
                if entry.instance.apply(event).is_err() {
                    break;
                }
            }
            true
        }
    }
}
