//! # soar-serve
//!
//! The long-running SOAR service: a daemon that keeps thousands of tenants'
//! [`DynamicInstance`](soar_online::DynamicInstance)s resident, applies churn
//! and re-solves them on persistent warm
//! [`SolverWorkspace`](soar_core::SolverWorkspace)s, and speaks a compact
//! length-prefixed binary protocol over TCP. This is the "serving" leg of the
//! reproduction: SOAR's setting (Segal/Avin/Scalosub, CoNEXT 2021) is
//! explicitly dynamic, and a service under load needs the
//! backpressure/admission-control discipline of streaming in-network
//! computation — the server **sheds** with explicit
//! [`Overloaded`](protocol::ResponseBody::Overloaded) responses instead of
//! buffering without bound.
//!
//! The pieces:
//!
//! * [`protocol`] — request/response messages (register/evict tenants, churn
//!   batches, solves, budget sweeps, metrics, shutdown), framed by
//!   [`soar_dataplane::framing`];
//! * [`server`] — the daemon: per-connection readers, a bounded global queue,
//!   and a dispatcher batching same-epoch requests across tenants onto
//!   [`soar_pool`]; plus the blocking [`Client`](server::Client);
//! * [`metrics`] — lock-free counters and latency histograms, snapshotted
//!   into the JSON that `soar-loadtest` turns into a `BENCH_serve.json`
//!   artifact for `soar history check`;
//! * [`wal`] — crash-safe tenant state: a CRC-checked write-ahead log of
//!   accepted registers/evicts/churn batches plus periodic snapshots, so
//!   `soar serve --state-dir DIR --recover` resumes with solves bit-identical
//!   to an uninterrupted run.
//!
//! Start one in-process (tests, benches) or via `soar serve` (CLI):
//!
//! ```
//! use soar_serve::protocol::{Request, RequestBody, ResponseBody};
//! use soar_serve::server::{start, Client, ServeConfig};
//!
//! let handle = start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(&handle.addr()).unwrap();
//! let resp = client
//!     .call(&Request {
//!         req_id: 1,
//!         body: RequestBody::Register { tenant: 0, switches: 64, budget: 4, seed: 1 },
//!     })
//!     .unwrap();
//! assert_eq!(resp.body, ResponseBody::Registered { tenant: 0, n_switches: 63 });
//! client.call(&Request { req_id: 2, body: RequestBody::Shutdown }).unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;
pub mod server;
pub mod wal;

pub use metrics::{LatencySummary, MetricsSnapshot, ServeMetrics};
pub use protocol::{Request, RequestBody, Response, ResponseBody};
pub use server::{start, Client, ServeConfig, ServerHandle};
