//! The daemon: resident tenants, a bounded request queue, and a dispatcher
//! that batches work across tenants onto the global `soar-pool`.
//!
//! # Threading model
//!
//! ```text
//!  acceptor ──► one reader thread per connection
//!                  │  decode + admission control (shed here, never buffer)
//!                  ▼
//!            bounded global queue  ──►  dispatcher thread
//!                                         │  drain a batch, group by tenant
//!                                         ▼
//!                                  soar_pool::global().scope(..)
//!                                    one job per tenant in the batch,
//!                                    each solving on its worker's
//!                                    persistent warm SolverWorkspace
//! ```
//!
//! Per-tenant state is one [`DynamicInstance`] behind a mutex — cheap enough
//! to keep thousands resident. Solver state is **not** per tenant: all
//! instances of one shape share the per-thread warm workspaces
//! ([`with_thread_workspace`]), so a solve is a warm, allocation-free full
//! gather regardless of which tenant it serves.
//!
//! # Admission control
//!
//! The reader thread sheds *before* queueing: a full global queue or a tenant
//! already at its in-flight cap answers [`ResponseBody::Overloaded`]
//! immediately. Memory is therefore bounded by
//! `queue_cap × largest frame` regardless of offered load — an overloaded
//! server degrades to fast explicit rejections, not to an unbounded buffer.
//!
//! Ordering: requests of one tenant on one connection execute in send order.
//! Cross-tenant order is unspecified (that's where the parallelism is).
//! `Register`/`Evict` act as batch-wide barriers so a register is visible to
//! every later request in the stream that named the tenant.

use crate::metrics::{add, MetricsSnapshot, ServeMetrics, TenantBreakdown};
use crate::protocol::{
    DecodeError, ErrorCode, Request, RequestBody, Response, ResponseBody, ShedScope, SolveOutcome,
};
use crate::wal::{self, TenantParams, TenantRecord, WalWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_core::workspace::with_thread_workspace;
use soar_dataplane::framing::{self, FramingError};
use soar_online::{DynamicInstance, OnlineError};
use soar_topology::builders;
use soar_topology::load::LoadSpec;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. The defaults suit a localhost loadtest; the CLI exposes
/// each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Global queue bound: requests beyond it are shed.
    pub queue_cap: usize,
    /// Per-tenant in-flight bound: queued-but-unfinished requests of one
    /// tenant beyond it are shed.
    pub tenant_inflight_cap: usize,
    /// Resident-tenant bound: registers beyond it fail with `Capacity`.
    pub max_tenants: usize,
    /// Largest accepted wire frame.
    pub max_frame_len: usize,
    /// Most requests the dispatcher drains into one batch.
    pub batch_cap: usize,
    /// Largest `BT(n)` parameter a register may ask for.
    pub max_switches: u32,
    /// Directory for the write-ahead log and snapshots. `None` (the default)
    /// runs without durability, exactly as before.
    pub state_dir: Option<PathBuf>,
    /// Replay `state_dir`'s snapshot + WAL at startup. Without this flag an
    /// existing state dir is **replaced** by a fresh empty log.
    pub recover: bool,
    /// WAL records between snapshots (`0` snapshots after every batch).
    pub snapshot_every: u64,
    /// Per-connection write deadline: a response write blocked longer than
    /// this counts as an `io_error` and drops the connection, so one slow
    /// reader can never head-of-line-block a worker. `None` blocks forever.
    pub write_deadline: Option<Duration>,
    /// Bind address for the Prometheus `/metrics` exposition endpoint
    /// (`soar serve --obs-addr`). `None` (the default) serves no HTTP.
    pub obs_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_cap: 1024,
            tenant_inflight_cap: 64,
            max_tenants: 65_536,
            max_frame_len: framing::MAX_FRAME_LEN,
            batch_cap: 128,
            max_switches: 1 << 20,
            state_dir: None,
            recover: false,
            snapshot_every: 1024,
            write_deadline: Some(Duration::from_secs(5)),
            obs_addr: None,
        }
    }
}

/// One resident tenant: its mutable state behind a mutex, the immutable
/// build parameters, and the admission gauge.
struct TenantEntry {
    state: Mutex<TenantState>,
    /// The deterministic build parameters of the register, kept so snapshots
    /// can rebuild the tree shape.
    params: TenantParams,
    inflight: AtomicUsize,
    /// Per-tenant usage, folded into [`MetricsSnapshot::top_tenants`].
    events_applied: AtomicU64,
    solves: AtomicU64,
    solve_ns: AtomicU64,
}

impl TenantEntry {
    fn new(instance: DynamicInstance, last_seq: u64, params: TenantParams) -> Self {
        TenantEntry {
            state: Mutex::new(TenantState { instance, last_seq }),
            params,
            inflight: AtomicUsize::new(0),
            events_applied: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solve_ns: AtomicU64::new(0),
        }
    }
}

/// The lock-protected part of a tenant.
struct TenantState {
    instance: DynamicInstance,
    /// Highest churn-batch `seq` applied (0 until the first sequenced batch).
    /// Batches at or below it are answered `duplicate: true` without being
    /// re-applied — and without reaching the WAL.
    last_seq: u64,
}

/// One accepted connection. Responses from any thread serialize on `writer`;
/// `reader` is the same socket, kept for targeted shutdown.
struct Conn {
    writer: Mutex<TcpStream>,
    peer_gone: AtomicBool,
}

impl Conn {
    /// Encodes and writes one response frame (single `write_all`, so frames
    /// from concurrent completions never interleave).
    fn send(&self, shared: &Shared, resp: &Response) {
        let mut frame = Vec::with_capacity(64);
        frame.extend_from_slice(&[0; framing::LEN_PREFIX_BYTES]);
        resp.encode(&mut frame);
        let len = (frame.len() - framing::LEN_PREFIX_BYTES) as u32;
        frame[..framing::LEN_PREFIX_BYTES].copy_from_slice(&len.to_be_bytes());
        let mut w = self.writer.lock().unwrap();
        if w.write_all(&frame).is_err() {
            // Peer gone, or a slow reader filled the socket buffer past the
            // write deadline. Either way the stream may be desynced: count
            // it, drop the connection cleanly, keep serving everyone else.
            self.peer_gone.store(true, Ordering::Relaxed);
            let _ = w.shutdown(std::net::Shutdown::Both);
            add(&shared.metrics.io_errors, 1);
        } else {
            add(&shared.metrics.responses, 1);
        }
    }
}

/// One queued request.
struct Work {
    conn: Arc<Conn>,
    req_id: u64,
    body: RequestBody,
    /// The tenant entry resolved at admission (for the in-flight gauge); the
    /// dispatcher re-resolves by id so eviction ordering stays strict.
    gauge: Option<Arc<TenantEntry>>,
    enqueued: Instant,
}

/// State shared by every server thread.
struct Shared {
    config: ServeConfig,
    tenants: RwLock<HashMap<u64, Arc<TenantEntry>>>,
    queue: Mutex<VecDeque<Work>>,
    queue_cv: Condvar,
    metrics: ServeMetrics,
    /// Durable logging, when `config.state_dir` is set.
    wal: Option<Mutex<WalWriter>>,
    shutdown: AtomicBool,
    /// Shutdown flag shared with the obs HTTP responder thread (an `Arc`
    /// because `soar_obs::http` is daemon-agnostic and owns only the flag).
    obs_shutdown: Arc<AtomicBool>,
    conns: Mutex<Vec<Weak<TcpStream>>>,
    next_conn: AtomicU64,
}

/// Tenants kept in the [`MetricsSnapshot::top_tenants`] breakdown.
const TOP_TENANTS: usize = 8;

impl Shared {
    fn snapshot(&self) -> MetricsSnapshot {
        let depth = self.queue.lock().unwrap().len();
        let map = self.tenants.read().unwrap();
        let resident = map.len();
        // Top-N tenants by solver time, then by churn volume: the per-tenant
        // cells are relaxed atomics on the entries, so this is a read-only
        // sweep of the map — no tenant lock is touched.
        let mut top: Vec<TenantBreakdown> = map
            .iter()
            .map(|(&tenant, e)| TenantBreakdown {
                tenant,
                events_applied: e.events_applied.load(Ordering::Relaxed),
                solves: e.solves.load(Ordering::Relaxed),
                solve_ns: e.solve_ns.load(Ordering::Relaxed),
            })
            .filter(|t| t.events_applied > 0 || t.solves > 0)
            .collect();
        drop(map);
        top.sort_unstable_by_key(|t| {
            (
                std::cmp::Reverse(t.solve_ns),
                std::cmp::Reverse(t.events_applied),
                t.tenant,
            )
        });
        top.truncate(TOP_TENANTS);
        self.metrics.snapshot(depth, resident, top)
    }

    /// Flips the shutdown flag and unblocks every thread: the dispatcher via
    /// the condvar, the readers by closing their sockets, the acceptor by a
    /// self-connection.
    fn begin_shutdown(&self, addr: SocketAddr) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.obs_shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        for stream in self.conns.lock().unwrap().iter().filter_map(Weak::upgrade) {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        // Wake the blocking `accept` — the acceptor sees the flag and exits.
        let _ = TcpStream::connect(addr);
    }
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or send a `Shutdown` request) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    obs: Option<soar_obs::http::MetricsServer>,
}

impl ServerHandle {
    /// The bound address (the resolved port when the config asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the Prometheus exposition endpoint, when
    /// `obs_addr` was configured.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs.as_ref().map(|o| o.addr())
    }

    /// Requests graceful shutdown: stop accepting, drain the queue, answer
    /// everything already admitted.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown(self.addr);
    }

    /// Waits for every server thread to exit and returns the final metrics.
    /// Call [`Self::shutdown`] first (or have a client send `Shutdown`).
    pub fn join(self) -> MetricsSnapshot {
        let _ = self.acceptor.join();
        let _ = self.dispatcher.join();
        // Readers exit once their sockets close; new ones cannot appear after
        // the acceptor is gone.
        let readers = std::mem::take(&mut *self.readers.lock().unwrap());
        for r in readers {
            let _ = r.join();
        }
        if let Some(obs) = self.obs {
            obs.join();
        }
        self.shared.snapshot()
    }

    /// The live metrics, snapshotted now.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }
}

/// Binds and starts the server threads. Returns once the listener is live.
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    // Durable state: optionally recover, then begin a fresh snapshot + WAL
    // (this also truncates any torn tail the previous run left behind).
    let metrics = ServeMetrics::default();
    let mut tenants = HashMap::new();
    let wal = match &config.state_dir {
        None => None,
        Some(dir) => {
            let mut records: Vec<TenantRecord> = Vec::new();
            let mut next_index = 0;
            if config.recover {
                let replay_started = Instant::now();
                let recovery = wal::recover(dir).map_err(io::Error::other)?;
                add(
                    &metrics.recovery_replay_ns,
                    replay_started.elapsed().as_nanos() as u64,
                );
                next_index = recovery.next_index;
                add(&metrics.recovered_tenants, recovery.tenants.len() as u64);
                add(
                    &metrics.replayed_wal_records,
                    recovery.stats.replayed_records,
                );
                add(
                    &metrics.recovery_truncated,
                    u64::from(recovery.stats.truncated),
                );
                for t in recovery.tenants {
                    records.push(TenantRecord {
                        tenant: t.tenant,
                        params: t.params,
                        last_seq: t.last_seq,
                        image: t.instance.image(),
                    });
                    tenants.insert(
                        t.tenant,
                        Arc::new(TenantEntry::new(t.instance, t.last_seq, t.params)),
                    );
                }
            }
            let writer = WalWriter::begin(dir, next_index, &records).map_err(io::Error::other)?;
            add(&metrics.snapshots, 1);
            Some(Mutex::new(writer))
        }
    };

    let shared = Arc::new(Shared {
        config,
        tenants: RwLock::new(tenants),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        metrics,
        wal,
        shutdown: AtomicBool::new(false),
        obs_shutdown: Arc::new(AtomicBool::new(false)),
        conns: Mutex::new(Vec::new()),
        next_conn: AtomicU64::new(0),
    });
    let readers = Arc::new(Mutex::new(Vec::new()));

    // The Prometheus exposition endpoint: `/metrics` renders the same frozen
    // snapshot that answers the binary `Metrics` request, plus the global
    // registry (pool and solver counters).
    let obs = match shared.config.obs_addr.clone() {
        None => None,
        Some(obs_addr) => {
            let render_shared = Arc::clone(&shared);
            let server = soar_obs::http::MetricsServer::start(
                &obs_addr,
                Arc::clone(&shared.obs_shutdown),
                Arc::new(move |path: &str| {
                    if path != "/metrics" {
                        return None;
                    }
                    let snap = render_shared.snapshot();
                    let mut body = crate::metrics::render_prom(&snap, &render_shared.metrics);
                    body.push_str(&soar_obs::prom::render_registry());
                    Some(body)
                }),
            )?;
            Some(server)
        }
    };

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("soar-serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))?
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        let readers = Arc::clone(&readers);
        std::thread::Builder::new()
            .name("soar-serve-accept".into())
            .spawn(move || accept_loop(listener, addr, &shared, &readers))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor,
        dispatcher,
        readers,
        obs,
    })
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(shared.config.write_deadline);
        add(&shared.metrics.accepted_conns, 1);
        let read_half = match stream.try_clone() {
            Ok(s) => Arc::new(s),
            Err(_) => continue,
        };
        shared
            .conns
            .lock()
            .unwrap()
            .push(Arc::downgrade(&read_half));
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            peer_gone: AtomicBool::new(false),
        });
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("soar-serve-conn-{id}"))
            .spawn(move || reader_loop(&read_half, &conn, &shared, addr));
        if let Ok(handle) = handle {
            readers.lock().unwrap().push(handle);
        }
    }
}

fn reader_loop(stream: &TcpStream, conn: &Arc<Conn>, shared: &Arc<Shared>, addr: SocketAddr) {
    let mut stream = stream;
    let mut buf = Vec::new();
    loop {
        if conn.peer_gone.load(Ordering::Relaxed) {
            break;
        }
        match framing::read_frame(&mut stream, &mut buf, shared.config.max_frame_len) {
            Ok(false) => break, // clean disconnect
            Ok(true) => {
                add(&shared.metrics.requests, 1);
                match Request::decode(&buf) {
                    Ok(req) => handle_request(conn, shared, addr, req),
                    Err(e) => {
                        // A desynced stream cannot be trusted further: answer
                        // once (best effort, req_id 0) and drop the peer.
                        add(&shared.metrics.errors, 1);
                        conn.send(
                            shared,
                            &Response {
                                req_id: 0,
                                body: ResponseBody::Error {
                                    code: ErrorCode::BadRequest,
                                    message: format!("malformed request: {e}"),
                                },
                            },
                        );
                        break;
                    }
                }
            }
            Err(FramingError::Oversized { declared, max }) => {
                add(&shared.metrics.errors, 1);
                conn.send(
                    shared,
                    &Response {
                        req_id: 0,
                        body: ResponseBody::Error {
                            code: ErrorCode::BadRequest,
                            message: format!("frame of {declared} bytes exceeds cap {max}"),
                        },
                    },
                );
                break;
            }
            // Truncation/IO mid-stream: the peer died or we are shutting down.
            Err(_) => break,
        }
    }
}

/// Decode succeeded — apply admission control and queue (or answer inline).
fn handle_request(conn: &Arc<Conn>, shared: &Arc<Shared>, addr: SocketAddr, req: Request) {
    let _admission = soar_obs::span!("admission");
    let Request { req_id, body } = req;
    match &body {
        // Metrics are read-only and answered from the reader thread — they
        // must work *especially* when the queue is jammed.
        RequestBody::Metrics => {
            let json = serde_json::to_string(&shared.snapshot()).expect("snapshot serializes");
            conn.send(
                shared,
                &Response {
                    req_id,
                    body: ResponseBody::MetricsReport { json },
                },
            );
            return;
        }
        RequestBody::Shutdown => {
            conn.send(
                shared,
                &Response {
                    req_id,
                    body: ResponseBody::ShuttingDown,
                },
            );
            shared.begin_shutdown(addr);
            return;
        }
        _ => {}
    }

    if shared.shutdown.load(Ordering::SeqCst) {
        add(&shared.metrics.errors, 1);
        conn.send(
            shared,
            &Response {
                req_id,
                body: ResponseBody::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_owned(),
                },
            },
        );
        return;
    }

    // Tenant-targeted requests: resolve the entry for the in-flight gauge.
    let tenant = body.tenant().expect("non-tenant requests handled above");
    let gauge = shared.tenants.read().unwrap().get(&tenant).cloned();
    let is_register = matches!(body, RequestBody::Register { .. });
    if gauge.is_none() && !is_register {
        add(&shared.metrics.errors, 1);
        conn.send(
            shared,
            &Response {
                req_id,
                body: ResponseBody::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("tenant {tenant} is not resident"),
                },
            },
        );
        return;
    }
    if let Some(entry) = &gauge {
        if entry.inflight.load(Ordering::Relaxed) >= shared.config.tenant_inflight_cap {
            add(&shared.metrics.shed_tenant, 1);
            conn.send(
                shared,
                &Response {
                    req_id,
                    body: ResponseBody::Overloaded {
                        scope: ShedScope::TenantInflight,
                    },
                },
            );
            return;
        }
    }

    let work = Work {
        conn: Arc::clone(conn),
        req_id,
        body,
        gauge,
        enqueued: Instant::now(),
    };
    {
        let mut queue = shared.queue.lock().unwrap();
        // Re-checked under the queue lock: the dispatcher's exit check
        // (queue empty && shutdown) also runs under it, so a request can
        // never slip into a queue nobody will drain.
        if shared.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            add(&shared.metrics.errors, 1);
            conn.send(
                shared,
                &Response {
                    req_id: work.req_id,
                    body: ResponseBody::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".to_owned(),
                    },
                },
            );
            return;
        }
        if queue.len() >= shared.config.queue_cap {
            drop(queue);
            add(&shared.metrics.shed_global, 1);
            conn.send(
                shared,
                &Response {
                    req_id: work.req_id,
                    body: ResponseBody::Overloaded {
                        scope: ShedScope::GlobalQueue,
                    },
                },
            );
            return;
        }
        if let Some(entry) = &work.gauge {
            entry.inflight.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(work);
    }
    shared.queue_cv.notify_one();
}

/// `Register`/`Evict` mutate the tenant map and order against *every* tenant's
/// stream, so they split a batch into independently-parallel segments.
fn is_barrier(work: &Work) -> bool {
    matches!(
        work.body,
        RequestBody::Register { .. } | RequestBody::Evict { .. }
    )
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let pool = soar_pool::global();
    loop {
        let mut batch: VecDeque<Work> = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drained and draining stopped: leave a final snapshot so
                    // a restart with --recover replays nothing.
                    drop(queue);
                    write_snapshot_now(shared);
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
            // Batch formation proper: drain under the lock (the condvar wait
            // above is idle time, not formation work).
            let formed = Instant::now();
            let _form = soar_obs::span!("batch_form", queue.len());
            let take = queue.len().min(shared.config.batch_cap);
            let batch: VecDeque<Work> = queue.drain(..take).collect();
            drop(queue);
            shared
                .metrics
                .batch_form
                .record(formed.elapsed().as_nanos() as u64);
            batch
        };

        while let Some(work) = batch.pop_front() {
            if is_barrier(&work) {
                process_barrier(shared, work);
                continue;
            }
            // Collect the run of non-barrier requests, grouped by tenant in
            // arrival order, and fan the groups out across the pool. Each
            // group runs on one worker, keeping per-tenant FIFO order.
            let mut order: Vec<u64> = Vec::new();
            let mut groups: HashMap<u64, Vec<Work>> = HashMap::new();
            let mut push = |w: Work| {
                let tenant = w.body.tenant().expect("barriers filtered");
                groups.entry(tenant).or_insert_with(|| {
                    order.push(tenant);
                    Vec::new()
                });
                groups.get_mut(&tenant).unwrap().push(w);
            };
            push(work);
            while batch.front().is_some_and(|w| !is_barrier(w)) {
                push(batch.pop_front().unwrap());
            }
            pool.scope(|s| {
                for tenant in order.drain(..) {
                    let run = groups.remove(&tenant).unwrap();
                    s.spawn(move || {
                        for w in run {
                            process_tenant_work(shared, w);
                        }
                    });
                }
            });
        }
        maybe_snapshot(shared);
    }
}

/// Snapshots when enough WAL records accumulated. Dispatcher-only, between
/// batches.
fn maybe_snapshot(shared: &Arc<Shared>) {
    let Some(wal) = &shared.wal else { return };
    let due = wal.lock().unwrap().records_since_snapshot() > shared.config.snapshot_every;
    if due {
        write_snapshot_now(shared);
    }
}

/// Writes a snapshot of every resident tenant and rotates the WAL.
///
/// Called only from the dispatcher **between** batches (and at shutdown):
/// no pool worker holds a tenant lock then, so locking the tenants one at a
/// time reads a consistent cut of the whole map.
fn write_snapshot_now(shared: &Arc<Shared>) {
    let Some(wal) = &shared.wal else { return };
    let entries: Vec<(u64, Arc<TenantEntry>)> = {
        let map = shared.tenants.read().unwrap();
        let mut v: Vec<_> = map.iter().map(|(t, e)| (*t, Arc::clone(e))).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    };
    let records: Vec<TenantRecord> = entries
        .iter()
        .map(|(tenant, entry)| {
            let state = entry.state.lock().unwrap();
            TenantRecord {
                tenant: *tenant,
                params: entry.params,
                last_seq: state.last_seq,
                image: state.instance.image(),
            }
        })
        .collect();
    match wal.lock().unwrap().write_snapshot(&records) {
        Ok(()) => add(&shared.metrics.snapshots, 1),
        Err(_) => add(&shared.metrics.wal_errors, 1),
    }
}

/// Maps an [`OnlineError`] from a churn apply onto the wire error codes.
fn online_error(e: &OnlineError) -> ErrorCode {
    match e {
        OnlineError::UnknownSwitch(_) | OnlineError::NotALeaf(_) | OnlineError::InvalidRate(_) => {
            ErrorCode::BadSwitch
        }
        OnlineError::DuplicateTenant(_) => ErrorCode::DuplicateTenant,
        OnlineError::UnknownTenant(_) => ErrorCode::UnknownTenant,
    }
}

/// Appends one WAL record (no-op without a state dir). On failure the
/// caller must reject the request — the mutation must not happen, or replay
/// would diverge.
fn append_wal(
    shared: &Arc<Shared>,
    f: impl FnOnce(&mut WalWriter) -> Result<(), wal::WalError>,
) -> Result<(), String> {
    let Some(wal) = &shared.wal else {
        return Ok(());
    };
    let _span = soar_obs::span!("wal_append");
    let started = Instant::now();
    let result = f(&mut wal.lock().unwrap());
    shared
        .metrics
        .wal_append
        .record(started.elapsed().as_nanos() as u64);
    match result {
        Ok(()) => {
            add(&shared.metrics.wal_records, 1);
            Ok(())
        }
        Err(e) => {
            add(&shared.metrics.wal_errors, 1);
            Err(format!("wal append failed: {e}"))
        }
    }
}

fn process_barrier(shared: &Arc<Shared>, work: Work) {
    let Work {
        conn,
        req_id,
        body,
        gauge,
        enqueued,
    } = work;
    shared
        .metrics
        .queue_wait
        .record(enqueued.elapsed().as_nanos() as u64);
    let respond = |body: ResponseBody| conn.send(shared, &Response { req_id, body });
    match body {
        RequestBody::Register {
            tenant,
            switches,
            budget,
            seed,
        } => {
            let fail = |message: String, code| {
                add(&shared.metrics.errors, 1);
                conn.send(
                    shared,
                    &Response {
                        req_id,
                        body: ResponseBody::Error { code, message },
                    },
                );
            };
            if switches == 0 || switches > shared.config.max_switches {
                fail(
                    format!(
                        "switches {} outside 1..={}",
                        switches, shared.config.max_switches
                    ),
                    ErrorCode::BadRequest,
                );
            } else if shared.tenants.read().unwrap().len() >= shared.config.max_tenants {
                fail(
                    format!("resident-tenant cap {} reached", shared.config.max_tenants),
                    ErrorCode::Capacity,
                );
            } else {
                // Deterministic build: BT(switches) with seeded paper-uniform
                // leaf loads — the contract the offline-replay tests lean on.
                let params = TenantParams {
                    switches,
                    budget,
                    seed,
                };
                let instance = build_tenant(switches, budget, seed);
                let n_switches = instance.n_switches() as u32;
                let entry = Arc::new(TenantEntry::new(instance, 0, params));
                use std::collections::hash_map::Entry;
                match shared.tenants.write().unwrap().entry(tenant) {
                    Entry::Occupied(_) => fail(
                        format!("tenant {tenant} is already resident"),
                        ErrorCode::DuplicateTenant,
                    ),
                    Entry::Vacant(v) => {
                        // Log before insert: once the record is durable the
                        // tenant WILL exist after any crash.
                        match append_wal(shared, |w| w.append_register(tenant, params)) {
                            Err(msg) => fail(msg, ErrorCode::Internal),
                            Ok(()) => {
                                v.insert(entry);
                                add(&shared.metrics.registers, 1);
                                respond(ResponseBody::Registered { tenant, n_switches });
                            }
                        }
                    }
                }
            }
        }
        RequestBody::Evict { tenant } => {
            let mut map = shared.tenants.write().unwrap();
            if map.contains_key(&tenant) {
                match append_wal(shared, |w| w.append_evict(tenant)) {
                    Err(msg) => {
                        drop(map);
                        add(&shared.metrics.errors, 1);
                        respond(ResponseBody::Error {
                            code: ErrorCode::Internal,
                            message: msg,
                        });
                    }
                    Ok(()) => {
                        map.remove(&tenant);
                        drop(map);
                        add(&shared.metrics.evictions, 1);
                        respond(ResponseBody::Evicted { tenant });
                    }
                }
            } else {
                drop(map);
                add(&shared.metrics.errors, 1);
                respond(ResponseBody::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("tenant {tenant} is not resident"),
                });
            }
        }
        _ => unreachable!("only Register/Evict are barriers"),
    }
    shared
        .metrics
        .churn_latency
        .record(enqueued.elapsed().as_nanos() as u64);
    if let Some(entry) = gauge {
        entry.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The deterministic tenant constructor shared (by contract) with offline
/// replays: `BT(switches)` + paper-uniform loads from `seed`, wrapped at
/// `budget`.
pub fn build_tenant(switches: u32, budget: u32, seed: u64) -> DynamicInstance {
    let mut tree = builders::complete_binary_tree_bt(switches as usize);
    tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut StdRng::seed_from_u64(seed));
    DynamicInstance::new(&tree, budget as usize)
}

fn process_tenant_work(shared: &Arc<Shared>, work: Work) {
    let Work {
        conn,
        req_id,
        body,
        gauge,
        enqueued,
    } = work;
    // Queue wait is measured here (not as a span): the request crossed from a
    // reader thread to this pool worker, and spans are per-thread by design.
    shared
        .metrics
        .queue_wait
        .record(enqueued.elapsed().as_nanos() as u64);
    let _work_span = soar_obs::span!("tenant_work");
    let tenant = body.tenant().expect("tenant work");
    let respond = |body: ResponseBody| conn.send(shared, &Response { req_id, body });
    // Re-resolve: a same-batch evict (barrier) may have removed the tenant
    // after admission.
    let entry = shared.tenants.read().unwrap().get(&tenant).cloned();
    let Some(entry) = entry else {
        add(&shared.metrics.errors, 1);
        respond(ResponseBody::Error {
            code: ErrorCode::UnknownTenant,
            message: format!("tenant {tenant} is not resident"),
        });
        if let Some(g) = gauge {
            g.inflight.fetch_sub(1, Ordering::Relaxed);
        }
        return;
    };

    match body {
        RequestBody::Churn { events, seq, .. } => {
            let mut state = entry.state.lock().unwrap();
            if seq != 0 && seq <= state.last_seq {
                // Idempotent replay: the batch (or a later one) was already
                // applied. Answer success without touching instance or WAL.
                drop(state);
                add(&shared.metrics.duplicate_churns, 1);
                respond(ResponseBody::ChurnApplied {
                    tenant,
                    applied: 0,
                    duplicate: true,
                });
            } else if let Err(msg) = append_wal(shared, |w| w.append_churn(tenant, seq, &events)) {
                // Log-before-apply failed: reject without mutating, or a
                // post-crash replay would miss this batch.
                drop(state);
                add(&shared.metrics.errors, 1);
                respond(ResponseBody::Error {
                    code: ErrorCode::Internal,
                    message: msg,
                });
            } else {
                if seq != 0 {
                    // The batch consumes its seq even if an event fails below:
                    // the WAL record is durable and replay will reproduce the
                    // same partial application.
                    state.last_seq = seq;
                }
                let mut applied = 0u32;
                let mut failed: Option<OnlineError> = None;
                {
                    let _apply = soar_obs::span!("apply_events", events.len());
                    for event in &events {
                        // A budget change re-shapes the DP tables; allow it —
                        // the next solve simply pays a fresh table layout.
                        match state.instance.apply(event) {
                            Ok(()) => applied += 1,
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        }
                    }
                }
                drop(state);
                add(&shared.metrics.events_applied, u64::from(applied));
                add(&entry.events_applied, u64::from(applied));
                match failed {
                    None => respond(ResponseBody::ChurnApplied {
                        tenant,
                        applied,
                        duplicate: false,
                    }),
                    Some(e) => {
                        add(&shared.metrics.errors, 1);
                        respond(ResponseBody::Error {
                            code: online_error(&e),
                            message: format!("event {applied} failed: {e}"),
                        });
                    }
                }
            }
            shared
                .metrics
                .churn_latency
                .record(enqueued.elapsed().as_nanos() as u64);
        }
        RequestBody::Solve { .. } => {
            let state = entry.state.lock().unwrap();
            let _solve = soar_obs::span!("serve_solve", tenant);
            let outcome = with_thread_workspace(|ws| {
                let t0 = Instant::now();
                ws.gather_auto(state.instance.tree(), state.instance.budget());
                let (cost, _) = ws.trace_best(state.instance.tree());
                SolveOutcome {
                    tenant,
                    cost,
                    all_red_cost: ws.tables().optimum_with_exactly(0),
                    blue_used: ws.coloring().n_blue() as u32,
                    cells_written: ws.last_cells_written() as u64,
                    alloc_events: ws.last_alloc_events() as u64,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                }
            });
            drop(state);
            add(&shared.metrics.solves, 1);
            add(&shared.metrics.cells_written, outcome.cells_written);
            add(&shared.metrics.alloc_events, outcome.alloc_events);
            add(&entry.solves, 1);
            add(&entry.solve_ns, outcome.wall_ns);
            respond(ResponseBody::Solved(outcome));
            shared
                .metrics
                .solve_latency
                .record(enqueued.elapsed().as_nanos() as u64);
        }
        RequestBody::Sweep { budgets, .. } => {
            let state = entry.state.lock().unwrap();
            let _sweep = soar_obs::span!("serve_sweep", tenant);
            let sweep_started = Instant::now();
            let kmax = budgets.iter().copied().max().unwrap_or(0) as usize;
            let (costs, cells, allocs) = with_thread_workspace(|ws| {
                // One gather at the largest budget serves every requested k:
                // the optimum at budget k is the running minimum of
                // X_r(1, i) over i ≤ k (the sweep identity from soar-core).
                ws.gather_auto(state.instance.tree(), kmax);
                let mut best = f64::INFINITY;
                let mut by_exact = vec![f64::INFINITY; kmax + 1];
                for (i, slot) in by_exact.iter_mut().enumerate() {
                    best = best.min(ws.tables().optimum_with_exactly(i));
                    *slot = best;
                }
                let costs: Vec<(u32, f64)> = budgets
                    .iter()
                    .map(|&k| (k, by_exact[(k as usize).min(kmax)]))
                    .collect();
                (
                    costs,
                    ws.last_cells_written() as u64,
                    ws.last_alloc_events() as u64,
                )
            });
            drop(state);
            add(&shared.metrics.sweeps, 1);
            add(&shared.metrics.cells_written, cells);
            add(&shared.metrics.alloc_events, allocs);
            add(&entry.solves, 1);
            add(&entry.solve_ns, sweep_started.elapsed().as_nanos() as u64);
            respond(ResponseBody::SweepResult { tenant, costs });
            shared
                .metrics
                .solve_latency
                .record(enqueued.elapsed().as_nanos() as u64);
        }
        RequestBody::Register { .. }
        | RequestBody::Evict { .. }
        | RequestBody::Metrics
        | RequestBody::Shutdown => {
            unreachable!("handled as barriers / inline")
        }
    }

    if let Some(g) = gauge {
        g.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A blocking single-connection client — the shared building block of the
/// CLI, the loadtest harness, and the tests. Supports pipelining: `send` and
/// `recv` may be driven from two threads via [`Client::split`].
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_len: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            max_frame_len: framing::MAX_FRAME_LEN,
        })
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64);
        req.encode(&mut payload);
        framing::write_frame(&mut self.stream, &payload)
    }

    /// Receives the next response frame (blocking). `Ok(None)` on clean EOF.
    pub fn recv(&mut self) -> Result<Option<Response>, ClientError> {
        if !framing::read_frame(&mut self.stream, &mut self.buf, self.max_frame_len)? {
            return Ok(None);
        }
        Ok(Some(Response::decode(&self.buf)?))
    }

    /// One request, one response — the non-pipelined convenience used by
    /// register/control paths.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()?.ok_or(ClientError::Disconnected)
    }

    /// Bounds how long a single `recv` read may block (`None` restores the
    /// default of blocking forever). The resilient loadtest path sets this so
    /// a dead server surfaces as a timed-out `Err` instead of a hang.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Writes raw bytes to the connection, bypassing request encoding and
    /// framing entirely. This is the chaos-injection escape hatch (torn
    /// frames, garbage payloads); well-behaved clients never need it.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Splits into independently-usable send and receive halves (two socket
    /// handles onto one connection), enabling windowed pipelining.
    pub fn split(self) -> io::Result<(ClientSender, ClientReceiver)> {
        let send_half = self.stream.try_clone()?;
        Ok((
            ClientSender { stream: send_half },
            ClientReceiver {
                stream: self.stream,
                buf: self.buf,
                max_frame_len: self.max_frame_len,
            },
        ))
    }
}

/// The sending half of a split [`Client`].
pub struct ClientSender {
    stream: TcpStream,
}

impl ClientSender {
    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64);
        req.encode(&mut payload);
        framing::write_frame(&mut self.stream, &payload)
    }
}

/// The receiving half of a split [`Client`].
pub struct ClientReceiver {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_len: usize,
}

impl ClientReceiver {
    /// Receives the next response frame (blocking). `Ok(None)` on clean EOF.
    pub fn recv(&mut self) -> Result<Option<Response>, ClientError> {
        if !framing::read_frame(&mut self.stream, &mut self.buf, self.max_frame_len)? {
            return Ok(None);
        }
        Ok(Some(Response::decode(&self.buf)?))
    }
}

/// A client-side failure: transport, framing, or a malformed response.
#[derive(Debug)]
pub enum ClientError {
    /// The stream framing failed (includes IO errors).
    Framing(FramingError),
    /// A well-framed but undecodable response.
    Decode(DecodeError),
    /// The server closed the connection mid-call.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Framing(e) => write!(f, "{e}"),
            ClientError::Decode(e) => write!(f, "bad response: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FramingError> for ClientError {
    fn from(e: FramingError) -> Self {
        ClientError::Framing(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Framing(FramingError::Io(e))
    }
}

/// Replays the exact server-side solve on a local instance — the offline
/// oracle for response-bit-identity tests and a convenient library entry for
/// users who want server-equivalent numbers without a server.
pub fn solve_offline(instance: &DynamicInstance, tenant: u64) -> SolveOutcome {
    with_thread_workspace(|ws| {
        let t0 = Instant::now();
        ws.gather_auto(instance.tree(), instance.budget());
        let (cost, _) = ws.trace_best(instance.tree());
        SolveOutcome {
            tenant,
            cost,
            all_red_cost: ws.tables().optimum_with_exactly(0),
            blue_used: ws.coloring().n_blue() as u32,
            cells_written: ws.last_cells_written() as u64,
            alloc_events: ws.last_alloc_events() as u64,
            wall_ns: t0.elapsed().as_nanos() as u64,
        }
    })
}

/// Like [`solve_offline`] but only the churn-independent fields are
/// meaningful for comparison (wall time and allocation counts are
/// machine/warmth-dependent).
pub fn comparable(outcome: &SolveOutcome) -> (u64, u64, u64, u32, u64) {
    (
        outcome.tenant,
        outcome.cost.to_bits(),
        outcome.all_red_cost.to_bits(),
        outcome.blue_used,
        outcome.cells_written,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestBody;
    use soar_multitenant::churn::ChurnEvent;

    fn request(req_id: u64, body: RequestBody) -> Request {
        Request { req_id, body }
    }

    #[test]
    fn register_churn_solve_evict_round_trip() {
        let handle = start(ServeConfig::default()).unwrap();
        let mut client = Client::connect(&handle.addr()).unwrap();

        let resp = client
            .call(&request(
                1,
                RequestBody::Register {
                    tenant: 7,
                    switches: 64,
                    budget: 4,
                    seed: 11,
                },
            ))
            .unwrap();
        assert_eq!(
            resp.body,
            ResponseBody::Registered {
                tenant: 7,
                n_switches: 63
            }
        );

        // Duplicate register fails typed.
        let resp = client
            .call(&request(
                2,
                RequestBody::Register {
                    tenant: 7,
                    switches: 64,
                    budget: 4,
                    seed: 11,
                },
            ))
            .unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::DuplicateTenant,
                ..
            }
        ));

        let churn = RequestBody::Churn {
            tenant: 7,
            seq: 1,
            events: vec![
                ChurnEvent::LeafRateChange { leaf: 62, load: 9 },
                ChurnEvent::TenantArrive {
                    tenant: 0,
                    loads: vec![(60, 5), (61, 5)],
                },
            ],
        };
        let resp = client.call(&request(3, churn.clone())).unwrap();
        assert_eq!(
            resp.body,
            ResponseBody::ChurnApplied {
                tenant: 7,
                applied: 2,
                duplicate: false
            }
        );
        // Blind resend of the same sequenced batch (what a reconnecting client
        // does): deduplicated, not re-applied.
        let resp = client.call(&request(103, churn)).unwrap();
        assert_eq!(
            resp.body,
            ResponseBody::ChurnApplied {
                tenant: 7,
                applied: 0,
                duplicate: true
            }
        );

        let resp = client
            .call(&request(4, RequestBody::Solve { tenant: 7 }))
            .unwrap();
        let ResponseBody::Solved(outcome) = &resp.body else {
            panic!("{resp:?}");
        };
        // Bit-identical to the offline replay of the same event stream.
        let mut offline = build_tenant(64, 4, 11);
        offline
            .apply(&ChurnEvent::LeafRateChange { leaf: 62, load: 9 })
            .unwrap();
        offline
            .apply(&ChurnEvent::TenantArrive {
                tenant: 0,
                loads: vec![(60, 5), (61, 5)],
            })
            .unwrap();
        assert_eq!(comparable(outcome), comparable(&solve_offline(&offline, 7)));

        let resp = client
            .call(&request(
                5,
                RequestBody::Sweep {
                    tenant: 7,
                    budgets: vec![1, 2, 4],
                },
            ))
            .unwrap();
        let ResponseBody::SweepResult { costs, .. } = &resp.body else {
            panic!("{resp:?}");
        };
        assert_eq!(costs.len(), 3);
        // More budget never costs more.
        assert!(costs.windows(2).all(|w| w[1].1 <= w[0].1));
        // The sweep at the solve's budget agrees with the solve.
        assert_eq!(costs[2].1.to_bits(), outcome.cost.to_bits());

        let resp = client.call(&request(6, RequestBody::Metrics)).unwrap();
        let ResponseBody::MetricsReport { json } = &resp.body else {
            panic!("{resp:?}");
        };
        let snap: MetricsSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(snap.resident_tenants, 1);
        assert_eq!(snap.solves, 1);
        assert_eq!(snap.sweeps, 1);
        assert_eq!(
            snap.events_applied, 2,
            "the replayed batch was not re-applied"
        );
        assert_eq!(snap.duplicate_churns, 1);
        assert_eq!(snap.sheds(), 0);

        let resp = client
            .call(&request(7, RequestBody::Evict { tenant: 7 }))
            .unwrap();
        assert_eq!(resp.body, ResponseBody::Evicted { tenant: 7 });
        let resp = client
            .call(&request(8, RequestBody::Solve { tenant: 7 }))
            .unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::UnknownTenant,
                ..
            }
        ));

        let resp = client.call(&request(9, RequestBody::Shutdown)).unwrap();
        assert_eq!(resp.body, ResponseBody::ShuttingDown);
        let final_snap = handle.join();
        assert_eq!(final_snap.evictions, 1);
        assert_eq!(final_snap.io_errors, 0);
    }

    #[test]
    fn malformed_wire_bytes_get_typed_error_then_disconnect() {
        let handle = start(ServeConfig::default()).unwrap();
        let mut client = Client::connect(&handle.addr()).unwrap();
        // A well-framed frame full of garbage.
        framing::write_frame(&mut client.stream, &[0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5]).unwrap();
        let resp = client.recv().unwrap().unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // The server hung up on the desynced stream.
        assert!(client.recv().unwrap().is_none());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn obs_endpoint_serves_prometheus_consistent_with_binary_metrics() {
        let config = ServeConfig {
            obs_addr: Some("127.0.0.1:0".to_owned()),
            ..ServeConfig::default()
        };
        let handle = start(config).unwrap();
        let obs_addr = handle.obs_addr().expect("obs endpoint configured");
        let mut client = Client::connect(&handle.addr()).unwrap();
        client
            .call(&request(
                1,
                RequestBody::Register {
                    tenant: 4,
                    switches: 64,
                    budget: 4,
                    seed: 1,
                },
            ))
            .unwrap();
        for i in 0..3 {
            client
                .call(&request(10 + i, RequestBody::Solve { tenant: 4 }))
                .unwrap();
        }

        // Scrape /metrics over plain HTTP.
        let mut sock = TcpStream::connect(obs_addr).unwrap();
        sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        std::io::Read::read_to_string(&mut sock, &mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        let body = text.split("\r\n\r\n").nth(1).unwrap();

        // The scrape agrees with the binary Metrics response on every counter
        // both report (the quiesced daemon has no in-flight work to race on).
        let snap = handle.snapshot();
        assert!(body.contains(&format!("soar_serve_solves_total {}\n", snap.solves)));
        assert!(body.contains(&format!("soar_serve_requests_total {}\n", snap.requests)));
        assert!(body.contains("soar_serve_resident_tenants 1\n"));
        assert!(body.contains("soar_serve_tenant_solve_ns_total{tenant=\"4\"}"));
        assert!(body.contains("# TYPE soar_serve_queue_wait_ns summary"));
        // The global registry (pool/solver counters) rides along.
        assert!(body.contains("soar_gather_passes_total"));
        // Per-tenant breakdown made it into the snapshot too.
        assert_eq!(snap.top_tenants.len(), 1);
        assert_eq!(snap.top_tenants[0].solves, 3);

        // Unknown paths 404.
        let mut sock = TcpStream::connect(obs_addr).unwrap();
        sock.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        std::io::Read::read_to_string(&mut sock, &mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 404"), "{text}");

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn full_queue_sheds_with_overloaded_not_buffering() {
        // A queue of 2 and a server whose dispatcher is blocked by a churn on
        // a tenant whose lock we... cannot grab from here; instead, jam the
        // queue with a tiny cap and a stream of solves on a real tenant, and
        // verify at least one Overloaded comes back while nothing is lost.
        let config = ServeConfig {
            queue_cap: 2,
            tenant_inflight_cap: 1024,
            ..ServeConfig::default()
        };
        let handle = start(config).unwrap();
        let mut client = Client::connect(&handle.addr()).unwrap();
        client
            .call(&request(
                0,
                RequestBody::Register {
                    tenant: 1,
                    switches: 1024,
                    budget: 8,
                    seed: 3,
                },
            ))
            .unwrap();
        const N: u64 = 64;
        let (mut tx, mut rx) = client.split().unwrap();
        let sender = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(&request(100 + i, RequestBody::Solve { tenant: 1 }))
                    .unwrap();
            }
            tx
        });
        let mut solved = 0u64;
        let mut shed = 0u64;
        for _ in 0..N {
            match rx.recv().unwrap().unwrap().body {
                ResponseBody::Solved(_) => solved += 1,
                ResponseBody::Overloaded { .. } => shed += 1,
                other => panic!("{other:?}"),
            }
        }
        sender.join().unwrap();
        assert_eq!(solved + shed, N, "every request answered exactly once");
        assert!(solved > 0, "some work got through");
        let snap = handle.snapshot();
        assert_eq!(snap.sheds(), shed);
        handle.shutdown();
        handle.join();
    }
}
