//! The `soar serve` wire protocol: compact binary request/response messages.
//!
//! Messages ride inside the length-prefixed stream frames of
//! [`soar_dataplane::framing`]; this module defines what one frame's payload
//! means. The encoding follows the dataplane's [`wire`](soar_dataplane::wire)
//! conventions — big-endian fixed-width integers, one tag byte per message
//! family, every length validated against the remaining payload **before**
//! any buffer is reserved — so no byte sequence a peer can send will panic
//! the server or make it allocate unboundedly; malformed payloads come back
//! as typed [`DecodeError`]s.
//!
//! Every message starts with a caller-chosen `req_id` that the server echoes
//! in the response, so clients may pipeline arbitrarily many requests per
//! connection and correlate out-of-order completions.
//!
//! ```
//! use soar_serve::protocol::{Request, RequestBody, Response};
//! use soar_multitenant::churn::ChurnEvent;
//!
//! // A churn batch for tenant 7, correlated as request 42.
//! let req = Request {
//!     req_id: 42,
//!     body: RequestBody::Churn {
//!         tenant: 7,
//!         seq: 1,
//!         events: vec![
//!             ChurnEvent::LeafRateChange { leaf: 3, load: 9 },
//!             ChurnEvent::TenantDepart { tenant: 1 },
//!         ],
//!     },
//! };
//! let mut payload = Vec::new();
//! req.encode(&mut payload);
//! let decoded = Request::decode(&payload).unwrap();
//! assert_eq!(decoded.req_id, 42);
//! assert_eq!(decoded, req);
//!
//! // Responses echo the id; a truncated payload is a typed error, not a panic.
//! let mut resp = Vec::new();
//! Response { req_id: 42, body: soar_serve::protocol::ResponseBody::Evicted { tenant: 7 } }
//!     .encode(&mut resp);
//! assert!(Response::decode(&resp[..resp.len() - 1]).is_err());
//! assert_eq!(Response::decode(&resp).unwrap().req_id, 42);
//! ```

use soar_multitenant::churn::ChurnEvent;

/// A malformed message payload. The framing layer already bounded the frame
/// size; these are content violations inside a well-framed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown message or event tag.
    UnknownTag(u8),
    /// A declared element count larger than the payload could possibly hold.
    BadLength(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message payload truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeError::BadLength(n) => write!(f, "declared length {n} exceeds the payload"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Checked big-endian read cursor. Unlike the `bytes` cursor (which panics on
/// underflow and allocates per read), every getter is fallible and
/// allocation-free — this is the server's untrusted-input path.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.buf.len() < N {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(N);
        self.buf = rest;
        Ok(head.try_into().unwrap())
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take()?))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Guards a declared element count: `count * min_bytes_each` must fit in
    /// the remaining payload, so a hostile count can never drive a huge
    /// `Vec::with_capacity`.
    pub(crate) fn check_count(
        &self,
        count: u64,
        min_bytes_each: usize,
    ) -> Result<usize, DecodeError> {
        if count.saturating_mul(min_bytes_each as u64) > self.remaining() as u64 {
            return Err(DecodeError::BadLength(count));
        }
        Ok(count as usize)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let declared = self.u32()?;
        let len = self.check_count(u64::from(declared), 1)?;
        if self.buf.len() < len {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        String::from_utf8(head.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// The payload must be fully consumed — trailing garbage is a framing bug
    /// on the peer's side and is rejected rather than silently ignored.
    fn finish(self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::BadLength(self.buf.len() as u64))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Smallest possible encoded [`ChurnEvent`] (`BudgetChange`: tag + u32), the
/// per-event bound backing `check_count` on churn batches.
pub(crate) const MIN_EVENT_BYTES: usize = 5;

pub(crate) fn encode_event(out: &mut Vec<u8>, event: &ChurnEvent) {
    match event {
        ChurnEvent::LeafRateChange { leaf, load } => {
            out.push(0);
            put_u32(out, *leaf as u32);
            put_u64(out, *load);
        }
        ChurnEvent::TenantArrive { tenant, loads } => {
            out.push(1);
            put_u64(out, *tenant);
            put_u16(out, loads.len() as u16);
            for &(node, load) in loads {
                put_u32(out, node as u32);
                put_u64(out, load);
            }
        }
        ChurnEvent::TenantDepart { tenant } => {
            out.push(2);
            put_u64(out, *tenant);
        }
        ChurnEvent::BudgetChange { budget } => {
            out.push(3);
            put_u32(out, *budget as u32);
        }
        ChurnEvent::SwitchAvailability { switch, available } => {
            out.push(4);
            put_u32(out, *switch as u32);
            out.push(u8::from(*available));
        }
        ChurnEvent::LinkRateChange { switch, rate } => {
            out.push(5);
            put_u32(out, *switch as u32);
            put_f64(out, *rate);
        }
    }
}

pub(crate) fn decode_event(cur: &mut Cursor) -> Result<ChurnEvent, DecodeError> {
    match cur.u8()? {
        0 => Ok(ChurnEvent::LeafRateChange {
            leaf: cur.u32()? as usize,
            load: cur.u64()?,
        }),
        1 => {
            let tenant = cur.u64()?;
            let declared = cur.u16()?;
            let count = cur.check_count(u64::from(declared), 12)?;
            let mut loads = Vec::with_capacity(count);
            for _ in 0..count {
                loads.push((cur.u32()? as usize, cur.u64()?));
            }
            Ok(ChurnEvent::TenantArrive { tenant, loads })
        }
        2 => Ok(ChurnEvent::TenantDepart { tenant: cur.u64()? }),
        3 => Ok(ChurnEvent::BudgetChange {
            budget: cur.u32()? as usize,
        }),
        4 => {
            let switch = cur.u32()? as usize;
            let available = match cur.u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::UnknownTag(t)),
            };
            Ok(ChurnEvent::SwitchAvailability { switch, available })
        }
        5 => Ok(ChurnEvent::LinkRateChange {
            switch: cur.u32()? as usize,
            rate: cur.f64()?,
        }),
        t => Err(DecodeError::UnknownTag(t)),
    }
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Create a resident tenant: a `BT(switches)` tree with seeded
    /// paper-uniform leaf loads wrapped in a
    /// [`DynamicInstance`](soar_online::DynamicInstance). Deterministic — the
    /// same `(switches, budget, seed)` always builds the same instance, which
    /// is what makes server responses replayable offline.
    Register {
        /// The new tenant's id (must not be resident).
        tenant: u64,
        /// `BT(n)` size parameter.
        switches: u32,
        /// The aggregation budget `k`.
        budget: u32,
        /// Leaf-load seed.
        seed: u64,
    },
    /// Drop a resident tenant and free its instance.
    Evict {
        /// The tenant to drop.
        tenant: u64,
    },
    /// Apply a batch of churn events to a tenant's instance.
    Churn {
        /// The target tenant.
        tenant: u64,
        /// Client-assigned batch sequence number, strictly increasing per
        /// tenant from 1. The server remembers each tenant's highest applied
        /// `seq` and answers a batch at or below it with
        /// [`ResponseBody::ChurnApplied`]`{ duplicate: true }` **without
        /// re-applying it** — the idempotent-replay guarantee that lets a
        /// client blindly resend unacknowledged batches after a reconnect.
        /// `seq == 0` opts out of deduplication (an unsequenced batch).
        seq: u64,
        /// The events, applied in order.
        events: Vec<ChurnEvent>,
    },
    /// Re-solve a tenant's instance on a warm workspace.
    Solve {
        /// The target tenant.
        tenant: u64,
    },
    /// Cost-vs-budget sweep over a tenant's current loads (one gather at the
    /// largest budget, traced per budget).
    Sweep {
        /// The target tenant.
        tenant: u64,
        /// The budgets to sweep.
        budgets: Vec<u32>,
    },
    /// Fetch the server's metrics snapshot.
    Metrics,
    /// Ask the server to shut down gracefully (drain, then exit).
    Shutdown,
}

impl RequestBody {
    /// The tenant this request operates on, if any.
    pub fn tenant(&self) -> Option<u64> {
        match self {
            RequestBody::Register { tenant, .. }
            | RequestBody::Evict { tenant }
            | RequestBody::Churn { tenant, .. }
            | RequestBody::Solve { tenant }
            | RequestBody::Sweep { tenant, .. } => Some(*tenant),
            RequestBody::Metrics | RequestBody::Shutdown => None,
        }
    }
}

/// One request frame: a correlation id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub req_id: u64,
    /// The operation.
    pub body: RequestBody,
}

impl Request {
    /// Appends the encoded message to `out` (the frame payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.req_id);
        match &self.body {
            RequestBody::Register {
                tenant,
                switches,
                budget,
                seed,
            } => {
                out.push(1);
                put_u64(out, *tenant);
                put_u32(out, *switches);
                put_u32(out, *budget);
                put_u64(out, *seed);
            }
            RequestBody::Evict { tenant } => {
                out.push(2);
                put_u64(out, *tenant);
            }
            RequestBody::Churn {
                tenant,
                seq,
                events,
            } => {
                out.push(3);
                put_u64(out, *tenant);
                put_u64(out, *seq);
                put_u32(out, events.len() as u32);
                for event in events {
                    encode_event(out, event);
                }
            }
            RequestBody::Solve { tenant } => {
                out.push(4);
                put_u64(out, *tenant);
            }
            RequestBody::Sweep { tenant, budgets } => {
                out.push(5);
                put_u64(out, *tenant);
                put_u16(out, budgets.len() as u16);
                for &k in budgets {
                    put_u32(out, k);
                }
            }
            RequestBody::Metrics => out.push(6),
            RequestBody::Shutdown => out.push(7),
        }
    }

    /// Decodes one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut cur = Cursor::new(payload);
        let req_id = cur.u64()?;
        let body = match cur.u8()? {
            1 => RequestBody::Register {
                tenant: cur.u64()?,
                switches: cur.u32()?,
                budget: cur.u32()?,
                seed: cur.u64()?,
            },
            2 => RequestBody::Evict { tenant: cur.u64()? },
            3 => {
                let tenant = cur.u64()?;
                let seq = cur.u64()?;
                let declared = cur.u32()?;
                let count = cur.check_count(u64::from(declared), MIN_EVENT_BYTES)?;
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    events.push(decode_event(&mut cur)?);
                }
                RequestBody::Churn {
                    tenant,
                    seq,
                    events,
                }
            }
            4 => RequestBody::Solve { tenant: cur.u64()? },
            5 => {
                let tenant = cur.u64()?;
                let declared = cur.u16()?;
                let count = cur.check_count(u64::from(declared), 4)?;
                let mut budgets = Vec::with_capacity(count);
                for _ in 0..count {
                    budgets.push(cur.u32()?);
                }
                RequestBody::Sweep { tenant, budgets }
            }
            6 => RequestBody::Metrics,
            7 => RequestBody::Shutdown,
            t => return Err(DecodeError::UnknownTag(t)),
        };
        cur.finish()?;
        Ok(Request { req_id, body })
    }
}

/// Which admission-control bound shed an [`Overloaded`](ResponseBody::Overloaded)
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedScope {
    /// The global request queue was full.
    GlobalQueue,
    /// The per-tenant in-flight cap was reached.
    TenantInflight,
}

/// Typed request-level failures (transport stays up; the offending request
/// simply failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The named tenant is not resident.
    UnknownTenant,
    /// `Register` for an already-resident tenant, or a churn event re-using an
    /// active intra-instance tenant id.
    DuplicateTenant,
    /// A churn event targeted an invalid switch.
    BadSwitch,
    /// The server's resident-tenant or instance-size limits were exceeded.
    Capacity,
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The server is shutting down and takes no new work.
    ShuttingDown,
    /// The server failed internally (e.g. its write-ahead log could not be
    /// appended); the request had no effect.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnknownTenant => 1,
            ErrorCode::DuplicateTenant => 2,
            ErrorCode::BadSwitch => 3,
            ErrorCode::Capacity => 4,
            ErrorCode::BadRequest => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            1 => ErrorCode::UnknownTenant,
            2 => ErrorCode::DuplicateTenant,
            3 => ErrorCode::BadSwitch,
            4 => ErrorCode::Capacity,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            t => return Err(DecodeError::UnknownTag(t)),
        })
    }
}

/// The solver-facing payload of a [`ResponseBody::Solved`] — the wire form of
/// a `SolveReport`, plus the workspace counters the metrics pipeline tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// The solved tenant.
    pub tenant: u64,
    /// The optimal utilization complexity `X_r(1, i*)`.
    pub cost: f64,
    /// The all-red cost `X_r(1, 0)` of the same tables (the paper's
    /// normalization baseline).
    pub all_red_cost: f64,
    /// Blue switches used by the optimum.
    pub blue_used: u32,
    /// DP cells written by this gather.
    pub cells_written: u64,
    /// Heap allocation events during the solve (0 once the workspace is warm).
    pub alloc_events: u64,
    /// Server-side wall time of the solve itself.
    pub wall_ns: u64,
}

/// What a response carries back.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `Register` succeeded.
    Registered {
        /// The now-resident tenant.
        tenant: u64,
        /// Switch count of the built tree.
        n_switches: u32,
    },
    /// `Evict` succeeded.
    Evicted {
        /// The dropped tenant.
        tenant: u64,
    },
    /// A churn batch was applied (or recognized as an already-applied replay).
    ChurnApplied {
        /// The target tenant.
        tenant: u64,
        /// Events applied (the full batch unless an event failed; `0` for a
        /// deduplicated replay).
        applied: u32,
        /// `true` when the batch's sequence number was at or below the
        /// tenant's high-water mark: the batch had already been applied and
        /// was **not** re-applied. The replaying client counts it as
        /// delivered exactly once.
        duplicate: bool,
    },
    /// A solve completed.
    Solved(SolveOutcome),
    /// A budget sweep completed.
    SweepResult {
        /// The target tenant.
        tenant: u64,
        /// `(budget, optimal cost)` per requested budget.
        costs: Vec<(u32, f64)>,
    },
    /// The metrics snapshot, as the JSON encoding of
    /// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot).
    MetricsReport {
        /// The snapshot JSON.
        json: String,
    },
    /// Graceful-shutdown acknowledgement.
    ShuttingDown,
    /// The request was shed by admission control. Retry later, ideally with
    /// backoff — the server is explicitly refusing to buffer it.
    Overloaded {
        /// Which bound shed it.
        scope: ShedScope,
    },
    /// The request failed.
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One response frame: the echoed correlation id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The `req_id` of the request this answers.
    pub req_id: u64,
    /// The payload.
    pub body: ResponseBody,
}

impl Response {
    /// Appends the encoded message to `out` (the frame payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.req_id);
        match &self.body {
            ResponseBody::Registered { tenant, n_switches } => {
                out.push(1);
                put_u64(out, *tenant);
                put_u32(out, *n_switches);
            }
            ResponseBody::Evicted { tenant } => {
                out.push(2);
                put_u64(out, *tenant);
            }
            ResponseBody::ChurnApplied {
                tenant,
                applied,
                duplicate,
            } => {
                out.push(3);
                put_u64(out, *tenant);
                put_u32(out, *applied);
                out.push(u8::from(*duplicate));
            }
            ResponseBody::Solved(o) => {
                out.push(4);
                put_u64(out, o.tenant);
                put_f64(out, o.cost);
                put_f64(out, o.all_red_cost);
                put_u32(out, o.blue_used);
                put_u64(out, o.cells_written);
                put_u64(out, o.alloc_events);
                put_u64(out, o.wall_ns);
            }
            ResponseBody::SweepResult { tenant, costs } => {
                out.push(5);
                put_u64(out, *tenant);
                put_u16(out, costs.len() as u16);
                for &(k, cost) in costs {
                    put_u32(out, k);
                    put_f64(out, cost);
                }
            }
            ResponseBody::MetricsReport { json } => {
                out.push(6);
                put_string(out, json);
            }
            ResponseBody::ShuttingDown => out.push(7),
            ResponseBody::Overloaded { scope } => {
                out.push(8);
                out.push(match scope {
                    ShedScope::GlobalQueue => 0,
                    ShedScope::TenantInflight => 1,
                });
            }
            ResponseBody::Error { code, message } => {
                out.push(9);
                out.push(code.to_u8());
                put_string(out, message);
            }
        }
    }

    /// Decodes one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut cur = Cursor::new(payload);
        let req_id = cur.u64()?;
        let body = match cur.u8()? {
            1 => ResponseBody::Registered {
                tenant: cur.u64()?,
                n_switches: cur.u32()?,
            },
            2 => ResponseBody::Evicted { tenant: cur.u64()? },
            3 => ResponseBody::ChurnApplied {
                tenant: cur.u64()?,
                applied: cur.u32()?,
                duplicate: match cur.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(DecodeError::UnknownTag(t)),
                },
            },
            4 => ResponseBody::Solved(SolveOutcome {
                tenant: cur.u64()?,
                cost: cur.f64()?,
                all_red_cost: cur.f64()?,
                blue_used: cur.u32()?,
                cells_written: cur.u64()?,
                alloc_events: cur.u64()?,
                wall_ns: cur.u64()?,
            }),
            5 => {
                let tenant = cur.u64()?;
                let declared = cur.u16()?;
                let count = cur.check_count(u64::from(declared), 12)?;
                let mut costs = Vec::with_capacity(count);
                for _ in 0..count {
                    costs.push((cur.u32()?, cur.f64()?));
                }
                ResponseBody::SweepResult { tenant, costs }
            }
            6 => ResponseBody::MetricsReport {
                json: cur.string()?,
            },
            7 => ResponseBody::ShuttingDown,
            8 => ResponseBody::Overloaded {
                scope: match cur.u8()? {
                    0 => ShedScope::GlobalQueue,
                    1 => ShedScope::TenantInflight,
                    t => return Err(DecodeError::UnknownTag(t)),
                },
            },
            9 => ResponseBody::Error {
                code: ErrorCode::from_u8(cur.u8()?)?,
                message: cur.string()?,
            },
            t => return Err(DecodeError::UnknownTag(t)),
        };
        cur.finish()?;
        Ok(Response { req_id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), req);
        // Every strict prefix is Truncated or a length error, never a panic.
        for cut in 0..buf.len() {
            assert!(Request::decode(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        resp.encode(&mut buf);
        assert_eq!(Response::decode(&buf).unwrap(), resp);
        for cut in 0..buf.len() {
            assert!(Response::decode(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn requests_round_trip_and_reject_truncation() {
        round_trip_request(Request {
            req_id: 1,
            body: RequestBody::Register {
                tenant: 9,
                switches: 4096,
                budget: 16,
                seed: 77,
            },
        });
        round_trip_request(Request {
            req_id: u64::MAX,
            body: RequestBody::Churn {
                tenant: 3,
                seq: 17,
                events: vec![
                    ChurnEvent::LeafRateChange { leaf: 12, load: 99 },
                    ChurnEvent::TenantArrive {
                        tenant: 40,
                        loads: vec![(1, 2), (5, 6)],
                    },
                    ChurnEvent::TenantDepart { tenant: 40 },
                    ChurnEvent::BudgetChange { budget: 8 },
                    ChurnEvent::SwitchAvailability {
                        switch: 5,
                        available: false,
                    },
                    ChurnEvent::SwitchAvailability {
                        switch: 5,
                        available: true,
                    },
                    ChurnEvent::LinkRateChange {
                        switch: 2,
                        rate: 0.5,
                    },
                ],
            },
        });
        round_trip_request(Request {
            req_id: 0,
            body: RequestBody::Sweep {
                tenant: 5,
                budgets: vec![1, 2, 4, 8],
            },
        });
        round_trip_request(Request {
            req_id: 2,
            body: RequestBody::Metrics,
        });
        round_trip_request(Request {
            req_id: 3,
            body: RequestBody::Shutdown,
        });
    }

    #[test]
    fn responses_round_trip_and_reject_truncation() {
        round_trip_response(Response {
            req_id: 8,
            body: ResponseBody::Solved(SolveOutcome {
                tenant: 2,
                cost: 123.5,
                all_red_cost: 200.0,
                blue_used: 16,
                cells_written: 1 << 20,
                alloc_events: 0,
                wall_ns: 11_000_000,
            }),
        });
        round_trip_response(Response {
            req_id: 13,
            body: ResponseBody::ChurnApplied {
                tenant: 2,
                applied: 0,
                duplicate: true,
            },
        });
        round_trip_response(Response {
            req_id: 9,
            body: ResponseBody::SweepResult {
                tenant: 2,
                costs: vec![(1, 9.0), (2, 7.5)],
            },
        });
        round_trip_response(Response {
            req_id: 10,
            body: ResponseBody::Error {
                code: ErrorCode::UnknownTenant,
                message: "tenant 2 is not resident".into(),
            },
        });
        round_trip_response(Response {
            req_id: 11,
            body: ResponseBody::Overloaded {
                scope: ShedScope::GlobalQueue,
            },
        });
        round_trip_response(Response {
            req_id: 12,
            body: ResponseBody::MetricsReport {
                json: "{\"requests\":4}".into(),
            },
        });
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // A churn batch declaring 2^32-1 events in a 20-byte payload.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1); // req_id
        buf.push(3); // Churn
        put_u64(&mut buf, 7); // tenant
        put_u64(&mut buf, 1); // seq
        put_u32(&mut buf, u32::MAX); // declared event count
        match Request::decode(&buf) {
            Err(DecodeError::BadLength(n)) => assert_eq!(n, u64::from(u32::MAX)),
            other => panic!("{other:?}"),
        }

        // A SwitchAvailability event with a flag byte that is neither 0 nor 1.
        let mut buf = Vec::new();
        put_u64(&mut buf, 2); // req_id
        buf.push(3); // Churn
        put_u64(&mut buf, 7); // tenant
        put_u64(&mut buf, 2); // seq
        put_u32(&mut buf, 1); // one event
        buf.push(4); // SwitchAvailability
        put_u32(&mut buf, 0); // switch
        buf.push(2); // bad flag
        buf.extend_from_slice(&[0u8; 8]); // padding past check_count
        assert_eq!(Request::decode(&buf), Err(DecodeError::UnknownTag(2)));

        // Trailing garbage after a valid message is rejected.
        let mut buf = Vec::new();
        Request {
            req_id: 4,
            body: RequestBody::Metrics,
        }
        .encode(&mut buf);
        buf.push(0xAB);
        assert!(matches!(
            Request::decode(&buf),
            Err(DecodeError::BadLength(1))
        ));

        // Unknown tags are typed errors.
        let mut buf = Vec::new();
        put_u64(&mut buf, 5);
        buf.push(0xEE);
        assert_eq!(Request::decode(&buf), Err(DecodeError::UnknownTag(0xEE)));
    }
}
