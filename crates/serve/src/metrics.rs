//! Server-side counters and latency histograms, snapshotted on demand.
//!
//! Every counter is a relaxed atomic and both histograms are
//! [`LatencyHistogram`]s, so the request hot path records metrics without
//! locks or allocation. A [`MetricsSnapshot`] is the serde-friendly frozen
//! view that travels in a [`MetricsReport`](crate::protocol::ResponseBody::MetricsReport)
//! response; `soar-loadtest` folds it into the `BENCH_serve.json` artifact
//! that `soar history check` gates.

use serde::{Deserialize, Serialize};
use soar_pool::hist::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live server metrics. One instance per server, shared by every thread.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    pub accepted_conns: AtomicU64,
    /// Well-framed requests read off the wire.
    pub requests: AtomicU64,
    /// Responses written (including sheds and errors).
    pub responses: AtomicU64,
    /// Churn events applied across all tenants.
    pub events_applied: AtomicU64,
    /// Completed solves.
    pub solves: AtomicU64,
    /// Completed sweeps.
    pub sweeps: AtomicU64,
    /// Tenants registered.
    pub registers: AtomicU64,
    /// Tenants evicted.
    pub evictions: AtomicU64,
    /// Requests shed because the global queue was full.
    pub shed_global: AtomicU64,
    /// Requests shed at the per-tenant in-flight cap.
    pub shed_tenant: AtomicU64,
    /// Requests answered with a protocol/semantic error.
    pub errors: AtomicU64,
    /// Response writes that failed (peer gone mid-flight, or a slow reader
    /// blew the per-connection write deadline).
    pub io_errors: AtomicU64,
    /// Churn batches answered `duplicate: true` (idempotent-replay dedupe).
    pub duplicate_churns: AtomicU64,
    /// WAL records appended (registers + evicts + churn batches).
    pub wal_records: AtomicU64,
    /// WAL appends that failed (the request was rejected with `Internal`).
    pub wal_errors: AtomicU64,
    /// Snapshots written (including the one at startup and at shutdown).
    pub snapshots: AtomicU64,
    /// Tenants rebuilt by `--recover` at startup.
    pub recovered_tenants: AtomicU64,
    /// WAL records replayed by `--recover` at startup.
    pub replayed_wal_records: AtomicU64,
    /// `1` when recovery hit a bad record (torn/corrupt tail) and stopped
    /// there; everything before it was kept.
    pub recovery_truncated: AtomicU64,
    /// Wall time `--recover` spent reading the snapshot and replaying the WAL,
    /// in nanoseconds (0 when the daemon started fresh).
    pub recovery_replay_ns: AtomicU64,
    /// DP cells written by solves/sweeps (`SolverWorkspace::last_cells_written`).
    pub cells_written: AtomicU64,
    /// Workspace heap allocation events — stays at the warm-up floor when the
    /// per-thread workspaces actually run allocation-free.
    pub alloc_events: AtomicU64,
    /// Queue-wait + service latency of churn batches, in nanoseconds.
    pub churn_latency: LatencyHistogram,
    /// Queue-wait + service latency of solves/sweeps, in nanoseconds.
    pub solve_latency: LatencyHistogram,
}

/// Bumps a counter by `n` (relaxed; metrics tolerate torn cross-counter reads).
#[inline]
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl ServeMetrics {
    /// Freezes the current values. `queue_depth` and `resident_tenants` are
    /// gauges owned by the server proper and passed in.
    pub fn snapshot(&self, queue_depth: usize, resident_tenants: usize) -> MetricsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted_conns: c(&self.accepted_conns),
            requests: c(&self.requests),
            responses: c(&self.responses),
            events_applied: c(&self.events_applied),
            solves: c(&self.solves),
            sweeps: c(&self.sweeps),
            registers: c(&self.registers),
            evictions: c(&self.evictions),
            shed_global: c(&self.shed_global),
            shed_tenant: c(&self.shed_tenant),
            errors: c(&self.errors),
            io_errors: c(&self.io_errors),
            duplicate_churns: c(&self.duplicate_churns),
            wal_records: c(&self.wal_records),
            wal_errors: c(&self.wal_errors),
            snapshots: c(&self.snapshots),
            recovered_tenants: c(&self.recovered_tenants),
            replayed_wal_records: c(&self.replayed_wal_records),
            recovery_truncated: c(&self.recovery_truncated),
            recovery_replay_ns: c(&self.recovery_replay_ns),
            cells_written: c(&self.cells_written),
            alloc_events: c(&self.alloc_events),
            queue_depth,
            resident_tenants,
            churn_latency: LatencySummary::of(&self.churn_latency),
            solve_latency: LatencySummary::of(&self.solve_latency),
        }
    }
}

/// The frozen, serializable form of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Connections accepted.
    pub accepted_conns: u64,
    /// Requests read.
    pub requests: u64,
    /// Responses written.
    pub responses: u64,
    /// Churn events applied.
    pub events_applied: u64,
    /// Solves completed.
    pub solves: u64,
    /// Sweeps completed.
    pub sweeps: u64,
    /// Tenants registered.
    pub registers: u64,
    /// Tenants evicted.
    pub evictions: u64,
    /// Global-queue sheds.
    pub shed_global: u64,
    /// Per-tenant in-flight sheds.
    pub shed_tenant: u64,
    /// Error responses.
    pub errors: u64,
    /// Failed response writes.
    pub io_errors: u64,
    /// Deduplicated (replayed) churn batches.
    #[serde(default)]
    pub duplicate_churns: u64,
    /// WAL records appended.
    #[serde(default)]
    pub wal_records: u64,
    /// Failed WAL appends.
    #[serde(default)]
    pub wal_errors: u64,
    /// Snapshots written.
    #[serde(default)]
    pub snapshots: u64,
    /// Tenants rebuilt at startup.
    #[serde(default)]
    pub recovered_tenants: u64,
    /// WAL records replayed at startup.
    #[serde(default)]
    pub replayed_wal_records: u64,
    /// Whether recovery stopped at a bad record (0/1).
    #[serde(default)]
    pub recovery_truncated: u64,
    /// Wall time recovery replay took, in nanoseconds.
    #[serde(default)]
    pub recovery_replay_ns: u64,
    /// DP cells written.
    pub cells_written: u64,
    /// Workspace allocation events.
    pub alloc_events: u64,
    /// Global queue depth at snapshot time.
    pub queue_depth: usize,
    /// Resident tenants at snapshot time.
    pub resident_tenants: usize,
    /// Churn-batch latency percentiles.
    pub churn_latency: LatencySummary,
    /// Solve/sweep latency percentiles.
    pub solve_latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Total sheds, both scopes.
    pub fn sheds(&self) -> u64 {
        self.shed_global + self.shed_tenant
    }
}

/// p50/p99/p999 percentiles of one histogram, in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Largest sample, microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a nanosecond histogram into microsecond percentiles.
    pub fn of(hist: &LatencyHistogram) -> Self {
        let (p50, p99, p999) = hist.percentiles();
        LatencySummary {
            count: hist.len(),
            p50_us: p50 as f64 / 1e3,
            p99_us: p99 as f64 / 1e3,
            p999_us: p999 as f64 / 1e3,
            max_us: hist.max() as f64 / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = ServeMetrics::default();
        add(&m.requests, 5);
        add(&m.events_applied, 1000);
        m.churn_latency.record(1_500);
        m.churn_latency.record(2_000_000);
        let snap = m.snapshot(3, 42);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.resident_tenants, 42);
        assert_eq!(snap.churn_latency.count, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
