//! Server-side counters and latency histograms, snapshotted on demand.
//!
//! Every counter is a relaxed atomic and both histograms are
//! [`LatencyHistogram`]s, so the request hot path records metrics without
//! locks or allocation. A [`MetricsSnapshot`] is the serde-friendly frozen
//! view that travels in a [`MetricsReport`](crate::protocol::ResponseBody::MetricsReport)
//! response; `soar-loadtest` folds it into the `BENCH_serve.json` artifact
//! that `soar history check` gates.

use serde::{Deserialize, Serialize};
use soar_obs::prom::PromWriter;
use soar_pool::hist::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live server metrics. One instance per server, shared by every thread.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    pub accepted_conns: AtomicU64,
    /// Well-framed requests read off the wire.
    pub requests: AtomicU64,
    /// Responses written (including sheds and errors).
    pub responses: AtomicU64,
    /// Churn events applied across all tenants.
    pub events_applied: AtomicU64,
    /// Completed solves.
    pub solves: AtomicU64,
    /// Completed sweeps.
    pub sweeps: AtomicU64,
    /// Tenants registered.
    pub registers: AtomicU64,
    /// Tenants evicted.
    pub evictions: AtomicU64,
    /// Requests shed because the global queue was full.
    pub shed_global: AtomicU64,
    /// Requests shed at the per-tenant in-flight cap.
    pub shed_tenant: AtomicU64,
    /// Requests answered with a protocol/semantic error.
    pub errors: AtomicU64,
    /// Response writes that failed (peer gone mid-flight, or a slow reader
    /// blew the per-connection write deadline).
    pub io_errors: AtomicU64,
    /// Churn batches answered `duplicate: true` (idempotent-replay dedupe).
    pub duplicate_churns: AtomicU64,
    /// WAL records appended (registers + evicts + churn batches).
    pub wal_records: AtomicU64,
    /// WAL appends that failed (the request was rejected with `Internal`).
    pub wal_errors: AtomicU64,
    /// Snapshots written (including the one at startup and at shutdown).
    pub snapshots: AtomicU64,
    /// Tenants rebuilt by `--recover` at startup.
    pub recovered_tenants: AtomicU64,
    /// WAL records replayed by `--recover` at startup.
    pub replayed_wal_records: AtomicU64,
    /// `1` when recovery hit a bad record (torn/corrupt tail) and stopped
    /// there; everything before it was kept.
    pub recovery_truncated: AtomicU64,
    /// Wall time `--recover` spent reading the snapshot and replaying the WAL,
    /// in nanoseconds (0 when the daemon started fresh).
    pub recovery_replay_ns: AtomicU64,
    /// DP cells written by solves/sweeps (`SolverWorkspace::last_cells_written`).
    pub cells_written: AtomicU64,
    /// Workspace heap allocation events — stays at the warm-up floor when the
    /// per-thread workspaces actually run allocation-free.
    pub alloc_events: AtomicU64,
    /// Queue-wait + service latency of churn batches, in nanoseconds.
    pub churn_latency: LatencyHistogram,
    /// Queue-wait + service latency of solves/sweeps, in nanoseconds.
    pub solve_latency: LatencyHistogram,
    /// Admission-to-dispatch wait of every queued request, in nanoseconds —
    /// the pure queueing component of the latencies above.
    pub queue_wait: LatencyHistogram,
    /// WAL append + fsync latency per durable record, in nanoseconds.
    pub wal_append: LatencyHistogram,
    /// Dispatcher batch-formation latency (drain + group), in nanoseconds.
    pub batch_form: LatencyHistogram,
}

/// Bumps a counter by `n` (relaxed; metrics tolerate torn cross-counter reads).
#[inline]
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl ServeMetrics {
    /// Freezes the current values. `queue_depth`, `resident_tenants` and the
    /// per-tenant breakdown are owned by the server proper and passed in.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        resident_tenants: usize,
        top_tenants: Vec<TenantBreakdown>,
    ) -> MetricsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted_conns: c(&self.accepted_conns),
            requests: c(&self.requests),
            responses: c(&self.responses),
            events_applied: c(&self.events_applied),
            solves: c(&self.solves),
            sweeps: c(&self.sweeps),
            registers: c(&self.registers),
            evictions: c(&self.evictions),
            shed_global: c(&self.shed_global),
            shed_tenant: c(&self.shed_tenant),
            errors: c(&self.errors),
            io_errors: c(&self.io_errors),
            duplicate_churns: c(&self.duplicate_churns),
            wal_records: c(&self.wal_records),
            wal_errors: c(&self.wal_errors),
            snapshots: c(&self.snapshots),
            recovered_tenants: c(&self.recovered_tenants),
            replayed_wal_records: c(&self.replayed_wal_records),
            recovery_truncated: c(&self.recovery_truncated),
            recovery_replay_ns: c(&self.recovery_replay_ns),
            cells_written: c(&self.cells_written),
            alloc_events: c(&self.alloc_events),
            queue_depth,
            resident_tenants,
            churn_latency: LatencySummary::of(&self.churn_latency),
            solve_latency: LatencySummary::of(&self.solve_latency),
            queue_wait: LatencySummary::of(&self.queue_wait),
            wal_append: LatencySummary::of(&self.wal_append),
            batch_form: LatencySummary::of(&self.batch_form),
            top_tenants,
        }
    }
}

/// The frozen, serializable form of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Connections accepted.
    pub accepted_conns: u64,
    /// Requests read.
    pub requests: u64,
    /// Responses written.
    pub responses: u64,
    /// Churn events applied.
    pub events_applied: u64,
    /// Solves completed.
    pub solves: u64,
    /// Sweeps completed.
    pub sweeps: u64,
    /// Tenants registered.
    pub registers: u64,
    /// Tenants evicted.
    pub evictions: u64,
    /// Global-queue sheds.
    pub shed_global: u64,
    /// Per-tenant in-flight sheds.
    pub shed_tenant: u64,
    /// Error responses.
    pub errors: u64,
    /// Failed response writes.
    pub io_errors: u64,
    /// Deduplicated (replayed) churn batches.
    #[serde(default)]
    pub duplicate_churns: u64,
    /// WAL records appended.
    #[serde(default)]
    pub wal_records: u64,
    /// Failed WAL appends.
    #[serde(default)]
    pub wal_errors: u64,
    /// Snapshots written.
    #[serde(default)]
    pub snapshots: u64,
    /// Tenants rebuilt at startup.
    #[serde(default)]
    pub recovered_tenants: u64,
    /// WAL records replayed at startup.
    #[serde(default)]
    pub replayed_wal_records: u64,
    /// Whether recovery stopped at a bad record (0/1).
    #[serde(default)]
    pub recovery_truncated: u64,
    /// Wall time recovery replay took, in nanoseconds.
    #[serde(default)]
    pub recovery_replay_ns: u64,
    /// DP cells written.
    pub cells_written: u64,
    /// Workspace allocation events.
    pub alloc_events: u64,
    /// Global queue depth at snapshot time.
    pub queue_depth: usize,
    /// Resident tenants at snapshot time.
    pub resident_tenants: usize,
    /// Churn-batch latency percentiles.
    pub churn_latency: LatencySummary,
    /// Solve/sweep latency percentiles.
    pub solve_latency: LatencySummary,
    /// Queue-wait percentiles (admission to dispatch).
    #[serde(default)]
    pub queue_wait: LatencySummary,
    /// WAL append latency percentiles.
    #[serde(default)]
    pub wal_append: LatencySummary,
    /// Dispatcher batch-formation latency percentiles.
    #[serde(default)]
    pub batch_form: LatencySummary,
    /// The heaviest resident tenants by solve time / events at snapshot time.
    #[serde(default)]
    pub top_tenants: Vec<TenantBreakdown>,
}

impl MetricsSnapshot {
    /// Total sheds, both scopes.
    pub fn sheds(&self) -> u64 {
        self.shed_global + self.shed_tenant
    }
}

/// One tenant's usage within a [`MetricsSnapshot::top_tenants`] breakdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantBreakdown {
    /// The tenant id.
    pub tenant: u64,
    /// Churn events applied to this tenant.
    pub events_applied: u64,
    /// Solves + sweeps completed for this tenant.
    pub solves: u64,
    /// Total solver wall time spent on this tenant, in nanoseconds.
    pub solve_ns: u64,
}

/// p50/p99/p999 percentiles of one histogram, in microseconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Largest sample, microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a nanosecond histogram into microsecond percentiles.
    pub fn of(hist: &LatencyHistogram) -> Self {
        let (p50, p99, p999) = hist.percentiles();
        LatencySummary {
            count: hist.len(),
            p50_us: p50 as f64 / 1e3,
            p99_us: p99 as f64 / 1e3,
            p999_us: p999 as f64 / 1e3,
            max_us: hist.max() as f64 / 1e3,
        }
    }
}

/// Renders one daemon's metrics in Prometheus text format (0.0.4).
///
/// Counter and gauge values come from `snap` — the **same frozen snapshot**
/// that answers the binary `Metrics` request, so the two expositions cannot
/// disagree about a counter. The latency summaries are rendered from the live
/// histograms in `m` (same instant, full `_sum`/`_count` resolution).
pub fn render_prom(snap: &MetricsSnapshot, m: &ServeMetrics) -> String {
    let mut w = PromWriter::new();
    let counters: [(&str, &str, u64); 17] = [
        (
            "soar_serve_conns_total",
            "connections accepted",
            snap.accepted_conns,
        ),
        ("soar_serve_requests_total", "requests read", snap.requests),
        (
            "soar_serve_responses_total",
            "responses written",
            snap.responses,
        ),
        (
            "soar_serve_events_applied_total",
            "churn events applied",
            snap.events_applied,
        ),
        ("soar_serve_solves_total", "solves completed", snap.solves),
        ("soar_serve_sweeps_total", "sweeps completed", snap.sweeps),
        (
            "soar_serve_registers_total",
            "tenants registered",
            snap.registers,
        ),
        (
            "soar_serve_evictions_total",
            "tenants evicted",
            snap.evictions,
        ),
        (
            "soar_serve_shed_global_total",
            "requests shed at the global queue",
            snap.shed_global,
        ),
        (
            "soar_serve_shed_tenant_total",
            "requests shed at the tenant in-flight cap",
            snap.shed_tenant,
        ),
        ("soar_serve_errors_total", "error responses", snap.errors),
        (
            "soar_serve_io_errors_total",
            "failed response writes",
            snap.io_errors,
        ),
        (
            "soar_serve_duplicate_churns_total",
            "deduplicated churn batches",
            snap.duplicate_churns,
        ),
        (
            "soar_serve_wal_records_total",
            "WAL records appended",
            snap.wal_records,
        ),
        (
            "soar_serve_wal_errors_total",
            "failed WAL appends",
            snap.wal_errors,
        ),
        (
            "soar_serve_cells_written_total",
            "DP cells written by solves",
            snap.cells_written,
        ),
        (
            "soar_serve_alloc_events_total",
            "workspace allocation events",
            snap.alloc_events,
        ),
    ];
    for (name, help, value) in counters {
        w.counter(name, help, "", value);
    }
    w.gauge(
        "soar_serve_queue_depth",
        "global queue depth",
        "",
        snap.queue_depth as f64,
    );
    w.gauge(
        "soar_serve_resident_tenants",
        "resident tenants",
        "",
        snap.resident_tenants as f64,
    );
    for t in &snap.top_tenants {
        let labels = format!("tenant=\"{}\"", t.tenant);
        w.counter(
            "soar_serve_tenant_events_total",
            "churn events applied, heaviest tenants",
            &labels,
            t.events_applied,
        );
    }
    for t in &snap.top_tenants {
        let labels = format!("tenant=\"{}\"", t.tenant);
        w.counter(
            "soar_serve_tenant_solve_ns_total",
            "solver wall time, heaviest tenants",
            &labels,
            t.solve_ns,
        );
    }
    w.summary(
        "soar_serve_churn_latency_ns",
        "churn batch latency",
        &m.churn_latency,
    );
    w.summary(
        "soar_serve_solve_latency_ns",
        "solve/sweep latency",
        &m.solve_latency,
    );
    w.summary(
        "soar_serve_queue_wait_ns",
        "admission-to-dispatch wait",
        &m.queue_wait,
    );
    w.summary(
        "soar_serve_wal_append_ns",
        "WAL append latency",
        &m.wal_append,
    );
    w.summary(
        "soar_serve_batch_form_ns",
        "dispatcher batch formation",
        &m.batch_form,
    );
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = ServeMetrics::default();
        add(&m.requests, 5);
        add(&m.events_applied, 1000);
        m.churn_latency.record(1_500);
        m.churn_latency.record(2_000_000);
        m.queue_wait.record(900);
        let top = vec![TenantBreakdown {
            tenant: 7,
            events_applied: 1000,
            solves: 2,
            solve_ns: 5_000,
        }];
        let snap = m.snapshot(3, 42, top);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.resident_tenants, 42);
        assert_eq!(snap.churn_latency.count, 2);
        assert_eq!(snap.queue_wait.count, 1);
        assert_eq!(snap.top_tenants[0].tenant, 7);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshots_from_older_servers_still_parse() {
        // The gate artifact stores snapshots without the stage/tenant fields;
        // they must deserialize with defaults (the `#[serde(default)]` pact).
        let m = ServeMetrics::default();
        let snap = m.snapshot(0, 0, Vec::new());
        let mut json = serde_json::to_string(&snap).unwrap();
        for field in [
            "\"queue_wait\"",
            "\"wal_append\"",
            "\"batch_form\"",
            "\"top_tenants\"",
        ] {
            let start = json.find(field).unwrap();
            // Strip `,"field":{...}` / `,"field":[...]` by scanning to the
            // matching close at depth 0.
            let mut depth = 0i32;
            let mut end = start;
            for (i, c) in json[start..].char_indices() {
                match c {
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        depth -= 1;
                        if depth == 0 {
                            end = start + i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            json.replace_range(start - 1..end, ""); // the leading comma too
        }
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queue_wait, LatencySummary::default());
        assert!(back.top_tenants.is_empty());
    }

    #[test]
    fn prom_render_matches_the_snapshot_counters() {
        let m = ServeMetrics::default();
        add(&m.solves, 9);
        add(&m.events_applied, 123);
        m.solve_latency.record(50_000);
        let snap = m.snapshot(
            2,
            1,
            vec![TenantBreakdown {
                tenant: 3,
                events_applied: 123,
                solves: 9,
                solve_ns: 777,
            }],
        );
        let text = render_prom(&snap, &m);
        assert!(text.contains("soar_serve_solves_total 9\n"));
        assert!(text.contains("soar_serve_events_applied_total 123\n"));
        assert!(text.contains("soar_serve_queue_depth 2\n"));
        assert!(text.contains("soar_serve_tenant_events_total{tenant=\"3\"} 123\n"));
        assert!(text.contains("# TYPE soar_serve_solve_latency_ns summary"));
        assert!(text.contains("soar_serve_solve_latency_ns_count 1\n"));
        // Exactly one header per family.
        assert_eq!(text.matches("# TYPE soar_serve_solves_total").count(), 1);
    }
}
