//! The immutable congestion-constrained fabric problem.

use soar_reduce::{cost, Coloring};
use soar_topology::{Tree, ROOT};

use crate::FabricError;

/// A congestion-constrained placement problem on a multi-root fabric.
///
/// The fabric is a forest of vertex-disjoint per-core aggregation trees
/// `T_0, ..., T_{m-1}` (multipath routing resolved into its deterministic
/// tree decomposition). A placement is one blue set `U_t` per tree, and the
/// objective extends SOAR's utilization complexity with a **per-link
/// congestion term** on the core up-links:
///
/// ```text
/// Φ(U) = Σ_t φ(T_t, U_t)  +  γ · Σ_t util(core_t, U_t)
/// ```
///
/// where `util(core_t, U_t) = msg(root_t) · ρ(root_t)` is the utilization of
/// core `t`'s up-link towards the destination — the most contended link of
/// the decomposed fabric. Because message counts do not depend on link rates,
/// the term folds into φ *exactly* by reweighting only the core up-link:
/// with `ω'(root_t) = ω(root_t) / (1 + γ)` (i.e. `ρ' = (1 + γ) ρ`),
///
/// ```text
/// φ(T'_t, U_t) = φ(T_t, U_t) + γ · util(core_t, U_t)
/// ```
///
/// so any exact tree solver run on the reweighted trees optimizes Φ. The
/// [`Self::weighted_trees`] accessor exposes that reweighting; solvers and the
/// brute-force oracle both work on it, keeping them comparable bit for bit.
///
/// Two constraints bound a feasible placement:
///
/// * the fabric-wide **budget** `Σ_t |U_t| ≤ k`, as in SOAR;
/// * the **congestion bound** `|U_t| ≤ c` per core tree — the tractable
///   instantiation of the sequel paper's per-core processing-capacity
///   constraint (each core's region can host only so much in-network
///   computation before its switches saturate).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricInstance {
    label: String,
    trees: Vec<Tree>,
    weighted: Vec<Tree>,
    budget: usize,
    congestion_bound: usize,
    congestion_weight: f64,
}

impl FabricInstance {
    /// Builds a fabric problem from explicit per-core trees.
    ///
    /// Validates the constraint parameters; the trees themselves are already
    /// validated by construction ([`soar_topology::Tree`] invariants).
    pub fn new(
        label: impl Into<String>,
        trees: Vec<Tree>,
        budget: usize,
        congestion_bound: usize,
        congestion_weight: f64,
    ) -> Result<Self, FabricError> {
        if trees.is_empty() {
            return Err(FabricError::Degenerate(
                "a fabric needs at least one core tree".to_owned(),
            ));
        }
        if congestion_bound == 0 {
            return Err(FabricError::ZeroCongestionBound);
        }
        if !(congestion_weight.is_finite() && congestion_weight >= 0.0) {
            return Err(FabricError::InvalidCongestionWeight(congestion_weight));
        }
        let weighted = trees
            .iter()
            .map(|tree| {
                let mut w = tree.clone();
                w.set_rate(ROOT, tree.rate(ROOT) / (1.0 + congestion_weight));
                w
            })
            .collect();
        Ok(FabricInstance {
            label: label.into(),
            trees,
            weighted,
            budget,
            congestion_bound,
            congestion_weight,
        })
    }

    /// Human-readable label of the fabric (topology dimensions).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The per-core aggregation trees, with their real link rates.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// The congestion-reweighted trees (`ρ'(root) = (1 + γ) ρ(root)`, all
    /// other links untouched): φ on these equals the fabric objective term.
    pub fn weighted_trees(&self) -> &[Tree] {
        &self.weighted
    }

    /// Number of per-core trees `m`.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total number of switches across the fabric.
    pub fn n_switches(&self) -> usize {
        self.trees.iter().map(Tree::n_switches).sum()
    }

    /// The fabric-wide aggregation budget `k`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The per-core-tree cap `c` on blue switches.
    pub fn congestion_bound(&self) -> usize {
        self.congestion_bound
    }

    /// The congestion weight γ.
    pub fn congestion_weight(&self) -> f64 {
        self.congestion_weight
    }

    /// Utilization `msg · ρ` of core `t`'s up-link under `coloring` — the
    /// congestion term contributed by tree `t`, measured on the *real* rates.
    pub fn core_utilization(&self, t: usize, coloring: &Coloring) -> f64 {
        cost::link_utilization(&self.trees[t], coloring)[ROOT]
    }

    /// The full objective `Φ(U) = Σ_t φ(T'_t, U_t)` of a fabric placement
    /// (one coloring per tree, aligned with [`Self::trees`]).
    pub fn objective(&self, colorings: &[Coloring]) -> f64 {
        assert_eq!(colorings.len(), self.trees.len(), "one coloring per tree");
        self.weighted
            .iter()
            .zip(colorings)
            .map(|(tree, coloring)| cost::phi(tree, coloring))
            .sum()
    }

    /// The all-red baseline of the objective (no in-network aggregation
    /// anywhere), used to normalize fabric costs the way `SolveReport` does.
    pub fn baseline(&self) -> f64 {
        self.weighted
            .iter()
            .map(|tree| cost::phi(tree, &Coloring::all_red(tree.n_switches())))
            .sum()
    }

    /// Whether a placement respects the budget, the congestion bound, and
    /// per-tree availability.
    pub fn is_feasible(&self, colorings: &[Coloring]) -> bool {
        colorings.len() == self.trees.len()
            && colorings.iter().map(Coloring::n_blue).sum::<usize>() <= self.budget
            && colorings.iter().zip(&self.trees).all(|(coloring, tree)| {
                coloring.n_blue() <= self.congestion_bound
                    && coloring.validate(tree, self.congestion_bound).is_ok()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    fn two_tree_fabric(gamma: f64) -> FabricInstance {
        let mut t0 = builders::two_tier_fat_tree(2, 2);
        let mut t1 = builders::two_tier_fat_tree(2, 2);
        for v in t0.leaves().collect::<Vec<_>>() {
            t0.set_load(v, 3);
        }
        for v in t1.leaves().collect::<Vec<_>>() {
            t1.set_load(v, 5);
        }
        FabricInstance::new("test", vec![t0, t1], 3, 2, gamma).unwrap()
    }

    #[test]
    fn reweighting_is_exact() {
        // φ(T', U) must equal φ(T, U) + γ·util(core, U) for every coloring.
        let fabric = two_tree_fabric(0.75);
        for t in 0..fabric.n_trees() {
            let tree = &fabric.trees()[t];
            let weighted = &fabric.weighted_trees()[t];
            let n = tree.n_switches();
            let colorings = [
                Coloring::all_red(n),
                Coloring::from_blue_nodes(n, [0usize]).unwrap(),
                Coloring::from_blue_nodes(n, [1usize, 2]).unwrap(),
            ];
            for coloring in &colorings {
                let direct = cost::phi(weighted, coloring);
                let composed =
                    cost::phi(tree, coloring) + 0.75 * fabric.core_utilization(t, coloring);
                assert!(
                    (direct - composed).abs() < 1e-9,
                    "tree {t}: {direct} vs {composed}"
                );
            }
        }
    }

    #[test]
    fn zero_gamma_leaves_trees_untouched() {
        let fabric = two_tree_fabric(0.0);
        assert_eq!(fabric.trees(), fabric.weighted_trees());
    }

    #[test]
    fn feasibility_checks_budget_and_bound() {
        let fabric = two_tree_fabric(0.5);
        let n = fabric.trees()[0].n_switches();
        let all_red = vec![Coloring::all_red(n), Coloring::all_red(n)];
        assert!(fabric.is_feasible(&all_red));
        // Per-tree bound violated: 3 blues in one tree with c = 2.
        let over_bound = vec![
            Coloring::from_blue_nodes(n, [0usize, 1, 2]).unwrap(),
            Coloring::all_red(n),
        ];
        assert!(!fabric.is_feasible(&over_bound));
        // Budget violated: 2 + 2 = 4 > k = 3.
        let over_budget = vec![
            Coloring::from_blue_nodes(n, [0usize, 1]).unwrap(),
            Coloring::from_blue_nodes(n, [0usize, 1]).unwrap(),
        ];
        assert!(!fabric.is_feasible(&over_budget));
    }

    #[test]
    fn baseline_sums_all_red_costs() {
        let fabric = two_tree_fabric(0.5);
        let n = fabric.trees()[0].n_switches();
        let all_red = vec![Coloring::all_red(n), Coloring::all_red(n)];
        assert!((fabric.baseline() - fabric.objective(&all_red)).abs() < 1e-12);
        assert!(fabric.baseline() > 0.0);
    }

    #[test]
    fn constructor_rejects_bad_parameters() {
        let tree = builders::star(3);
        assert!(matches!(
            FabricInstance::new("x", vec![], 1, 1, 0.0),
            Err(FabricError::Degenerate(_))
        ));
        assert_eq!(
            FabricInstance::new("x", vec![tree.clone()], 1, 0, 0.0).unwrap_err(),
            FabricError::ZeroCongestionBound
        );
        assert!(matches!(
            FabricInstance::new("x", vec![tree], 1, 1, f64::NAN),
            Err(FabricError::InvalidCongestionWeight(_))
        ));
    }
}
