//! Declarative description of a congestion-constrained fabric scenario.
//!
//! [`FabricSpec`] is to [`FabricInstance`] what `soar_core::api::Instance`'s
//! builder inputs are to the instance itself: a small, serde-round-trippable
//! document that materializes deterministically (same spec + same seed → the
//! same fabric, bit for bit). The experiment pipeline embeds it verbatim in
//! `ExperimentSpec` kinds, so every validation here maps to an actionable
//! exit-2 message at the CLI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use soar_topology::builders;
use soar_topology::load::LoadSpec;
use soar_topology::rates::RateScheme;
use soar_topology::Tree;
use std::fmt;

use crate::FabricInstance;

/// Why a fabric description was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A fabric dimension that must be at least one was zero.
    Degenerate(String),
    /// The congestion bound must admit at least one blue switch per core tree.
    ZeroCongestionBound,
    /// The congestion weight γ must be finite and non-negative.
    InvalidCongestionWeight(f64),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Degenerate(what) => write!(f, "degenerate fabric: {what}"),
            FabricError::ZeroCongestionBound => write!(
                f,
                "the congestion bound must be at least 1 (it caps the blue switches \
                 per core tree; 0 would forbid aggregation everywhere — use budget 0 \
                 to model that)"
            ),
            FabricError::InvalidCongestionWeight(gamma) => write!(
                f,
                "the congestion weight must be a finite, non-negative γ, got {gamma}"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// The fabric topology families a [`FabricSpec`] can instantiate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricTopology {
    /// `roots` vertex-disjoint complete binary trees of `switches_per_tree`
    /// switches each — the generic multi-root forest (every core serves an
    /// identical-shape region).
    MultiRootForest {
        /// Number of core (root) switches, i.e. trees in the forest.
        roots: usize,
        /// Switches per tree (heap-shaped complete binary tree).
        switches_per_tree: usize,
    },
    /// The multi-core k-ary fat-tree of
    /// [`soar_topology::builders::multi_core_fat_tree`]: pod `p` routes
    /// through core `p % cores`.
    MultiCoreFatTree {
        /// Number of core switches.
        cores: usize,
        /// Number of pods, assigned to cores round-robin.
        pods: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// ToR switches per aggregation switch (the load-carrying leaves).
        tors_per_agg: usize,
    },
}

impl FabricTopology {
    /// A short human-readable label, used for instance labels and chart titles.
    pub fn label(&self) -> String {
        match self {
            FabricTopology::MultiRootForest {
                roots,
                switches_per_tree,
            } => format!("forest({roots}xBT{switches_per_tree})"),
            FabricTopology::MultiCoreFatTree {
                cores,
                pods,
                aggs_per_pod,
                tors_per_agg,
            } => format!("fat-tree(c{cores},p{pods},a{aggs_per_pod},t{tors_per_agg})"),
        }
    }

    /// Rejects dimensions the builders would panic on, with actionable messages.
    pub fn check(&self) -> Result<(), FabricError> {
        let degenerate = |what: &str| Err(FabricError::Degenerate(what.to_owned()));
        match *self {
            FabricTopology::MultiRootForest {
                roots,
                switches_per_tree,
            } => {
                if roots == 0 {
                    return degenerate("a multi-root forest needs at least one root (core) switch");
                }
                if switches_per_tree == 0 {
                    return degenerate("every tree of the forest needs at least its root switch");
                }
            }
            FabricTopology::MultiCoreFatTree {
                cores,
                pods,
                aggs_per_pod,
                tors_per_agg,
            } => {
                if cores == 0 {
                    return degenerate("a fat-tree fabric needs at least one core switch");
                }
                if pods == 0 {
                    return degenerate("a fat-tree fabric needs at least one pod");
                }
                if aggs_per_pod == 0 {
                    return degenerate("every pod needs at least one aggregation switch");
                }
                if tors_per_agg == 0 {
                    return degenerate(
                        "every aggregation switch needs at least one ToR below it \
                         (the ToRs carry the load)",
                    );
                }
            }
        }
        Ok(())
    }

    /// Total number of switches across the whole fabric.
    pub fn n_switches(&self) -> usize {
        match *self {
            FabricTopology::MultiRootForest {
                roots,
                switches_per_tree,
            } => roots * switches_per_tree,
            FabricTopology::MultiCoreFatTree {
                cores,
                pods,
                aggs_per_pod,
                tors_per_agg,
            } => cores + pods * aggs_per_pod * (1 + tors_per_agg),
        }
    }

    /// Materializes the per-core trees (unit rates, zero load).
    fn build_trees(&self) -> Vec<Tree> {
        match *self {
            FabricTopology::MultiRootForest {
                roots,
                switches_per_tree,
            } => (0..roots)
                .map(|_| builders::complete_binary_tree(switches_per_tree))
                .collect(),
            FabricTopology::MultiCoreFatTree {
                cores,
                pods,
                aggs_per_pod,
                tors_per_agg,
            } => builders::multi_core_fat_tree(cores, pods, aggs_per_pod, tors_per_agg),
        }
    }
}

/// A whole congestion-constrained placement scenario, declaratively.
///
/// `budget` is the fabric-wide cap `k` on blue (aggregation) switches,
/// `congestion_bound` the per-core-tree cap `c ≥ 1`, and `congestion_weight`
/// the γ ≥ 0 weighting of the per-link congestion term in the objective (see
/// [`FabricInstance`]). Loads are drawn per tree from `seed + tree_index`, so
/// the materialization is deterministic and every core's draw is independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// The fabric topology family and its dimensions.
    pub topology: FabricTopology,
    /// Load distribution applied to the leaves of every core tree.
    pub load: LoadSpec,
    /// Link-rate scheme applied to every core tree.
    pub rates: RateScheme,
    /// Base seed of the per-tree load draws.
    pub seed: u64,
    /// Fabric-wide aggregation budget `k`.
    pub budget: usize,
    /// Per-core-tree cap `c` on blue switches (must be ≥ 1).
    pub congestion_bound: usize,
    /// Weight γ of the congestion term in the objective (must be ≥ 0, finite).
    pub congestion_weight: f64,
}

impl FabricSpec {
    /// Materializes the spec into an immutable [`FabricInstance`].
    pub fn build(&self) -> Result<FabricInstance, FabricError> {
        self.topology.check()?;
        let mut trees = self.topology.build_trees();
        for (t, tree) in trees.iter_mut().enumerate() {
            tree.apply_rates(&self.rates);
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(t as u64));
            tree.apply_leaf_loads(&self.load, &mut rng);
        }
        FabricInstance::new(
            self.topology.label(),
            trees,
            self.budget,
            self.congestion_bound,
            self.congestion_weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FabricSpec {
        FabricSpec {
            topology: FabricTopology::MultiCoreFatTree {
                cores: 2,
                pods: 4,
                aggs_per_pod: 2,
                tors_per_agg: 3,
            },
            load: LoadSpec::uniform(4, 6),
            rates: RateScheme::Constant(1.0),
            seed: 11,
            budget: 4,
            congestion_bound: 2,
            congestion_weight: 0.5,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = spec().build().unwrap();
        let b = spec().build().unwrap();
        assert_eq!(a.trees(), b.trees());
        assert_eq!(a.weighted_trees(), b.weighted_trees());
    }

    #[test]
    fn fat_tree_dimensions() {
        let fabric = spec().build().unwrap();
        assert_eq!(fabric.n_trees(), 2);
        assert_eq!(fabric.n_switches(), spec().topology.n_switches());
        assert_eq!(fabric.n_switches(), 2 + 4 * 2 * 4);
        // Only ToR leaves carry load.
        for tree in fabric.trees() {
            for v in tree.node_ids() {
                if !tree.is_leaf(v) {
                    assert_eq!(tree.load(v), 0);
                }
            }
            assert!(tree.total_load() >= 4 * tree.leaves().count() as u64);
        }
    }

    #[test]
    fn forest_topology_builds_identical_shapes() {
        let fabric = FabricSpec {
            topology: FabricTopology::MultiRootForest {
                roots: 3,
                switches_per_tree: 7,
            },
            ..spec()
        }
        .build()
        .unwrap();
        assert_eq!(fabric.n_trees(), 3);
        for tree in fabric.trees() {
            assert_eq!(tree.n_switches(), 7);
        }
        // Per-tree seeds differ, so the load draws are independent.
        let loads: Vec<Vec<u64>> = fabric.trees().iter().map(|t| t.loads()).collect();
        assert!(loads[0] != loads[1] || loads[1] != loads[2]);
    }

    #[test]
    fn degenerate_dimensions_are_rejected() {
        let reject = |topology: FabricTopology| {
            let err = FabricSpec { topology, ..spec() }.build().unwrap_err();
            assert!(matches!(err, FabricError::Degenerate(_)), "{err}");
        };
        reject(FabricTopology::MultiRootForest {
            roots: 0,
            switches_per_tree: 7,
        });
        reject(FabricTopology::MultiRootForest {
            roots: 2,
            switches_per_tree: 0,
        });
        reject(FabricTopology::MultiCoreFatTree {
            cores: 0,
            pods: 2,
            aggs_per_pod: 1,
            tors_per_agg: 1,
        });
        reject(FabricTopology::MultiCoreFatTree {
            cores: 2,
            pods: 0,
            aggs_per_pod: 1,
            tors_per_agg: 1,
        });
        reject(FabricTopology::MultiCoreFatTree {
            cores: 2,
            pods: 2,
            aggs_per_pod: 0,
            tors_per_agg: 1,
        });
        reject(FabricTopology::MultiCoreFatTree {
            cores: 2,
            pods: 2,
            aggs_per_pod: 1,
            tors_per_agg: 0,
        });
    }

    #[test]
    fn invalid_constraints_are_rejected() {
        let err = FabricSpec {
            congestion_bound: 0,
            ..spec()
        }
        .build()
        .unwrap_err();
        assert_eq!(err, FabricError::ZeroCongestionBound);
        for gamma in [-0.5, f64::NAN, f64::INFINITY] {
            let err = FabricSpec {
                congestion_weight: gamma,
                ..spec()
            }
            .build()
            .unwrap_err();
            assert!(
                matches!(err, FabricError::InvalidCongestionWeight(_)),
                "{err}"
            );
        }
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(FabricError::ZeroCongestionBound
            .to_string()
            .contains("at least 1"));
        assert!(FabricError::InvalidCongestionWeight(-1.0)
            .to_string()
            .contains("-1"));
        assert!(FabricError::Degenerate("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn spec_serde_round_trip() {
        for topology in [
            FabricTopology::MultiRootForest {
                roots: 2,
                switches_per_tree: 15,
            },
            FabricTopology::MultiCoreFatTree {
                cores: 3,
                pods: 6,
                aggs_per_pod: 2,
                tors_per_agg: 4,
            },
        ] {
            let original = FabricSpec { topology, ..spec() };
            let json = serde_json::to_string(&original).unwrap();
            let back: FabricSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(original, back);
        }
    }

    #[test]
    fn labels_name_the_dimensions() {
        assert_eq!(
            FabricTopology::MultiRootForest {
                roots: 4,
                switches_per_tree: 31
            }
            .label(),
            "forest(4xBT31)"
        );
        assert_eq!(spec().topology.label(), "fat-tree(c2,p4,a2,t3)");
    }
}
