//! The exact decompose-and-compose fabric solver.

use serde::{Deserialize, Serialize};
use soar_core::workspace::with_thread_workspace;
use soar_core::{solutions_for_all_budgets, Solution};
use soar_reduce::{cost, Coloring};

use crate::FabricInstance;

/// The outcome of solving a congestion-constrained fabric instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSolution {
    /// One coloring per core tree, aligned with [`FabricInstance::trees`].
    pub colorings: Vec<Coloring>,
    /// The per-tree budget share `j_t` the composition granted each tree.
    pub per_tree_budget: Vec<usize>,
    /// φ(T'_t, U_t) on the congestion-reweighted tree, per tree.
    pub per_tree_cost: Vec<f64>,
    /// Blue switches actually used per tree (`|U_t| ≤ j_t ≤ c`).
    pub per_tree_blue: Vec<usize>,
    /// The optimized objective `Φ(U) = Σ_t φ(T_t, U_t) + γ · congestion`.
    pub cost: f64,
    /// The summed core up-link utilization `Σ_t util(core_t, U_t)` (real rates).
    pub congestion: f64,
    /// The most-utilized core up-link `max_t util(core_t, U_t)` (real rates).
    pub max_core_utilization: f64,
    /// Total blue switches used across the fabric (`≤ budget`).
    pub blue_used: usize,
    /// The fabric-wide budget `k` the instance was solved for.
    pub budget: usize,
    /// The per-core-tree cap `c` the instance was solved for.
    pub congestion_bound: usize,
    /// `cost` normalized to the all-red baseline (zero baseline → 1.0).
    pub normalized_cost: f64,
}

impl FabricSolution {
    /// Assembles the solution record from chosen per-tree colorings,
    /// evaluating every reported metric from scratch (so solver and oracle
    /// report through one code path and stay comparable bit for bit).
    pub(crate) fn from_colorings(
        fabric: &FabricInstance,
        colorings: Vec<Coloring>,
        per_tree_budget: Vec<usize>,
    ) -> Self {
        let per_tree_cost: Vec<f64> = fabric
            .weighted_trees()
            .iter()
            .zip(&colorings)
            .map(|(tree, coloring)| cost::phi(tree, coloring))
            .collect();
        let per_tree_blue: Vec<usize> = colorings.iter().map(Coloring::n_blue).collect();
        let utilizations: Vec<f64> = colorings
            .iter()
            .enumerate()
            .map(|(t, coloring)| fabric.core_utilization(t, coloring))
            .collect();
        let cost: f64 = per_tree_cost.iter().sum();
        let baseline = fabric.baseline();
        FabricSolution {
            congestion: utilizations.iter().sum(),
            max_core_utilization: utilizations.iter().cloned().fold(0.0, f64::max),
            blue_used: per_tree_blue.iter().sum(),
            normalized_cost: if baseline == 0.0 {
                1.0
            } else {
                cost / baseline
            },
            budget: fabric.budget(),
            congestion_bound: fabric.congestion_bound(),
            colorings,
            per_tree_budget,
            per_tree_cost,
            per_tree_blue,
            cost,
        }
    }

    /// Whether the recorded placement respects its own budget and bound.
    pub fn is_feasible(&self) -> bool {
        self.blue_used <= self.budget
            && self
                .per_tree_blue
                .iter()
                .all(|&blue| blue <= self.congestion_bound)
    }
}

/// A solver for congestion-constrained fabric instances.
pub trait FabricSolver {
    /// Registry name of the solver (see [`crate::solvers`]).
    fn name(&self) -> &'static str;
    /// Solves the instance, returning a feasible placement.
    fn solve(&self, fabric: &FabricInstance) -> FabricSolution;
}

/// The exact fabric solver: per-tree arena DP + knapsack composition.
///
/// 1. **Decompose** — the fabric is already a forest of vertex-disjoint
///    per-core trees; the congestion term is folded into each tree's root
///    rate (see [`FabricInstance::weighted_trees`]), so per-tree φ-optimality
///    is fabric-objective optimality.
/// 2. **Per-tree sweep** — for every tree, one warm arena-DP gather
///    ([`soar_core::SolverWorkspace`]) at budget `min(k, c)` yields the whole
///    optimal cost curve `curve_t[j]` for `j = 0 ..= min(k, c)` blue
///    switches, fanned across trees on `soar-pool`.
/// 3. **Compose** — an exact knapsack over the per-tree curves picks budget
///    shares `j_t` minimizing `Σ_t curve_t[j_t]` subject to `Σ_t j_t ≤ k`
///    and `j_t ≤ c`. Ties prefer smaller `j_t` (first-improvement over `j`
///    in ascending order), which keeps the placement deterministic.
///
/// Because the trees are disjoint, the per-tree DP is exact (SOAR Theorem
/// 4.1) and the knapsack is exact over the curves, the composition is an
/// exact optimum of the fabric objective — the property tests certify this
/// against [`crate::FabricBruteForce`] on random small fabrics.
pub struct DecomposeSolver;

impl FabricSolver for DecomposeSolver {
    fn name(&self) -> &'static str {
        "fabric-soar"
    }

    fn solve(&self, fabric: &FabricInstance) -> FabricSolution {
        let trees = fabric.weighted_trees();
        let cap = fabric.budget().min(fabric.congestion_bound());
        let jmax: Vec<usize> = trees.iter().map(|t| cap.min(t.n_switches())).collect();

        // One warm-workspace DP per tree, fanned out on the global pool. The
        // result order is the submission order, so the composition below is
        // deterministic regardless of worker scheduling.
        let indices: Vec<usize> = (0..trees.len()).collect();
        let curves: Vec<Vec<Solution>> = soar_pool::global().map(&indices, |&t| {
            let _dp = soar_obs::span!("fabric_tree_dp", t as u64);
            with_thread_workspace(|ws| {
                ws.gather_auto(&trees[t], jmax[t]);
                solutions_for_all_budgets(&trees[t], ws.tables())
            })
        });

        // Exact knapsack over the per-tree curves: dp[b] is the best total
        // cost of the trees processed so far using at most b budget.
        let _knapsack = soar_obs::span!("fabric_knapsack", curves.len() as u64);
        let kmax: usize = fabric.budget().min(jmax.iter().sum());
        let mut dp = vec![0.0f64; kmax + 1];
        let mut choice = vec![vec![0usize; kmax + 1]; curves.len()];
        for (t, curve) in curves.iter().enumerate() {
            let mut next = vec![f64::INFINITY; kmax + 1];
            for b in 0..=kmax {
                for j in 0..=jmax[t].min(b) {
                    let value = dp[b - j] + curve[j].cost;
                    // Strict improvement with j ascending: ties keep the
                    // smallest j_t, making the backtrack deterministic.
                    if value < next[b] {
                        next[b] = value;
                        choice[t][b] = j;
                    }
                }
            }
            dp = next;
        }

        let mut remaining = kmax;
        let mut selected = vec![0usize; curves.len()];
        for t in (0..curves.len()).rev() {
            selected[t] = choice[t][remaining];
            remaining -= selected[t];
        }

        let colorings: Vec<Coloring> = selected
            .iter()
            .enumerate()
            .map(|(t, &j)| curves[t][j].coloring.clone())
            .collect();
        FabricSolution::from_colorings(fabric, colorings, selected)
    }
}
