//! # soar-fabric
//!
//! Congestion-constrained in-network computing on **multi-root datacenter
//! fabrics** — the sequel scenario space of *Constrained In-network Computing
//! with Low Congestion in Datacenter Networks* (Segal, Avin, Scalosub, 2022)
//! implemented on the SOAR reproduction's substrate.
//!
//! The original SOAR problem places at most `k` aggregation points on **one**
//! rooted tree. A datacenter fabric has several core switches: multipath
//! routing sends each pod's reduce traffic through a deterministic core, so
//! the fabric decomposes into vertex-disjoint per-core aggregation trees (see
//! [`soar_topology::builders::multi_core_fat_tree`]). This crate models that
//! decomposition as a first-class problem kind:
//!
//! * [`FabricSpec`] / [`FabricTopology`] — a declarative, serde-round-trippable
//!   description of a fabric scenario (multi-root forests and multi-core
//!   k-ary fat-trees, loads, link rates, budget `k`, congestion bound `c`,
//!   congestion weight `γ`), materialized into a [`FabricInstance`].
//! * [`FabricInstance`] — the immutable problem: the per-core trees plus the
//!   congestion-extended objective
//!   `Φ(U) = Σ_t φ(T_t, U_t) + γ · Σ_t util(core_t, U_t)`, where
//!   `util(core_t, U_t)` is the utilization `msg · ρ` of core `t`'s up-link —
//!   the per-link congestion term of the sequel paper. The congestion
//!   **bound** `c` caps the blue switches placed in any single core's tree
//!   (the tractable per-core capacity constraint; see [`FabricInstance`]).
//! * [`DecomposeSolver`] — the exact solver: it folds the congestion term
//!   into each tree by reweighting the core up-link (`ω' = ω / (1 + γ)`, so
//!   `φ(T'_t, U_t) = φ(T_t, U_t) + γ · util_t` **exactly**), runs the warm
//!   arena DP ([`soar_core::SolverWorkspace`]) per tree fanned out on
//!   `soar-pool`, and composes the per-tree budget curves with an exact
//!   knapsack subject to `Σ_t j_t ≤ k`, `j_t ≤ c`.
//! * [`FabricBruteForce`] — an exhaustive oracle over all fabric-wide
//!   placements at small sizes, used by the property tests to certify the
//!   decomposition + knapsack + reweighting pipeline end to end.
//! * [`solvers`] — a `by_name` registry mirroring `soar_core::api::solvers`.
//!
//! ## Example
//!
//! ```
//! use soar_fabric::{DecomposeSolver, FabricSolver, FabricSpec, FabricTopology};
//! use soar_topology::load::LoadSpec;
//! use soar_topology::rates::RateScheme;
//!
//! // A 2-core fat-tree fabric: 4 pods of 2 aggregation switches with 2 ToRs
//! // each, uniform leaf load, budget k = 4, at most c = 2 blue switches per
//! // core tree, congestion weight γ = 0.5.
//! let spec = FabricSpec {
//!     topology: FabricTopology::MultiCoreFatTree {
//!         cores: 2,
//!         pods: 4,
//!         aggs_per_pod: 2,
//!         tors_per_agg: 2,
//!     },
//!     load: LoadSpec::uniform(4, 6),
//!     rates: RateScheme::Constant(1.0),
//!     seed: 7,
//!     budget: 4,
//!     congestion_bound: 2,
//!     congestion_weight: 0.5,
//! };
//! let fabric = spec.build().unwrap();
//! assert_eq!(fabric.n_trees(), 2);
//!
//! let solution = DecomposeSolver.solve(&fabric);
//! assert!(solution.is_feasible());
//! assert!(solution.blue_used <= 4);
//! assert!(solution.per_tree_blue.iter().all(|&b| b <= 2));
//! assert!(solution.normalized_cost <= 1.0); // never worse than all-red
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instance;
mod oracle;
mod solver;
mod spec;

pub use instance::FabricInstance;
pub use oracle::{oracle_is_tractable, FabricBruteForce};
pub use solver::{DecomposeSolver, FabricSolution, FabricSolver};
pub use spec::{FabricError, FabricSpec, FabricTopology};

/// Registry of fabric solvers by name, mirroring `soar_core::api::solvers`.
pub mod solvers {
    use crate::{DecomposeSolver, FabricBruteForce, FabricSolver};

    /// Names of every registered fabric solver, in registry order.
    pub const NAMES: [&str; 2] = ["fabric-soar", "fabric-brute"];

    /// Looks a fabric solver up by registry name.
    pub fn by_name(name: &str) -> Option<Box<dyn FabricSolver>> {
        match name {
            "fabric-soar" => Some(Box::new(DecomposeSolver)),
            "fabric-brute" => Some(Box::new(FabricBruteForce)),
            _ => None,
        }
    }

    /// All registered fabric solvers, in registry order.
    pub fn all() -> Vec<Box<dyn FabricSolver>> {
        NAMES
            .iter()
            .map(|name| by_name(name).expect("registry names resolve"))
            .collect()
    }
}
