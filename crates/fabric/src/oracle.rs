//! Exhaustive reference solver for the fabric problem.
//!
//! Enumerates every fabric-wide placement `U = (U_0, ..., U_{m-1})` with
//! `Σ_t |U_t| ≤ k` and `|U_t| ≤ c`, evaluating the congestion-extended
//! objective directly. Like [`soar_core::brute_force`] this is strictly a
//! testing oracle: the property tests use it to certify the decomposition +
//! knapsack + reweighting pipeline of [`crate::DecomposeSolver`] end to end
//! on random small fabrics.

use soar_core::brute::MAX_SUBSETS;
use soar_reduce::Coloring;
use soar_topology::NodeId;

use crate::{FabricInstance, FabricSolution, FabricSolver};

/// Number of subsets of size at most `k` from a ground set of `n` elements
/// (saturating early once past [`MAX_SUBSETS`]). Upper-bounds the oracle's
/// enumeration — the per-tree cap `c` only prunes further.
fn subset_count(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut binom: u128 = 1;
    for i in 0..=k.min(n) {
        if i > 0 {
            binom = binom * (n as u128 - i as u128 + 1) / i as u128;
        }
        total = total.saturating_add(binom);
        if total > MAX_SUBSETS {
            return total;
        }
    }
    total
}

/// Whether [`FabricBruteForce`] can enumerate a fabric of `n_candidates`
/// available switches at budget `k` without tripping its [`MAX_SUBSETS`]
/// guard. The experiment validation layer uses this to reject oracle runs at
/// paper scale with an actionable message instead of panicking mid-run.
pub fn oracle_is_tractable(n_candidates: usize, budget: usize) -> bool {
    subset_count(n_candidates, budget) <= MAX_SUBSETS
}

/// Finds an optimal feasible fabric placement by exhaustive enumeration.
///
/// # Panics
///
/// [`FabricSolver::solve`] panics if the number of candidate subsets exceeds
/// [`MAX_SUBSETS`] — a guard against accidentally running the oracle on a
/// real fabric (the experiment validation layer rejects oracle runs at paper
/// scale before they get here).
pub struct FabricBruteForce;

impl FabricSolver for FabricBruteForce {
    fn name(&self) -> &'static str {
        "fabric-brute"
    }

    fn solve(&self, fabric: &FabricInstance) -> FabricSolution {
        // Flatten the fabric's available switches into (tree, node) candidates.
        let candidates: Vec<(usize, NodeId)> = fabric
            .trees()
            .iter()
            .enumerate()
            .flat_map(|(t, tree)| {
                tree.node_ids()
                    .filter(|&v| tree.available(v))
                    .map(move |v| (t, v))
            })
            .collect();
        let count = subset_count(candidates.len(), fabric.budget());
        assert!(
            count <= MAX_SUBSETS,
            "the fabric oracle would enumerate up to {count} placements; \
             it is for small tests only"
        );

        let mut colorings: Vec<Coloring> = fabric
            .trees()
            .iter()
            .map(|tree| Coloring::all_red(tree.n_switches()))
            .collect();
        let mut per_tree = vec![0usize; fabric.n_trees()];
        let mut best_cost = fabric.objective(&colorings);
        let mut best = colorings.clone();
        enumerate(
            fabric,
            &candidates,
            0,
            fabric.budget(),
            &mut per_tree,
            &mut colorings,
            &mut best_cost,
            &mut best,
        );

        let per_tree_blue: Vec<usize> = best.iter().map(Coloring::n_blue).collect();
        FabricSolution::from_colorings(fabric, best, per_tree_blue)
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    fabric: &FabricInstance,
    candidates: &[(usize, NodeId)],
    start: usize,
    remaining: usize,
    per_tree: &mut [usize],
    colorings: &mut [Coloring],
    best_cost: &mut f64,
    best: &mut Vec<Coloring>,
) {
    if remaining == 0 || start == candidates.len() {
        return;
    }
    for idx in start..candidates.len() {
        let (t, v) = candidates[idx];
        if per_tree[t] == fabric.congestion_bound() {
            continue;
        }
        per_tree[t] += 1;
        colorings[t].set_blue(v);
        let value = fabric.objective(colorings);
        // Same strict-improvement epsilon as `soar_core::brute_force`, so the
        // two oracles break float ties identically.
        if value < *best_cost - 1e-12 {
            *best_cost = value;
            best.clone_from_slice(colorings);
        }
        enumerate(
            fabric,
            candidates,
            idx + 1,
            remaining - 1,
            per_tree,
            colorings,
            best_cost,
            best,
        );
        colorings[t].set_red(v);
        per_tree[t] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    fn small_fabric(budget: usize, bound: usize, gamma: f64) -> FabricInstance {
        let mut trees = vec![
            builders::two_tier_fat_tree(2, 2),
            builders::two_tier_fat_tree(2, 2),
        ];
        for (offset, tree) in trees.iter_mut().enumerate() {
            for (i, v) in tree.leaves().collect::<Vec<_>>().into_iter().enumerate() {
                tree.set_load(v, 2 + (i + offset) as u64);
            }
        }
        FabricInstance::new("small", trees, budget, bound, gamma).unwrap()
    }

    #[test]
    fn budget_zero_is_all_red() {
        let fabric = small_fabric(0, 1, 0.5);
        let solution = FabricBruteForce.solve(&fabric);
        assert_eq!(solution.blue_used, 0);
        assert!((solution.cost - fabric.baseline()).abs() < 1e-12);
        assert!((solution.normalized_cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_the_congestion_bound() {
        // With a generous budget but c = 1, no tree may take two blues.
        let fabric = small_fabric(4, 1, 0.0);
        let solution = FabricBruteForce.solve(&fabric);
        assert!(solution.is_feasible());
        assert!(solution.per_tree_blue.iter().all(|&b| b <= 1));
        // Relaxing the bound can only help.
        let relaxed = FabricBruteForce.solve(&small_fabric(4, 4, 0.0));
        assert!(relaxed.cost <= solution.cost + 1e-12);
    }

    #[test]
    fn respects_availability() {
        let mut trees = vec![builders::star(4), builders::star(4)];
        for tree in &mut trees {
            for v in tree.leaves().collect::<Vec<_>>() {
                tree.set_load(v, 5);
            }
            // Only the root of each tree may aggregate.
            for v in 1..tree.n_switches() {
                tree.set_available(v, false);
            }
        }
        let fabric = FabricInstance::new("gated", trees, 4, 2, 0.0).unwrap();
        let solution = FabricBruteForce.solve(&fabric);
        for (coloring, tree) in solution.colorings.iter().zip(fabric.trees()) {
            for v in coloring.blue_nodes() {
                assert!(tree.available(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "for small tests only")]
    fn oversized_fabrics_are_rejected() {
        let trees = builders::multi_core_fat_tree(2, 8, 4, 8);
        let fabric = FabricInstance::new("big", trees, 16, 8, 0.5).unwrap();
        let _ = FabricBruteForce.solve(&fabric);
    }

    #[test]
    fn subset_count_matches_binomials() {
        assert_eq!(subset_count(5, 0), 1);
        assert_eq!(subset_count(5, 1), 6);
        assert_eq!(subset_count(5, 2), 16);
        assert_eq!(subset_count(4, 4), 16);
    }
}
