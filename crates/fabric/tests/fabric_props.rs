//! Property tests certifying the fabric solver end to end:
//!
//! * on random small fabrics the exact decompose-and-compose solver is
//!   feasible and cost-matches the exhaustive fabric oracle;
//! * every per-tree result is bit-identical to solving the extracted tree
//!   standalone with the same budget share (the decomposition adds nothing
//!   and loses nothing);
//! * solving is deterministic across repeated runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar_fabric::{DecomposeSolver, FabricBruteForce, FabricInstance, FabricSolver};
use soar_topology::builders;
use soar_topology::Tree;

/// A random fabric of 2–3 cores totalling at most ~40 switches, with random
/// loads, rates and availability — the adversarial end of the small-fabric
/// space (ISSUE acceptance criterion).
fn random_fabric(rng: &mut StdRng) -> FabricInstance {
    let cores = rng.random_range(2..=3);
    let trees: Vec<Tree> = (0..cores)
        .map(|_| {
            let n = rng.random_range(2..=13);
            let mut tree = builders::random_tree(n, rng);
            for v in 0..n {
                tree.set_load(v, rng.random_range(0..7));
                tree.set_rate(v, [0.5, 1.0, 2.0, 4.0][rng.random_range(0..4usize)]);
                // Keep the root available more often than not so the bound
                // bites instead of availability alone.
                tree.set_available(v, rng.random_range(0..4) != 0);
            }
            tree
        })
        .collect();
    let budget = rng.random_range(0..=4);
    let bound = rng.random_range(1..=2);
    let gamma = [0.0, 0.25, 1.0, 2.5][rng.random_range(0..4usize)];
    FabricInstance::new("prop", trees, budget, bound, gamma).unwrap()
}

#[test]
fn solver_is_feasible_and_matches_the_oracle_on_random_fabrics() {
    let mut rng = StdRng::seed_from_u64(4242);
    for trial in 0..60 {
        let fabric = random_fabric(&mut rng);
        let exact = FabricBruteForce.solve(&fabric);
        let solved = DecomposeSolver.solve(&fabric);

        assert!(solved.is_feasible(), "trial {trial}: infeasible placement");
        assert!(
            fabric.is_feasible(&solved.colorings),
            "trial {trial}: colorings violate instance constraints"
        );
        assert!(
            (exact.cost - solved.cost).abs() < 1e-9,
            "trial {trial}: oracle {} vs solver {} (k = {}, c = {}, γ = {}, trees = {:?})",
            exact.cost,
            solved.cost,
            fabric.budget(),
            fabric.congestion_bound(),
            fabric.congestion_weight(),
            fabric
                .trees()
                .iter()
                .map(Tree::n_switches)
                .collect::<Vec<_>>(),
        );
        // The recomputed objective agrees with the reported one.
        assert!((fabric.objective(&solved.colorings) - solved.cost).abs() < 1e-12);
    }
}

#[test]
fn per_tree_results_are_bit_identical_to_standalone_solves() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..25 {
        let fabric = random_fabric(&mut rng);
        let solved = DecomposeSolver.solve(&fabric);
        for (t, &j) in solved.per_tree_budget.iter().enumerate() {
            let standalone = soar_core::solve(&fabric.weighted_trees()[t], j);
            assert_eq!(
                standalone.cost, solved.per_tree_cost[t],
                "tree {t}: standalone DP cost differs from the fabric share"
            );
            assert_eq!(
                standalone.coloring, solved.colorings[t],
                "tree {t}: standalone DP coloring differs from the fabric share"
            );
        }
    }
}

#[test]
fn solving_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let fabric = random_fabric(&mut rng);
        let a = DecomposeSolver.solve(&fabric);
        let b = DecomposeSolver.solve(&fabric);
        assert_eq!(a, b, "repeated solves must be bit-identical");
    }
}

#[test]
fn congestion_weight_trades_cost_for_congestion() {
    // On a fixed fabric, raising γ can only lower (or keep) the congestion of
    // the chosen placement: the optimizer pays more for core-link traffic.
    let build = |gamma: f64| {
        let mut trees = builders::multi_core_fat_tree(2, 4, 2, 2);
        for tree in &mut trees {
            for v in tree.leaves().collect::<Vec<_>>() {
                tree.set_load(v, 5);
            }
        }
        FabricInstance::new("tradeoff", trees, 4, 2, gamma).unwrap()
    };
    let mut last_congestion = f64::INFINITY;
    for gamma in [0.0, 0.5, 2.0, 8.0] {
        let solution = DecomposeSolver.solve(&build(gamma));
        assert!(
            solution.congestion <= last_congestion + 1e-9,
            "γ = {gamma}: congestion rose from {last_congestion} to {}",
            solution.congestion
        );
        last_congestion = solution.congestion;
    }
}

#[test]
fn registry_resolves_both_solvers() {
    assert_eq!(soar_fabric::solvers::NAMES, ["fabric-soar", "fabric-brute"]);
    for name in soar_fabric::solvers::NAMES {
        let solver = soar_fabric::solvers::by_name(name).expect("registered");
        assert_eq!(solver.name(), name);
    }
    assert!(soar_fabric::solvers::by_name("nope").is_none());
    assert_eq!(soar_fabric::solvers::all().len(), 2);
}
