//! Per-thread span ring buffers behind the [`span!`](crate::span!) macro.
//!
//! Every thread that records a span lazily allocates one [`SpanRing`] — a
//! fixed-capacity ring of seqlock-protected slots — and registers it in a
//! global list. The **owning thread is the only writer**, so recording is
//! lock-free: a handful of relaxed/release atomic stores, no RMW contention,
//! no allocation after the first span. Readers ([`snapshot`]) walk every
//! registered ring and skip slots that are mid-write or were overwritten while
//! being read — a drain is exact at quiescence (which is when the exporters
//! run: after a traced solve, or at a metrics scrape) and merely lossy, never
//! blocking or unsound, under concurrent recording.
//!
//! Span names are interned into a global table once per call site (the
//! [`Site`] caches its id in a `OnceLock`), so a slot stores a compact
//! `u32` id instead of a wide string reference and a torn read can never
//! fabricate an out-of-bounds name.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events each ring can hold before the oldest are overwritten. A traced 4k
/// solve emits well under a thousand events per thread; the headroom is for
/// long daemon sessions where only the tail of the trace is of interest.
pub const RING_CAP: usize = 1 << 14;

/// One static `span!` call site: the span name plus its lazily interned id.
pub struct Site {
    name: &'static str,
    id: OnceLock<u32>,
}

impl Site {
    /// A new call site (const, so the macro can put it in a `static`).
    pub const fn new(name: &'static str) -> Self {
        Site {
            name,
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> u32 {
        *self.id.get_or_init(|| intern(self.name))
    }
}

/// The global span-name table; slot ids index into it.
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns `name`, returning its id. Linear scan: the table holds a few dozen
/// distinct phase names and interning happens once per call site.
pub fn intern(name: &'static str) -> u32 {
    let mut names = NAMES.lock().expect("span name table poisoned");
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i as u32;
    }
    names.push(name);
    (names.len() - 1) as u32
}

fn name_of(id: u32) -> Option<&'static str> {
    NAMES
        .lock()
        .expect("span name table poisoned")
        .get(id as usize)
        .copied()
}

/// One slot of a ring: a per-slot seqlock (`seq` odd while a write is in
/// flight) guarding three data words. All fields are atomics, so a racing
/// snapshot reads *stale or discarded* values, never torn non-atomic memory.
struct Slot {
    seq: AtomicU64,
    ts_ns: AtomicU64,
    /// `(name id << 32) | (1 if begin else 0)`.
    meta: AtomicU64,
    arg: AtomicU64,
}

/// A single thread's span event ring. Written only by its owner thread.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total events ever written (the next write position is `head % cap`).
    head: AtomicU64,
}

impl SpanRing {
    fn new() -> Self {
        let slots = (0..RING_CAP)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect();
        SpanRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Owner-thread-only append.
    fn push(&self, name_id: u32, begin: bool, ts_ns: u64, arg: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (RING_CAP - 1)];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq | 1, Ordering::Relaxed); // odd: write in flight
        fence(Ordering::Release);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(
            ((name_id as u64) << 32) | u64::from(begin),
            Ordering::Relaxed,
        );
        slot.arg.store(arg, Ordering::Relaxed);
        slot.seq.store((seq | 1).wrapping_add(1), Ordering::Release); // even
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copies out every currently readable event, oldest first. Slots being
    /// rewritten concurrently are skipped (seqlock check).
    fn snapshot(&self) -> Vec<RawEvent> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(RING_CAP as u64);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for i in lo..head {
            let slot = &self.slots[(i as usize) & (RING_CAP - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue;
            }
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            let Some(name) = name_of((meta >> 32) as u32) else {
                continue;
            };
            out.push(RawEvent {
                name,
                begin: meta & 1 == 1,
                ts_ns,
                arg,
            });
        }
        out
    }
}

/// One decoded ring event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Interned span name.
    pub name: &'static str,
    /// `true` for a span-begin event, `false` for its end.
    pub begin: bool,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Free-form argument recorded at span begin (level index, dirty size, …).
    pub arg: u64,
}

/// All events of one registered thread.
#[derive(Debug)]
pub struct ThreadEvents {
    /// Stable per-process thread id (registration order, starting at 1).
    pub tid: u64,
    /// The OS thread name at registration time (empty if unnamed).
    pub thread_name: String,
    /// Decoded events, oldest first.
    pub events: Vec<RawEvent>,
}

struct ThreadEntry {
    tid: u64,
    thread_name: String,
    ring: Arc<SpanRing>,
}

static THREADS: Mutex<Vec<ThreadEntry>> = Mutex::new(Vec::new());

thread_local! {
    static RING: Arc<SpanRing> = {
        let ring = Arc::new(SpanRing::new());
        let mut threads = THREADS.lock().expect("span thread list poisoned");
        let tid = threads.len() as u64 + 1;
        threads.push(ThreadEntry {
            tid,
            thread_name: std::thread::current().name().unwrap_or("").to_owned(),
            ring: Arc::clone(&ring),
        });
        ring
    };
}

/// Snapshots every registered thread's ring, oldest events first per thread.
/// Exact at quiescence; lossy (never blocking) under concurrent recording.
pub fn snapshot() -> Vec<ThreadEvents> {
    let threads = THREADS.lock().expect("span thread list poisoned");
    threads
        .iter()
        .map(|t| ThreadEvents {
            tid: t.tid,
            thread_name: t.thread_name.clone(),
            events: t.ring.snapshot(),
        })
        .collect()
}

/// The tracing master switch. Spans are recorded only while this is `true`;
/// the disabled fast path of `span!` is a single relaxed load of this flag.
pub(crate) static TRACING: AtomicBool = AtomicBool::new(false);

/// An RAII span: records a begin event at construction and the matching end
/// event when dropped. Construct through the [`span!`](crate::span!) macro.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    /// Interned name id; `None` for the disabled (no-op) guard.
    id: Option<u32>,
}

impl SpanGuard {
    /// Begins a span at `site` (tracing is known-enabled when this is called).
    pub fn enter(site: &'static Site, arg: u64) -> SpanGuard {
        let id = site.id();
        RING.with(|ring| ring.push(id, true, crate::now_ns(), arg));
        SpanGuard { id: Some(id) }
    }

    /// The no-op guard of a disabled `span!` site.
    pub const fn disabled() -> SpanGuard {
        SpanGuard { id: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            // The end is recorded even if tracing was switched off mid-span,
            // so every begin that reached the ring stays paired.
            RING.with(|ring| ring.push(id, false, crate::now_ns(), 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern("test_intern_phase");
        let b = intern("test_intern_phase");
        assert_eq!(a, b);
        assert_eq!(name_of(a), Some("test_intern_phase"));
    }

    #[test]
    fn ring_roundtrips_events_in_order() {
        let ring = SpanRing::new();
        let id = intern("test_ring_roundtrip");
        ring.push(id, true, 10, 7);
        ring.push(id, false, 25, 0);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            RawEvent {
                name: "test_ring_roundtrip",
                begin: true,
                ts_ns: 10,
                arg: 7
            }
        );
        assert!(!events[1].begin);
        assert_eq!(events[1].ts_ns, 25);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let ring = SpanRing::new();
        let id = intern("test_ring_wrap");
        let total = RING_CAP as u64 + 10;
        for i in 0..total {
            ring.push(id, i % 2 == 0, i, i);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(events.first().unwrap().ts_ns, total - RING_CAP as u64);
        assert_eq!(events.last().unwrap().ts_ns, total - 1);
    }
}
