//! The Chrome `trace_event` exporter: pairs raw ring events into complete
//! spans and renders them as Perfetto-loadable JSON (`chrome://tracing` /
//! <https://ui.perfetto.dev> both accept the format).
//!
//! Pairing is per thread and stack-disciplined — exactly the shape the RAII
//! [`SpanGuard`](crate::span::SpanGuard) produces. A begin whose end was lost
//! to a ring wrap (or is still open) is dropped; an end with no matching begin
//! likewise. The exported events are `ph: "X"` *complete* events with
//! microsecond `ts`/`dur`, one `pid` for the process and the registered ring
//! tid as `tid`, plus one `ph: "M"` metadata record per thread carrying its
//! name.

use crate::span::{RawEvent, ThreadEvents};

/// One matched begin/end pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteSpan {
    /// Ring thread id (see [`ThreadEvents::tid`]).
    pub tid: u64,
    /// Span name.
    pub name: &'static str,
    /// Begin timestamp, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on its thread at begin time (0 = top level).
    pub depth: u32,
    /// The free-form argument recorded at begin.
    pub arg: u64,
}

/// Pairs each thread's events into complete spans, preserving begin order.
pub fn complete_spans(threads: &[ThreadEvents]) -> Vec<CompleteSpan> {
    let mut out = Vec::new();
    for thread in threads {
        let mut stack: Vec<(&RawEvent, usize)> = Vec::new();
        let mut spans: Vec<Option<CompleteSpan>> = Vec::new();
        for event in &thread.events {
            if event.begin {
                spans.push(None);
                stack.push((event, spans.len() - 1));
            } else if let Some(&(begin, slot)) = stack.last() {
                if begin.name == event.name {
                    stack.pop();
                    spans[slot] = Some(CompleteSpan {
                        tid: thread.tid,
                        name: begin.name,
                        ts_ns: begin.ts_ns,
                        dur_ns: event.ts_ns.saturating_sub(begin.ts_ns),
                        depth: stack.len() as u32,
                        arg: begin.arg,
                    });
                }
                // A name mismatch means the matching begin was overwritten by
                // a ring wrap; the end is dropped and the stack left intact.
            }
        }
        out.extend(spans.into_iter().flatten());
    }
    out
}

/// Minimal JSON string escaping for span and thread names.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders the snapshot as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(threads: &[ThreadEvents]) -> String {
    let spans = complete_spans(threads);
    let mut out = String::with_capacity(256 + spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in threads {
        if thread.events.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            thread.tid
        ));
        escape(
            if thread.thread_name.is_empty() {
                "unnamed"
            } else {
                &thread.thread_name
            },
            &mut out,
        );
        out.push_str("\"}}");
    }
    for span in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape(span.name, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"soar\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"v\":{}}}}}",
            span.tid,
            span.ts_ns as f64 / 1_000.0,
            span.dur_ns as f64 / 1_000.0,
            span.arg,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, begin: bool, ts_ns: u64, arg: u64) -> RawEvent {
        RawEvent {
            name,
            begin,
            ts_ns,
            arg,
        }
    }

    #[test]
    fn pairing_respects_the_stack_discipline() {
        let threads = vec![ThreadEvents {
            tid: 1,
            thread_name: "t".into(),
            events: vec![
                ev("outer", true, 0, 0),
                ev("inner", true, 10, 3),
                ev("inner", false, 20, 0),
                ev("outer", false, 50, 0),
            ],
        }];
        let spans = complete_spans(&threads);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!((outer.ts_ns, outer.dur_ns, outer.depth), (0, 50, 0));
        assert_eq!((inner.ts_ns, inner.dur_ns, inner.depth), (10, 10, 1));
        assert_eq!(inner.arg, 3);
    }

    #[test]
    fn orphan_ends_and_open_begins_are_dropped() {
        let threads = vec![ThreadEvents {
            tid: 1,
            thread_name: String::new(),
            events: vec![
                ev("lost", false, 5, 0), // end without begin (ring wrap)
                ev("whole", true, 10, 0),
                ev("whole", false, 30, 0),
                ev("open", true, 40, 0), // begin without end (still running)
            ],
        }];
        let spans = complete_spans(&threads);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "whole");
    }

    #[test]
    fn chrome_json_contains_events_and_metadata() {
        let threads = vec![ThreadEvents {
            tid: 2,
            thread_name: "worker \"a\"".into(),
            events: vec![ev("gather", true, 1_000, 4), ev("gather", false, 3_500, 0)],
        }];
        let json = chrome_trace_json(&threads);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("worker \\\"a\\\""));
        assert!(json.contains("\"name\":\"gather\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"v\":4"));
    }
}
