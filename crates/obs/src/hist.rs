//! A fixed-bucket latency histogram with an allocation-free record path.
//!
//! `soar serve` records one latency sample per request on its hot path, so the
//! recorder must be wait-free-ish and must never allocate: [`LatencyHistogram`]
//! pre-allocates a fixed array of atomic counters at construction and
//! [`LatencyHistogram::record`] is a single index computation plus one relaxed
//! atomic increment. Quantile queries walk the counters and are meant for
//! metrics snapshots, not hot paths.
//!
//! The bucket layout is HDR-style logarithmic: values below
//! [`SUB_BUCKETS`] are exact; above that, each power-of-two magnitude is split
//! into [`SUB_BUCKETS`] equal sub-buckets, so the relative quantization error
//! is bounded by `1 / SUB_BUCKETS` (6.25%) at any magnitude up to `u64::MAX`.
//! Reported quantiles use the *upper edge* of the winning bucket and therefore
//! never understate a latency.
//!
//! This histogram is the **single** latency type of the workspace: `soar-pool`
//! re-exports it (the historical `soar_pool::hist` path), `soar serve` folds it
//! into `MetricsSnapshot`, `soar-loadtest` records client-side samples into it,
//! and the Prometheus exposition renders it as a summary — one implementation,
//! so server- and client-side percentiles can never drift apart.
//!
//! ```
//! use soar_obs::hist::LatencyHistogram;
//!
//! let h = LatencyHistogram::new();
//! for nanos in [120, 450, 450, 90_000, 2_000_000] {
//!     h.record(nanos);
//! }
//! assert_eq!(h.len(), 5);
//! assert!(h.quantile(0.5) >= 450);
//! assert!(h.max() >= 2_000_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two magnitude; also the exact-value range floor.
pub const SUB_BUCKETS: u64 = 16;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;

/// Total bucket count: 16 exact small-value buckets plus 16 per magnitude for
/// magnitudes 4..=63.
const BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// A concurrent fixed-bucket histogram of `u64` samples (typically
/// nanoseconds). See the [module docs](self) for the bucket layout.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram. Allocates its (fixed-size) counter array once, here.
    pub fn new() -> Self {
        // `[AtomicU64; N]` has no Copy-based array literal; build via a Vec and
        // fix the size with a TryInto that cannot fail.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = counts.into_boxed_slice().try_into().unwrap();
        LatencyHistogram {
            counts,
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of a value. Values below [`SUB_BUCKETS`] are exact; above,
    /// the top [`SUB_BITS`]+1 significant bits select the bucket.
    #[inline]
    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
        let sub = (value >> (magnitude - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((magnitude - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// Upper edge (inclusive) of a bucket: the largest value mapping to it.
    fn upper_edge(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKETS {
            return index;
        }
        let magnitude = index / SUB_BUCKETS - 1 + SUB_BITS as u64;
        let sub = index % SUB_BUCKETS;
        let base = 1u64 << magnitude;
        let width = 1u64 << (magnitude - SUB_BITS as u64);
        // base + (sub+1)*width - 1; the topmost bucket's exclusive end is
        // 2^64, so a checked add that overflows means "up to u64::MAX".
        match base.checked_add((sub + 1) * width) {
            Some(end) => end - 1,
            None => u64::MAX,
        }
    }

    /// Records one sample. Allocation-free: one index computation and two
    /// relaxed atomic updates (three when the running maximum advances).
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[Self::index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether no samples were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound off by at most
    /// `1/`[`SUB_BUCKETS`] relative error. Returns 0 for an empty histogram.
    ///
    /// A concurrent recorder may move the answer; snapshots taken while
    /// recording are approximate in count but never off in bucket placement.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.len();
        if total == 0 {
            return 0;
        }
        // Rank of the q-quantile, 1-based, clamped into [1, total].
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_edge(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every bucket of `other` into `self` (used to fold per-connection
    /// client histograms into one report).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An upper bound on the sum of all recorded samples: every sample is
    /// counted at its bucket's upper edge, clamped to the recorded maximum.
    /// Feeds the `_sum` line of the Prometheus summary exposition, where a
    /// bucket-resolution overestimate is the same contract as the quantiles.
    pub fn approx_sum(&self) -> u128 {
        let max = self.max();
        let mut sum = 0u128;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                sum += n as u128 * Self::upper_edge(i).min(max) as u128;
            }
        }
        sum
    }

    /// The common service percentiles `(p50, p99, p999)`.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99, p999) = self.percentiles();
        f.debug_struct("LatencyHistogram")
            .field("len", &self.len())
            .field("p50", &p50)
            .field("p99", &p99)
            .field("p999", &p999)
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile from a sorted sample vector, same rank convention as
    /// [`LatencyHistogram::quantile`].
    fn oracle(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// A cheap deterministic PRNG (xorshift*) so the test needs no rand dep.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS {
            let q = (v + 1) as f64 / SUB_BUCKETS as f64;
            assert_eq!(h.quantile(q), v, "q={q}");
        }
        assert_eq!(h.len(), SUB_BUCKETS);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.approx_sum(), 0);
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle_within_bucket_resolution() {
        // Samples spanning six orders of magnitude, heavy-tailed like real
        // service latencies: mostly ~1us with a tail into tens of ms.
        let mut rng = XorShift(0x5EED_0001);
        let h = LatencyHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..100_000 {
            let r = rng.next();
            let v = match r % 100 {
                0..=89 => 500 + r % 2_000,       // bulk: 0.5–2.5 us
                90..=98 => 20_000 + r % 200_000, // slow: 20–220 us
                _ => 5_000_000 + r % 50_000_000, // tail: 5–55 ms
            };
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for &q in &[0.5, 0.9, 0.99, 0.999, 1.0] {
            let want = oracle(&samples, q);
            let got = h.quantile(q);
            // Upper-edge reporting: got >= exact, within one sub-bucket above.
            assert!(got >= want, "q={q}: got {got} < oracle {want}");
            let bound = want + want / SUB_BUCKETS + 1;
            assert!(got <= bound, "q={q}: got {got} > bound {bound}");
        }
        assert_eq!(h.len(), samples.len() as u64);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = XorShift(42);
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let whole = LatencyHistogram::new();
        for i in 0..10_000 {
            let v = rng.next() % 1_000_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert_eq!(a.max(), whole.max());
        for &q in &[0.25, 0.5, 0.75, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn approx_sum_bounds_the_true_sum() {
        let mut rng = XorShift(7);
        let h = LatencyHistogram::new();
        let mut exact = 0u128;
        for _ in 0..10_000 {
            let v = rng.next() % 10_000_000;
            h.record(v);
            exact += v as u128;
        }
        let approx = h.approx_sum();
        assert!(approx >= exact, "approx {approx} < exact {exact}");
        // Bucket resolution: at most 1/SUB_BUCKETS relative overshoot.
        assert!(approx <= exact + exact / SUB_BUCKETS as u128 + 10_000);
    }

    #[test]
    fn extreme_magnitudes_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.01), 0);
    }
}
