//! The global metric registry behind the [`counter!`](crate::counter!) and
//! [`gauge!`](crate::gauge!) macros.
//!
//! Metrics are registered once (first use per call site; the macros cache the
//! resolved reference in a `OnceLock`) and live for the process lifetime, so
//! the hot-path cost of an increment is one cached-pointer load plus one
//! relaxed atomic RMW — no locking, no lookup. The registry itself is only
//! locked at registration and at exposition time
//! ([`render_registry`](crate::prom::render_registry)).
//!
//! Registration deduplicates on `(name, labels)`: two call sites naming the
//! same metric share one cell, which is what makes the exposition coherent —
//! there is exactly one source of truth per metric name.

use crate::hist::LatencyHistogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter.
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A gauge: a value that can move both ways (queue depths, resident counts).
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// What a registry entry points at.
pub(crate) enum MetricKind {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    /// Rendered as a Prometheus summary (quantiles + `_sum` + `_count`).
    Summary(&'static LatencyHistogram),
}

pub(crate) struct Entry {
    pub(crate) name: &'static str,
    /// Rendered inside `{}` after the name, e.g. `worker="3"`. Empty = none.
    pub(crate) labels: String,
    pub(crate) kind: MetricKind,
}

pub(crate) static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn find_or_insert(name: &'static str, labels: String, make: impl FnOnce() -> MetricKind) -> usize {
    let mut reg = REGISTRY.lock().expect("metric registry poisoned");
    if let Some(i) = reg
        .iter()
        .position(|e| e.name == name && e.labels == labels)
    {
        return i;
    }
    reg.push(Entry {
        name,
        labels,
        kind: make(),
    });
    reg.len() - 1
}

/// Registers (or finds) the process-wide counter `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_labeled(name, String::new())
}

/// Registers (or finds) the counter `name{labels}` — `labels` is the rendered
/// Prometheus label body, e.g. `worker="3"`.
pub fn counter_labeled(name: &'static str, labels: String) -> &'static Counter {
    let i = find_or_insert(name, labels, || {
        MetricKind::Counter(Box::leak(Box::new(Counter::new())))
    });
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    match reg[i].kind {
        MetricKind::Counter(c) => c,
        _ => panic!("metric {name} is registered with a different type"),
    }
}

/// Registers (or finds) the process-wide gauge `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let i = find_or_insert(name, String::new(), || {
        MetricKind::Gauge(Box::leak(Box::new(Gauge::new())))
    });
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    match reg[i].kind {
        MetricKind::Gauge(g) => g,
        _ => panic!("metric {name} is registered with a different type"),
    }
}

/// Registers (or finds) the process-wide latency summary `name` (a
/// [`LatencyHistogram`] rendered with quantiles at exposition).
pub fn summary(name: &'static str) -> &'static LatencyHistogram {
    let i = find_or_insert(name, String::new(), || {
        MetricKind::Summary(Box::leak(Box::new(LatencyHistogram::new())))
    });
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    match reg[i].kind {
        MetricKind::Summary(h) => h,
        _ => panic!("metric {name} is registered with a different type"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_cell() {
        let a = counter("test_registry_shared_total");
        let b = counter("test_registry_shared_total");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn labels_split_cells() {
        let a = counter_labeled("test_registry_labeled_total", "worker=\"0\"".into());
        let b = counter_labeled("test_registry_labeled_total", "worker=\"1\"".into());
        assert!(!std::ptr::eq(a, b));
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("test_registry_gauge");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
