//! # soar-obs
//!
//! The std-only observability layer of the SOAR workspace: structured span
//! tracing, a process-wide metric registry, and two exporters — Chrome
//! `trace_event` JSON ([`trace`], behind the `soar trace` CLI) and Prometheus
//! text exposition ([`prom`] + [`http`], behind `soar serve --obs-addr`).
//!
//! The build environment has no crates.io access, so this crate hand-rolls
//! the pieces a `tracing` + `prometheus` stack would normally provide, scoped
//! to what the workspace needs:
//!
//! * [`span!`] — RAII phase spans recorded into **per-thread lock-free ring
//!   buffers** ([`span`]). Tracing is off by default; the disabled cost of a
//!   `span!` site is a **single relaxed atomic load**. Enable with
//!   [`set_tracing`], snapshot with [`span::snapshot`], export with
//!   [`trace::chrome_trace_json`].
//! * [`counter!`] / [`gauge!`] — always-on process metrics backed by one
//!   relaxed atomic each, registered once per call site ([`registry`]) and
//!   rendered by [`prom::render_registry`].
//! * [`hist::LatencyHistogram`] — the workspace's single latency histogram
//!   (HDR-style log buckets, allocation-free record path), re-exported by
//!   `soar-pool` and folded into `soar serve`'s `MetricsSnapshot`.
//!
//! ```
//! use soar_obs::{counter, span};
//!
//! // Metrics are always live; one relaxed RMW per increment.
//! counter!("soar_doc_solves_total").inc();
//!
//! // Spans only record while tracing is enabled.
//! soar_obs::set_tracing(true);
//! {
//!     let _solve = span!("doc_solve");
//!     let _phase = span!("doc_gather", 42); // optional u64 argument
//! }
//! soar_obs::set_tracing(false);
//!
//! let threads = soar_obs::span::snapshot();
//! let spans = soar_obs::trace::complete_spans(&threads);
//! assert!(spans.iter().any(|s| s.name == "doc_solve"));
//! assert!(spans.iter().any(|s| s.name == "doc_gather" && s.arg == 42));
//!
//! let json = soar_obs::trace::chrome_trace_json(&threads);
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod http;
pub mod prom;
pub mod registry;
pub mod span;
pub mod trace;

use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Instant;

/// Turns span tracing on or off process-wide. Counters and gauges are always
/// live; only [`span!`] sites consult this flag.
pub fn set_tracing(enabled: bool) {
    span::TRACING.store(enabled, Ordering::Release);
}

/// Whether span tracing is currently enabled — the single relaxed load that
/// is the entire cost of a disabled [`span!`] site.
#[inline]
pub fn tracing_enabled() -> bool {
    span::TRACING.load(Ordering::Relaxed)
}

/// The process trace epoch: all span timestamps are nanoseconds since the
/// first call to this function.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since [`epoch`]. Monotone per thread (it is monotone globally,
/// up to `Instant` precision).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Opens an RAII span that ends when the returned guard is dropped.
///
/// `span!("name")` or `span!("name", arg)` where `arg` is any value castable
/// to `u64` (a level index, a dirty-set size, …). When tracing is disabled
/// the expansion is one relaxed atomic load and a no-op guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, 0u64)
    };
    ($name:expr, $arg:expr) => {{
        if $crate::tracing_enabled() {
            static SITE: $crate::span::Site = $crate::span::Site::new($name);
            $crate::span::SpanGuard::enter(&SITE, $arg as u64)
        } else {
            $crate::span::SpanGuard::disabled()
        }
    }};
}

/// Resolves (once per call site) a named [`registry::Counter`].
///
/// `counter!("soar_x_total").inc()` — the lookup is cached in a `OnceLock`,
/// so steady-state cost is one load plus the relaxed increment.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Resolves (once per call site) a named [`registry::Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::registry::Gauge> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_spans_record_nothing() {
        super::set_tracing(false);
        {
            let _g = span!("test_disabled_span");
        }
        let threads = crate::span::snapshot();
        for t in &threads {
            assert!(
                t.events.iter().all(|e| e.name != "test_disabled_span"),
                "disabled span leaked into the ring"
            );
        }
    }

    #[test]
    fn counter_macro_resolves_to_one_cell() {
        let a = counter!("soar_lib_test_total");
        counter!("soar_lib_test_total").add(2);
        a.inc();
        assert_eq!(a.get(), 3);
        gauge!("soar_lib_test_gauge").set(9);
        assert_eq!(gauge!("soar_lib_test_gauge").get(), 9);
    }
}
