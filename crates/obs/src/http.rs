//! A minimal hand-rolled HTTP/1.0 responder for metrics exposition.
//!
//! Just enough HTTP for `curl`/Prometheus scrapes: parse the request line of a
//! `GET`, route the path through a caller-supplied render function, answer
//! with `Connection: close`. The accept loop polls a nonblocking listener so
//! shutdown (a shared [`AtomicBool`]) is honored within one poll interval —
//! no self-connect tricks, no platform-specific wakeups.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A path-routing render callback: `render(path)` returns the response body
/// for a path, or `None` → 404.
pub type RenderFn = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// A running metrics endpoint; join it after signaling shutdown.
pub struct MetricsServer {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `GET` requests until `shutdown` becomes true.
    /// `render(path)` returns the response body for a path, or `None` → 404.
    pub fn start(
        addr: &str,
        shutdown: Arc<AtomicBool>,
        render: RenderFn,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("soar-obs-http".into())
            .spawn(move || accept_loop(listener, &shutdown, render.as_ref()))
            .expect("spawning the obs http thread failed");
        Ok(MetricsServer {
            addr: local,
            handle: Some(handle),
        })
    }

    /// The bound address (useful when the caller asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the accept loop to observe shutdown and exit.
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    render: &(dyn Fn(&str) -> Option<String> + Send + Sync),
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection, served inline: scrapes are rare
                // and tiny, so a worker pool would be pure overhead.
                let _ = handle_connection(stream, render);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    render: &(dyn Fn(&str) -> Option<String> + Send + Sync),
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let path = match read_request_path(&mut stream)? {
        Some(path) => path,
        None => {
            write_response(&mut stream, 400, "Bad Request", "bad request\n")?;
            return Ok(());
        }
    };
    match render(&path) {
        Some(body) => write_response(&mut stream, 200, "OK", &body),
        None => write_response(&mut stream, 404, "Not Found", "not found\n"),
    }
}

/// Reads until the end of the header block and returns the `GET` path.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&buf);
    let first = text.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_owned())),
        _ => Ok(None),
    }
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let content_type = if code == 200 {
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let code = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_routes_and_honors_shutdown() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&shutdown),
            Arc::new(|path: &str| (path == "/metrics").then(|| "soar_up 1\n".to_owned())),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert_eq!(body, "soar_up 1\n");

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        shutdown.store(true, Ordering::Release);
        server.join();
        // The port is released once the loop exits; a fresh bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "listener not released: {rebind:?}");
    }
}
