//! Prometheus text-format exposition (version 0.0.4).
//!
//! [`PromWriter`] is the single formatter for everything the workspace
//! exposes: the global registry ([`render_registry`]) and `soar serve`'s
//! per-daemon snapshot render both go through it, so `# HELP` / `# TYPE`
//! framing, label syntax and float formatting cannot drift between producers.

use crate::hist::LatencyHistogram;
use crate::registry::{MetricKind, REGISTRY};

/// An incremental Prometheus text-format writer.
#[derive(Default)]
pub struct PromWriter {
    buf: String,
    /// Last metric name a header was emitted for (headers once per family).
    headed: Option<String>,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        if self.headed.as_deref() == Some(name) {
            return;
        }
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push('\n');
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
        self.headed = Some(name.to_owned());
    }

    fn sample(&mut self, name: &str, labels: &str, value: f64) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            self.buf.push_str(labels);
            self.buf.push('}');
        }
        self.buf.push(' ');
        if value == value.trunc() && value.abs() < 1e15 {
            self.buf.push_str(&format!("{}", value as i64));
        } else {
            self.buf.push_str(&format!("{value}"));
        }
        self.buf.push('\n');
    }

    /// One counter sample (header emitted on the family's first sample).
    pub fn counter(&mut self, name: &str, help: &str, labels: &str, value: u64) {
        self.header(name, "counter", help);
        self.sample(name, labels, value as f64);
    }

    /// One gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &str, value: f64) {
        self.header(name, "gauge", help);
        self.sample(name, labels, value);
    }

    /// A full summary family from a live histogram: `quantile` samples plus
    /// `_sum` (bucket-resolution upper bound) and `_count`.
    pub fn summary(&mut self, name: &str, help: &str, hist: &LatencyHistogram) {
        let quantiles: Vec<(f64, u64)> = [0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&q| (q, hist.quantile(q)))
            .collect();
        self.summary_premade(name, help, &quantiles, hist.approx_sum() as f64, hist.len());
    }

    /// A summary family from already-folded quantiles (the serve snapshot
    /// path, where percentiles were extracted at snapshot time).
    pub fn summary_premade(
        &mut self,
        name: &str,
        help: &str,
        quantiles: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        self.header(name, "summary", help);
        for &(q, v) in quantiles {
            self.sample(name, &format!("quantile=\"{q}\""), v as f64);
        }
        self.sample(&format!("{name}_sum"), "", sum);
        self.sample(&format!("{name}_count"), "", count as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Renders every metric of the global registry (pool, solver and any other
/// `counter!`/`gauge!` sites), grouped by family in registration order.
pub fn render_registry() -> String {
    let mut w = PromWriter::new();
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    // Group samples of one family together: headers may be emitted only once
    // per name, and labeled siblings register as separate entries.
    let mut done: Vec<&'static str> = Vec::new();
    for entry in reg.iter() {
        if done.contains(&entry.name) {
            continue;
        }
        done.push(entry.name);
        for e in reg.iter().filter(|e| e.name == entry.name) {
            match e.kind {
                MetricKind::Counter(c) => w.counter(e.name, e.name, &e.labels, c.get()),
                MetricKind::Gauge(g) => w.gauge(e.name, e.name, &e.labels, g.get() as f64),
                MetricKind::Summary(h) => w.summary(e.name, e.name, h),
            }
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_one_header_per_family() {
        let mut w = PromWriter::new();
        w.counter("soar_test_total", "a test counter", "", 3);
        w.counter("soar_test_total", "a test counter", "worker=\"1\"", 4);
        w.gauge("soar_depth", "a depth", "", 2.5);
        let text = w.finish();
        assert_eq!(text.matches("# TYPE soar_test_total counter").count(), 1);
        assert!(text.contains("soar_test_total 3\n"));
        assert!(text.contains("soar_test_total{worker=\"1\"} 4\n"));
        assert!(text.contains("# TYPE soar_depth gauge"));
        assert!(text.contains("soar_depth 2.5\n"));
    }

    #[test]
    fn summaries_render_quantiles_sum_and_count() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.summary("soar_lat_ns", "latency", &h);
        let text = w.finish();
        assert!(text.contains("# TYPE soar_lat_ns summary"));
        assert!(text.contains("soar_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("soar_lat_ns{quantile=\"0.999\"}"));
        assert!(text.contains("soar_lat_ns_count 5\n"));
        assert!(text.contains("soar_lat_ns_sum "));
    }

    #[test]
    fn registry_render_includes_registered_metrics() {
        crate::registry::counter("soar_prom_render_test_total").add(11);
        let text = render_registry();
        assert!(text.contains("soar_prom_render_test_total 11"));
        // Well-formed: every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name_part.is_empty());
            value.parse::<f64>().expect("sample value parses");
        }
    }
}
