//! # soar-pool
//!
//! A small, `std`-only **work-stealing thread pool** in the spirit of a vendored
//! rayon core, sized for the SOAR workspace: long-lived worker threads, per-worker
//! deques with stealing, and *scoped* task spawning so jobs may borrow from the
//! caller's stack (the way `soar_core::api::solve_batch` borrows its instance slice
//! and the level-parallel gather borrows disjoint arena stripes).
//!
//! The build environment has no crates.io access, so this crate vendors the two
//! pieces of rayon the workspace actually needs rather than the whole library:
//!
//! * [`ThreadPool::scope`] — structured parallelism: spawn any number of borrowed
//!   closures, return once all of them ran. While waiting, the **calling thread
//!   helps execute pool jobs**, which makes nested scopes (a gather level
//!   parallelized from inside a batch solve running on a pool worker) deadlock-free
//!   by construction and lets a 1-core machine degrade to plain sequential
//!   execution with no extra context switches.
//! * [`ThreadPool::map`] — an ordered parallel map over a slice, chunked adaptively
//!   so thousand-item batches don't pay a per-item boxing cost.
//!
//! Scheduling: every worker owns a deque; it pops its own newest job first (LIFO,
//! cache-warm), then takes from the shared injector, then **steals the oldest job**
//! of a sibling (FIFO, largest-remaining-work-first). The deques are mutex-guarded
//! rather than lock-free Chase-Lev deques — uncontended mutexes are a handful of
//! nanoseconds, far below the granularity of a DP-table job, and keep this crate
//! free of `unsafe` except for the single lifetime-erasure cell in [`Scope`].
//!
//! ```
//! let pool = soar_pool::ThreadPool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Scoped spawns may borrow local state.
//! let mut halves = [0u64; 2];
//! let (a, b) = halves.split_at_mut(1);
//! pool.scope(|s| {
//!     s.spawn(|| a[0] = (0..1000).sum::<u64>());
//!     s.spawn(|| b[0] = (1000..2000).sum::<u64>());
//! });
//! assert_eq!(halves[0] + halves[1], (0..2000).sum::<u64>());
//! ```
//!
//! The process-wide [`global`] pool is lazily initialized with one worker per
//! available core and is what `soar_core` uses for `solve_batch`, `solve_matrix`,
//! `sweep_budgets_batch` and the level-parallel gather. Set the
//! `SOAR_POOL_THREADS` environment variable before first use to override its size
//! (e.g. `SOAR_POOL_THREADS=1` to force sequential execution when profiling).
//!
//! The pool reports into the [`soar_obs`] registry: `soar_pool_queue_depth`
//! (gauge of queued-but-unclaimed jobs), `soar_pool_jobs_total`,
//! `soar_pool_steals_total{worker="i"}` and `soar_pool_idle_ns_total{worker="i"}`
//! (cumulative parked time per worker) — enough to answer "is the pool
//! starving?" from a `soar serve --obs-addr` scrape. The [`hist`] module
//! (the [`hist::LatencyHistogram`] used by `soar serve` and `soar-loadtest`)
//! is a re-export of [`soar_obs::hist`], which owns the implementation.

#![warn(missing_docs)]

pub use soar_obs::hist;

use soar_obs::{counter, gauge};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of work. Jobs are `'static` from the pool's point of view;
/// [`Scope`] guarantees (by blocking until completion) that borrowed jobs never
/// outlive the borrow they captured.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// Jobs injected from threads that are not pool workers.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; workers push/pop their own back and steal fronts.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Signals sleeping workers that a job arrived (or the pool shut down).
    wakeup: Condvar,
    /// Companion mutex of `wakeup` (holds no data; the queues have their own locks).
    sleep_lock: Mutex<()>,
    /// Number of queued-but-unclaimed jobs, to keep wakeups cheap.
    queued: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pushes one job onto the queue `preferred` (a worker's own deque) or the
    /// injector, and wakes a sleeping worker.
    fn push(&self, job: Job, preferred: Option<usize>) {
        // Count before publishing: a concurrent pop of this job must never
        // decrement `queued` below the increment that accounts for it (the
        // reverse order would transiently wrap the counter to usize::MAX and
        // defeat the `queued == 0` sleep gates).
        self.queued.fetch_add(1, Ordering::Release);
        gauge!("soar_pool_queue_depth").add(1);
        match preferred {
            Some(w) => self.deques[w]
                .lock()
                .expect("deque poisoned")
                .push_back(job),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(job),
        }
        let _guard = self.sleep_lock.lock().expect("sleep lock poisoned");
        self.wakeup.notify_one();
    }

    /// Claims one job: own deque back (LIFO) → injector front → steal siblings'
    /// fronts (FIFO). `own` is `None` for non-worker threads helping out.
    fn pop(&self, own: Option<usize>) -> Option<Job> {
        if let Some(w) = own {
            if let Some(job) = self.deques[w].lock().expect("deque poisoned").pop_back() {
                self.claimed();
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            self.claimed();
            return Some(job);
        }
        let start = own.map_or(0, |w| w + 1);
        let n = self.deques.len();
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.claimed();
                note_steal();
                return Some(job);
            }
        }
        None
    }

    /// Bookkeeping of one claimed job: the sleep-gate counter and the obs
    /// queue-depth gauge move together.
    fn claimed(&self) {
        self.queued.fetch_sub(1, Ordering::Release);
        gauge!("soar_pool_queue_depth").add(-1);
    }
}

thread_local! {
    /// The worker index of the current thread in the pool it belongs to, used to
    /// route spawns to the local deque. `(pool id, worker index)`.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

/// Monotonic pool ids so a worker of pool A helping inside pool B is not mistaken
/// for one of B's own workers.
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The per-worker steal counter, resolved once per thread so the steal
    /// path never touches the registry lock. Workers get a `worker="i"` label;
    /// helper threads (scope callers) fold into the unlabeled sample.
    static STEAL_COUNTER: std::cell::OnceCell<&'static soar_obs::registry::Counter> =
        const { std::cell::OnceCell::new() };
}

/// Counts one successful steal on the current thread's cached counter.
fn note_steal() {
    STEAL_COUNTER.with(|cell| {
        cell.get_or_init(|| match WORKER.with(|w| w.get()) {
            Some((_, index)) => soar_obs::registry::counter_labeled(
                "soar_pool_steals_total",
                format!("worker=\"{index}\""),
            ),
            None => soar_obs::registry::counter("soar_pool_steals_total"),
        })
        .inc()
    });
}

/// A work-stealing thread pool. See the [crate docs](crate) for the design.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    id: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            wakeup: Condvar::new(),
            sleep_lock: Mutex::new(()),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("soar-pool-{w}"))
                    .spawn(move || worker_loop(&shared, id, w))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            id,
        }
    }

    /// Creates a pool with one worker per available core.
    pub fn with_default_parallelism() -> Self {
        ThreadPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.deques.len()
    }

    /// Structured parallelism: `f` receives a [`Scope`] whose
    /// [`spawn`](Scope::spawn)ed closures may borrow anything that outlives the
    /// `scope` call. Returns `f`'s value once every spawned job has finished.
    ///
    /// The calling thread executes pool jobs while it waits, so recursive use from
    /// inside a pool worker cannot deadlock. If any job — or `f` itself — panics,
    /// the panic is resurfaced here after all jobs of the scope completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        let scope = Scope {
            pool: self,
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            _env: std::marker::PhantomData,
        };
        // `f` may panic *after* spawning: already-queued jobs hold pointers into
        // `scope` and borrows of `'env`, so the scope MUST drain before this
        // frame unwinds. Catch, drain, then propagate.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&scope);
        if let Some(payload) = scope.panic.lock().expect("panic slot poisoned").take() {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Parallel, order-preserving map over a slice.
    ///
    /// Items are grouped into contiguous chunks (about four per worker) so the
    /// per-job overhead stays negligible even for thousands of small items; each
    /// chunk writes into its disjoint slice of the output, so results come back in
    /// input order regardless of which worker ran what.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.threads() == 1 || items.len() == 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(self.threads() * 4).max(1);
        let mut out: Vec<Option<U>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        let f = &f;
        self.scope(|s| {
            for (input, output) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (i, o) in input.iter().zip(output.iter_mut()) {
                        *o = Some(f(i));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every chunk ran to completion"))
            .collect()
    }

    /// Helps the pool until `scope` has no pending jobs left.
    fn wait(&self, scope: &Scope<'_, '_>) {
        let own = WORKER.with(|w| w.get()).and_then(
            |(pool, w)| {
                if pool == self.id {
                    Some(w)
                } else {
                    None
                }
            },
        );
        while scope.pending.load(Ordering::Acquire) != 0 {
            match self.shared.pop(own) {
                Some(job) => job(),
                None => {
                    // Nothing to help with: the scope's last jobs are running on
                    // other workers. Park on the shared condvar — the last job of
                    // a scope notifies it when `pending` hits zero, and pushes
                    // notify it too (new work to help with). The timeout is only
                    // a lost-wakeup safety net, not a polling interval.
                    let guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
                    if scope.pending.load(Ordering::Acquire) != 0
                        && self.shared.queued.load(Ordering::Acquire) == 0
                    {
                        let _ = self
                            .shared
                            .wakeup
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("sleep lock poisoned");
                    }
                }
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
            self.shared.wakeup.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
///
/// `'env` is the lifetime of the borrowed environment: spawned closures must
/// outlive it, and the scope blocks until they all ran, which is what makes the
/// internal lifetime erasure sound.
pub struct Scope<'env, 'pool> {
    pool: &'pool ThreadPool,
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Spawns a job onto the pool. The job may borrow from `'env`; it runs at most
    /// once, and [`ThreadPool::scope`] does not return before it finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::Release);
        // SAFETY of the lifetime erasure below: `scope` blocks in `wait` until
        // `pending` drops to zero, and `pending` is decremented only after the job
        // ran (or panicked), so the closure can never be invoked after `'env`
        // ends. The pointers to `pending`/`panic` stay valid for the same reason:
        // the `Scope` itself outlives every job. Panics are captured so the
        // counter is decremented on every path.
        struct ScopePtrs {
            pending: *const AtomicUsize,
            panic_slot: *const Mutex<Option<Box<dyn std::any::Any + Send>>>,
        }
        // SAFETY: the pointees are Sync (atomic + mutex) and outlive the job.
        unsafe impl Send for ScopePtrs {}
        let ptrs = ScopePtrs {
            pending: &self.pending,
            panic_slot: &self.panic,
        };
        let shared = Arc::clone(&self.pool.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // Bind the whole struct so the closure captures `ScopePtrs` (which is
            // Send) rather than its raw-pointer fields individually.
            let ptrs = ptrs;
            let result = catch_unwind(AssertUnwindSafe(f));
            // SAFETY: see above — the scope outlives the job.
            let (pending, panic_slot) = unsafe { (&*ptrs.pending, &*ptrs.panic_slot) };
            if let Err(payload) = result {
                let mut slot = panic_slot.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if pending.fetch_sub(1, Ordering::Release) == 1 {
                // Last job of the scope: wake its waiter (and any parked worker).
                let _guard = shared.sleep_lock.lock().expect("sleep lock poisoned");
                shared.wakeup.notify_all();
            }
        });
        // SAFETY: extend the closure's lifetime to 'static for storage in the
        // queue; execution is bounded by the scope as argued above.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        let own =
            WORKER.with(|w| w.get()).and_then(
                |(pool, w)| {
                    if pool == self.pool.id {
                        Some(w)
                    } else {
                        None
                    }
                },
            );
        self.pool.shared.push(job, own);
    }
}

/// The main loop of one worker thread.
fn worker_loop(shared: &Shared, pool_id: usize, index: usize) {
    WORKER.with(|w| w.set(Some((pool_id, index))));
    let jobs = counter!("soar_pool_jobs_total");
    let idle_ns = soar_obs::registry::counter_labeled(
        "soar_pool_idle_ns_total",
        format!("worker=\"{index}\""),
    );
    loop {
        if let Some(job) = shared.pop(Some(index)) {
            job();
            jobs.inc();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep_lock.lock().expect("sleep lock poisoned");
        if shared.queued.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // Untimed wait: idle workers burn no CPU. This is lossless because
            // both producers notify *after* publishing under `sleep_lock` —
            // `push` increments `queued` then locks + notifies, and `Drop` sets
            // `shutdown` then locks + notifies — so either this worker saw the
            // flag above or the producer blocks until this wait releases the
            // lock and its notification is delivered.
            let parked = std::time::Instant::now();
            let _guard = shared.wakeup.wait(guard).expect("sleep lock poisoned");
            idle_ns.add(parked.elapsed().as_nanos() as u64);
        }
    }
}

/// Worker count of the [`global`] pool: `SOAR_POOL_THREADS` if set, else one per
/// available core.
fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SOAR_POOL_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool, created on first use with [`default_threads`] workers.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::with_default_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let doubled = pool.map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert!(pool.map::<usize, usize, _>(&[], |&x| x).is_empty());
    }

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in 0..64u64 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let count = &count;
                outer.spawn(move || {
                    // Nested parallelism from inside a worker.
                    global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let items: Vec<u64> = (0..100).collect();
        let sums = pool.map(&items, |&x| x + 1);
        assert_eq!(sums[99], 100);
        let flag = AtomicBool::new(false);
        pool.scope(|s| s.spawn(|| flag.store(true, Ordering::Relaxed)));
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn panics_propagate_after_the_scope_drains() {
        let pool = ThreadPool::new(2);
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = &ran;
                s.spawn(|| panic!("job failed"));
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "the panic must resurface");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "sibling jobs still ran");
        // The pool remains usable after a panicked scope.
        assert_eq!(pool.map(&[1, 2, 3], |&x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_the_scope_closure_still_drains_spawned_jobs() {
        // Queued jobs borrow from the caller's frame; a panic in the scope
        // closure itself must not unwind past them (use-after-free otherwise).
        let pool = ThreadPool::new(2);
        let ran = AtomicU64::new(0);
        let data = vec![3u64; 64];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    let (ran, data) = (&ran, &data);
                    s.spawn(move || {
                        ran.fetch_add(data[0], Ordering::Relaxed);
                    });
                }
                panic!("scope closure failed after spawning");
            })
        }));
        assert!(result.is_err(), "the closure panic must resurface");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            8 * 3,
            "every spawned job drained before the unwind continued"
        );
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
