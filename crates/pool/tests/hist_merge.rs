//! Property test: [`LatencyHistogram::merge`] is associative and commutative —
//! folding per-connection client histograms in any grouping yields identical
//! quantiles, which is what lets `soar-loadtest` and `soar serve` share one
//! histogram code path without caring who folds first.

use soar_pool::hist::LatencyHistogram;

/// A cheap deterministic PRNG (xorshift*) so the test needs no rand dep.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Heavy-tailed latency-like samples: mostly ~1us, a slow band, a ms tail.
fn sample(rng: &mut XorShift) -> u64 {
    let r = rng.next();
    match r % 100 {
        0..=89 => 300 + r % 3_000,
        90..=98 => 15_000 + r % 300_000,
        _ => 2_000_000 + r % 80_000_000,
    }
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Every observable surface of the histogram, for equality checks.
fn fingerprint(h: &LatencyHistogram) -> (u64, u64, Vec<u64>) {
    let quantiles = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0]
        .iter()
        .map(|&q| h.quantile(q))
        .collect();
    (h.len(), h.max(), quantiles)
}

#[test]
fn merge_is_associative_and_commutative_over_random_partitions() {
    let mut rng = XorShift(0x0A55_0C1A_7E5E_ED42);
    for round in 0..20 {
        // Random partition of one sample stream into 3-6 "connections".
        let parts = 3 + (rng.next() % 4) as usize;
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); parts];
        let n = 2_000 + (rng.next() % 8_000) as usize;
        let mut all = Vec::with_capacity(n);
        for _ in 0..n {
            let v = sample(&mut rng);
            all.push(v);
            let shard = (rng.next() % parts as u64) as usize;
            shards[shard].push(v);
        }

        // Left fold: ((h0 ⊕ h1) ⊕ h2) ⊕ …
        let left = hist_of(&[]);
        for shard in &shards {
            left.merge(&hist_of(shard));
        }

        // Right fold: h0 ⊕ (h1 ⊕ (h2 ⊕ …))
        let right = hist_of(&[]);
        for shard in shards.iter().rev() {
            right.merge(&hist_of(shard));
        }

        // Pairwise tree fold: merge adjacent pairs until one remains.
        let mut level: Vec<LatencyHistogram> = shards.iter().map(|s| hist_of(s)).collect();
        while level.len() > 1 {
            let mut next = Vec::new();
            let mut iter = level.into_iter();
            while let Some(a) = iter.next() {
                if let Some(b) = iter.next() {
                    a.merge(&b);
                }
                next.push(a);
            }
            level = next;
        }
        let tree = level.pop().unwrap();

        // And recording everything into one histogram directly.
        let whole = hist_of(&all);

        let want = fingerprint(&whole);
        assert_eq!(
            fingerprint(&left),
            want,
            "left fold diverged (round {round})"
        );
        assert_eq!(
            fingerprint(&right),
            want,
            "right fold diverged (round {round})"
        );
        assert_eq!(
            fingerprint(&tree),
            want,
            "tree fold diverged (round {round})"
        );
    }
}

#[test]
fn merging_an_empty_histogram_is_the_identity() {
    let mut rng = XorShift(99);
    let samples: Vec<u64> = (0..5_000).map(|_| sample(&mut rng)).collect();
    let h = hist_of(&samples);
    let before = fingerprint(&h);
    h.merge(&LatencyHistogram::new());
    assert_eq!(fingerprint(&h), before);

    let fresh = LatencyHistogram::new();
    fresh.merge(&h);
    assert_eq!(fingerprint(&fresh), before);
}
