//! `$include` templating for user-authored spec files.
//!
//! Grid sweeps share most of their scenario (topology dimensions, load and
//! rate schemes, seeds) and differ in one or two knobs. Rather than inventing
//! a template language, spec documents may factor the shared part into a
//! *fragment file* and pull it in with an `$include` directive:
//!
//! ```json
//! { "$include": "fragments/fabric-base.json", "budget": 8 }
//! ```
//!
//! Resolution rules (applied to the parsed [`Value`] tree, before the document
//! is deserialized into an [`ExperimentSpec`] — so fragments compose at *any*
//! nesting level, not just the top):
//!
//! * The `$include` path is resolved **relative to the directory of the file
//!   containing the directive**, so spec bundles can be moved as a unit.
//! * Fragments are resolved recursively — a fragment may itself `$include`
//!   others — with a depth cap of [`MAX_INCLUDE_DEPTH`] to turn include
//!   cycles into an actionable error instead of a stack overflow.
//! * Sibling keys next to `$include` **override** the fragment's keys (or
//!   extend it, for keys the fragment lacks). The fragment must resolve to an
//!   object when siblings are present; an object whose *only* key is
//!   `$include` is replaced by the fragment value verbatim (any JSON type, so
//!   shared budget grids and solver lists work too).
//!
//! The root CLI routes every user spec file through
//! [`spec_from_document`]; fragment problems surface as exit-2 messages the
//! same way schema problems do.

use crate::spec::ExperimentSpec;
use serde::{Deserialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// The directive key that pulls a fragment file into an object.
pub const INCLUDE_KEY: &str = "$include";

/// Maximum depth of nested `$include` resolution. Deep include chains are
/// almost always cycles (`a.json` → `b.json` → `a.json`), so the cap exists
/// to report them as errors rather than recurse forever.
pub const MAX_INCLUDE_DEPTH: usize = 16;

/// Why `$include` resolution (or the final spec conversion) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    /// An included fragment file could not be read.
    Read {
        /// The fragment path after relative-path resolution.
        path: PathBuf,
        /// The underlying I/O error.
        message: String,
    },
    /// A document or fragment is not valid JSON.
    Parse {
        /// The file that failed to parse.
        path: PathBuf,
        /// The parser's message.
        message: String,
    },
    /// An `$include` directive is malformed (non-string path, or sibling keys
    /// next to a fragment that is not an object).
    Directive {
        /// The file containing the bad directive.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
    /// The include chain exceeded [`MAX_INCLUDE_DEPTH`] levels.
    TooDeep {
        /// The fragment at which the cap tripped.
        path: PathBuf,
    },
    /// The resolved document does not deserialize into an [`ExperimentSpec`].
    NotASpec {
        /// The deserializer's message.
        message: String,
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Read { path, message } => {
                write!(
                    f,
                    "cannot read included fragment {}: {message}",
                    path.display()
                )
            }
            TemplateError::Parse { path, message } => {
                write!(f, "{} is not valid JSON: {message}", path.display())
            }
            TemplateError::Directive { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            TemplateError::TooDeep { path } => write!(
                f,
                "$include chain deeper than {MAX_INCLUDE_DEPTH} levels at {} — \
                 is there an include cycle?",
                path.display()
            ),
            TemplateError::NotASpec { message } => {
                write!(f, "not an ExperimentSpec document: {message}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// Parses `text` (the contents of the spec file at `path`) and resolves every
/// `$include` directive, returning the expanded [`Value`] tree.
pub fn resolve_document(text: &str, path: &Path) -> Result<Value, TemplateError> {
    let value = serde_json::parse_value(text).map_err(|e| TemplateError::Parse {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    resolve(&value, path, &dir_of(path), 0)
}

/// Parses `text` with [`resolve_document`] and deserializes the expanded tree
/// into an [`ExperimentSpec`]. This does **not** call
/// [`validate`](ExperimentSpec::validate) — semantic checks stay with the
/// caller, which knows the context to report them in.
pub fn spec_from_document(text: &str, path: &Path) -> Result<ExperimentSpec, TemplateError> {
    let value = resolve_document(text, path)?;
    ExperimentSpec::from_value(&value).map_err(|e| TemplateError::NotASpec { message: e.0 })
}

/// The directory `$include` paths inside `file` resolve against.
fn dir_of(file: &Path) -> PathBuf {
    match file.parent() {
        Some(parent) if parent != Path::new("") => parent.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn kind_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::UInt(_) | Value::Int(_) | Value::Float(_) => "a number",
        Value::Str(_) => "a string",
        Value::Arr(_) => "an array",
        Value::Obj(_) => "an object",
    }
}

/// Reads, parses and recursively resolves one fragment file.
fn load_fragment(path: &Path, depth: usize) -> Result<Value, TemplateError> {
    if depth > MAX_INCLUDE_DEPTH {
        return Err(TemplateError::TooDeep {
            path: path.to_path_buf(),
        });
    }
    let text = std::fs::read_to_string(path).map_err(|e| TemplateError::Read {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let value = serde_json::parse_value(&text).map_err(|e| TemplateError::Parse {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    resolve(&value, path, &dir_of(path), depth)
}

/// Walks one value of `file`, expanding `$include` directives. `base_dir` is
/// the directory of `file` (relative include paths resolve against it) and
/// `depth` the number of include levels already on the stack.
fn resolve(
    value: &Value,
    file: &Path,
    base_dir: &Path,
    depth: usize,
) -> Result<Value, TemplateError> {
    let entries = match value {
        Value::Arr(items) => {
            let resolved = items
                .iter()
                .map(|item| resolve(item, file, base_dir, depth))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Value::Arr(resolved));
        }
        Value::Obj(entries) => entries,
        scalar => return Ok(scalar.clone()),
    };

    let Some((_, target)) = entries.iter().find(|(key, _)| key == INCLUDE_KEY) else {
        let resolved = entries
            .iter()
            .map(|(key, item)| Ok((key.clone(), resolve(item, file, base_dir, depth)?)))
            .collect::<Result<Vec<_>, TemplateError>>()?;
        return Ok(Value::Obj(resolved));
    };
    let Value::Str(relative) = target else {
        return Err(TemplateError::Directive {
            path: file.to_path_buf(),
            message: format!(
                "`{INCLUDE_KEY}` needs a string path to a fragment file, got {}",
                kind_name(target)
            ),
        });
    };
    let fragment = load_fragment(&base_dir.join(relative), depth + 1)?;
    let overrides = entries
        .iter()
        .filter(|(key, _)| key != INCLUDE_KEY)
        .map(|(key, item)| Ok((key.clone(), resolve(item, file, base_dir, depth)?)))
        .collect::<Result<Vec<(String, Value)>, TemplateError>>()?;
    if overrides.is_empty() {
        // `{"$include": "..."}` alone is replaced by the fragment verbatim,
        // whatever its type.
        return Ok(fragment);
    }
    let Value::Obj(mut merged) = fragment else {
        return Err(TemplateError::Directive {
            path: file.to_path_buf(),
            message: format!(
                "`{relative}` resolves to {}, but the keys next to `{INCLUDE_KEY}` ({}) \
                 can only override an object fragment",
                kind_name(&fragment),
                overrides
                    .iter()
                    .map(|(key, _)| key.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    };
    for (key, item) in overrides {
        match merged.iter_mut().find(|(existing, _)| *existing == key) {
            Some(slot) => slot.1 = item,
            None => merged.push((key, item)),
        }
    }
    Ok(Value::Obj(merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::Scale;

    /// A fresh scratch directory; recreated empty on every call.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soar-template-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, contents: &str) -> PathBuf {
        let path = dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn sibling_keys_override_and_extend_the_fragment() {
        let dir = scratch("override");
        write(&dir, "frag.json", r#"{"a": 1, "b": 2}"#);
        let doc = r#"{"$include": "frag.json", "b": 5, "c": 7}"#;
        let value = resolve_document(doc, &dir.join("spec.json")).unwrap();
        assert_eq!(value.get("a"), Some(&Value::UInt(1)));
        assert_eq!(value.get("b"), Some(&Value::UInt(5)));
        assert_eq!(value.get("c"), Some(&Value::UInt(7)));
        // Fragment key order is preserved; new keys append.
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["a", "b", "c"]);
    }

    #[test]
    fn lone_include_substitutes_any_fragment_type() {
        let dir = scratch("verbatim");
        write(&dir, "budgets.json", "[1, 2, 4, 8]");
        let doc = r#"{"grid": {"$include": "budgets.json"}}"#;
        let value = resolve_document(doc, &dir.join("spec.json")).unwrap();
        assert_eq!(
            value.get("grid"),
            Some(&Value::Arr(vec![
                Value::UInt(1),
                Value::UInt(2),
                Value::UInt(4),
                Value::UInt(8)
            ]))
        );
    }

    #[test]
    fn fragments_nest_and_resolve_relative_to_their_own_file() {
        let dir = scratch("nested");
        // spec.json → shared/outer.json → inner.json (sibling of outer, so the
        // path only works if resolution is relative to outer's directory).
        write(&dir, "shared/inner.json", r#"{"deep": true}"#);
        write(
            &dir,
            "shared/outer.json",
            r#"{"nested": {"$include": "inner.json"}, "x": 1}"#,
        );
        let doc = r#"{"$include": "shared/outer.json", "x": 2}"#;
        let value = resolve_document(doc, &dir.join("spec.json")).unwrap();
        assert_eq!(value.get("x"), Some(&Value::UInt(2)));
        assert_eq!(
            value.get("nested").and_then(|n| n.get("deep")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn include_cycles_hit_the_depth_cap() {
        let dir = scratch("cycle");
        write(&dir, "a.json", r#"{"$include": "b.json"}"#);
        write(&dir, "b.json", r#"{"$include": "a.json"}"#);
        let err =
            resolve_document(r#"{"$include": "a.json"}"#, &dir.join("spec.json")).unwrap_err();
        assert!(matches!(err, TemplateError::TooDeep { .. }), "{err}");
        assert!(err.to_string().contains("include cycle"), "{err}");
    }

    #[test]
    fn missing_and_malformed_fragments_are_reported_with_their_path() {
        let dir = scratch("errors");
        let err =
            resolve_document(r#"{"$include": "nope.json"}"#, &dir.join("spec.json")).unwrap_err();
        assert!(matches!(err, TemplateError::Read { .. }), "{err}");
        assert!(err.to_string().contains("nope.json"), "{err}");

        write(&dir, "broken.json", "{");
        let err =
            resolve_document(r#"{"$include": "broken.json"}"#, &dir.join("spec.json")).unwrap_err();
        assert!(matches!(err, TemplateError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("broken.json"), "{err}");
    }

    #[test]
    fn bad_directives_are_rejected() {
        let dir = scratch("directives");
        let spec_path = dir.join("spec.json");
        // Non-string include target.
        let err = resolve_document(r#"{"$include": 3}"#, &spec_path).unwrap_err();
        assert!(err.to_string().contains("needs a string path"), "{err}");
        // Sibling overrides next to a non-object fragment.
        write(&dir, "list.json", "[1, 2]");
        let err = resolve_document(r#"{"$include": "list.json", "k": 1}"#, &spec_path).unwrap_err();
        assert!(err.to_string().contains("an array"), "{err}");
        assert!(err.to_string().contains('k'), "{err}");
    }

    #[test]
    fn a_real_spec_round_trips_through_a_fragment() {
        // Factor a registry spec's whole body into a fragment and override its
        // name from the including document — the resolved document must
        // deserialize to the same spec (modulo the overridden field) and
        // validate cleanly.
        let dir = scratch("spec");
        let original = registry::by_name("fabric", Scale::Quick).unwrap();
        write(
            &dir,
            "base.json",
            &serde_json::to_string_pretty(&original).unwrap(),
        );
        let doc = r#"{"$include": "base.json", "name": "fabric-derived"}"#;
        let spec = spec_from_document(doc, &dir.join("spec.json")).unwrap();
        assert_eq!(spec.name, "fabric-derived");
        assert_eq!(spec.kind, original.kind);
        assert_eq!(spec.repetitions, original.repetitions);
        spec.validate().unwrap();

        // And a fragment that is not a spec reports the deserializer message.
        let err = spec_from_document(
            r#"{"$include": "base.json", "kind": 3}"#,
            &dir.join("s.json"),
        )
        .unwrap_err();
        assert!(matches!(err, TemplateError::NotASpec { .. }), "{err}");
    }
}
