//! Run artifacts: the persisted outcome of executing an [`ExperimentSpec`],
//! plus golden-snapshot diffing.
//!
//! A [`RunArtifact`] bundles the spec that produced it (so an artifact is
//! re-runnable and self-describing), an [`EnvStamp`], the rendered chart data,
//! aggregate DP statistics and — for the CLI `solve` / `sweep` paths — the raw
//! [`SolveReport`]s. Artifacts are JSON documents; [`diff`] compares a fresh
//! artifact against a committed golden within [`Tolerances`], treating
//! wall-clock *timing* charts structurally (same shape, positive values) since
//! their values are machine-dependent.
//!
//! Everything the artifact stores apart from the explicitly-flagged timing
//! charts is deterministic: running the same spec twice yields byte-identical
//! JSON for cost-based experiments.

use crate::chart::Chart;
use crate::spec::ExperimentSpec;
use serde::{Deserialize, Serialize};
use soar_core::api::{DpStats, SolveReport};

/// Where the artifact was produced. Deliberately excludes timestamps and
/// hostnames so that re-running a spec on the same toolchain yields
/// byte-identical artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvStamp {
    /// Version of the workspace that produced the artifact.
    pub package_version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Worker threads of the solve pool at run time.
    pub pool_threads: usize,
}

impl EnvStamp {
    /// Captures the current environment.
    pub fn current() -> Self {
        EnvStamp {
            package_version: env!("CARGO_PKG_VERSION").to_owned(),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            pool_threads: soar_pool::global().threads(),
        }
    }
}

/// The persisted outcome of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunArtifact {
    /// Schema version (mirrors [`crate::spec::SPEC_VERSION`]).
    pub format_version: u32,
    /// The spec that produced this artifact, verbatim.
    pub spec: ExperimentSpec,
    /// Environment stamp of the producing run.
    pub env: EnvStamp,
    /// The chart data (one entry per rendered sub-figure).
    pub charts: Vec<Chart>,
    /// Indices into `charts` whose y values are wall-clock timings
    /// (machine-dependent; golden diffs check them structurally).
    #[serde(default)]
    pub timing_charts: Vec<usize>,
    /// Aggregate DP statistics of the largest SOAR gather of the run, with the
    /// workspace-lifetime counters (`arena_peak_bytes`, `alloc_events`) zeroed:
    /// those depend on scheduling history, not on the spec, and are tracked by
    /// the gather microbench instead.
    pub dp: Option<DpStats>,
    /// Raw per-solve reports. Populated by the CLI `solve` / `sweep` artifacts
    /// and by small single-scenario experiments; grid experiments leave it
    /// empty (their aggregate lives in `charts`).
    #[serde(default)]
    pub reports: Vec<SolveReport>,
}

/// Canonicalizes DP statistics for storage in an artifact: the
/// workspace-lifetime counters (`arena_peak_bytes`, `alloc_events`,
/// `cells_written`) depend on scheduling / warm-up history rather than on the
/// spec, and [`diff`] compares `dp` exactly, so they are zeroed before
/// persisting. (The dynamic-churn experiments chart their per-epoch cell
/// writes explicitly instead.)
pub fn canonical_dp(mut dp: DpStats) -> DpStats {
    dp.arena_peak_bytes = 0;
    dp.alloc_events = 0;
    dp.cells_written = 0;
    // The kernel is runtime-selectable (`SOAR_GATHER_KERNEL`), and the tile /
    // pruning counters follow it — normalize all three so an operator's kernel
    // override can never dirty a golden artifact.
    dp.kernel = soar_core::DpKernel::Auto;
    dp.tiles = 0;
    dp.pruned_splits = 0;
    dp
}

impl RunArtifact {
    /// Assembles an artifact around a spec and its rendered charts. The DP
    /// statistics are canonicalized (see [`canonical_dp`]) so that artifacts
    /// diff cleanly across machines and pool configurations.
    pub fn new(spec: ExperimentSpec, charts: Vec<Chart>, dp: Option<DpStats>) -> Self {
        let timing_charts = spec.timing_chart_indices();
        RunArtifact {
            format_version: crate::spec::SPEC_VERSION,
            spec,
            env: EnvStamp::current(),
            charts,
            timing_charts,
            dp: dp.map(canonical_dp),
            reports: Vec::new(),
        }
    }

    /// Serializes the artifact as pretty-printed JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("artifacts always serialize");
        out.push('\n');
        out
    }

    /// Parses an artifact from its JSON document.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Per-value tolerances for golden diffs.
///
/// A value passes when `|new - golden| <= abs + rel * |golden|`. Timing charts
/// ignore both bounds: their values are checked for shape and positivity only
/// (pass `timing_rel` to additionally bound their relative drift, e.g. for
/// same-machine perf tracking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Relative tolerance on non-timing values.
    pub rel: f64,
    /// Absolute tolerance on non-timing values.
    pub abs: f64,
    /// Optional relative bound on timing values (`None` = structural only).
    pub timing_rel: Option<f64>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rel: 1e-9,
            abs: 1e-12,
            timing_rel: None,
        }
    }
}

impl Tolerances {
    /// Exact comparison (zero tolerance) on non-timing values.
    pub fn exact() -> Self {
        Tolerances {
            rel: 0.0,
            abs: 0.0,
            timing_rel: None,
        }
    }
}

/// The outcome of a golden diff: an empty mismatch list means the artifact is
/// within tolerance of the golden.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Human-readable mismatch descriptions, one per deviation.
    pub mismatches: Vec<String>,
}

impl DiffReport {
    /// `true` when nothing deviated.
    pub fn is_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    fn push(&mut self, message: String) {
        self.mismatches.push(message);
    }
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_match() {
            write!(f, "artifacts match")
        } else {
            writeln!(f, "{} mismatch(es):", self.mismatches.len())?;
            for m in &self.mismatches {
                writeln!(f, "  - {m}")?;
            }
            Ok(())
        }
    }
}

/// Compares a freshly-produced artifact against a committed golden.
///
/// Structure (spec identity, chart titles, series labels, x grids) must match
/// exactly; y values must match within `tol`; timing charts are checked
/// structurally (finite, non-negative) unless `tol.timing_rel` bounds them.
pub fn diff(golden: &RunArtifact, new: &RunArtifact, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    if golden.format_version != new.format_version {
        report.push(format!(
            "format version changed: golden {} vs new {}",
            golden.format_version, new.format_version
        ));
        return report;
    }
    if golden.spec.name != new.spec.name {
        report.push(format!(
            "spec name changed: golden `{}` vs new `{}`",
            golden.spec.name, new.spec.name
        ));
        return report;
    }
    if golden.spec != new.spec {
        report.push("spec body changed (same name, different parameters)".to_owned());
    }
    if golden.charts.len() != new.charts.len() {
        report.push(format!(
            "chart count changed: golden {} vs new {}",
            golden.charts.len(),
            new.charts.len()
        ));
        return report;
    }
    for (idx, (g, n)) in golden.charts.iter().zip(&new.charts).enumerate() {
        let timing = golden.timing_charts.contains(&idx);
        diff_chart(idx, g, n, timing, tol, &mut report);
    }
    match (&golden.dp, &new.dp) {
        (Some(g), Some(n)) if g != n => {
            report.push(format!("dp stats changed: golden {g:?} vs new {n:?}"));
        }
        (Some(_), None) => report.push("dp stats disappeared".to_owned()),
        (None, Some(_)) => report.push("dp stats appeared (golden has none)".to_owned()),
        _ => {}
    }
    report
}

fn diff_chart(
    idx: usize,
    golden: &Chart,
    new: &Chart,
    timing: bool,
    tol: &Tolerances,
    report: &mut DiffReport,
) {
    if golden.title != new.title {
        report.push(format!(
            "chart {idx}: title changed: `{}` vs `{}`",
            golden.title, new.title
        ));
        return;
    }
    if golden.series.len() != new.series.len() {
        report.push(format!(
            "chart `{}`: series count changed: {} vs {}",
            golden.title,
            golden.series.len(),
            new.series.len()
        ));
        return;
    }
    for (g, n) in golden.series.iter().zip(&new.series) {
        if g.label != n.label {
            report.push(format!(
                "chart `{}`: series label changed: `{}` vs `{}`",
                golden.title, g.label, n.label
            ));
            continue;
        }
        if g.points.len() != n.points.len() {
            report.push(format!(
                "chart `{}` series `{}`: point count changed: {} vs {}",
                golden.title,
                g.label,
                g.points.len(),
                n.points.len()
            ));
            continue;
        }
        for (&(gx, gy), &(nx, ny)) in g.points.iter().zip(&n.points) {
            if (gx - nx).abs() > 1e-9 {
                report.push(format!(
                    "chart `{}` series `{}`: x grid moved ({gx} vs {nx})",
                    golden.title, g.label
                ));
                continue;
            }
            if timing {
                if !ny.is_finite() || ny < 0.0 {
                    report.push(format!(
                        "chart `{}` series `{}` at x = {gx}: timing value {ny} is not a \
                         non-negative finite number",
                        golden.title, g.label
                    ));
                } else if let Some(rel) = tol.timing_rel {
                    if (ny - gy).abs() > rel * gy.abs() {
                        report.push(format!(
                            "chart `{}` series `{}` at x = {gx}: timing drift {ny} vs {gy} \
                             exceeds rel {rel}",
                            golden.title, g.label
                        ));
                    }
                }
            } else if (ny - gy).abs() > tol.abs + tol.rel * gy.abs() {
                report.push(format!(
                    "chart `{}` series `{}` at x = {gx}: {ny} vs golden {gy} \
                     (|Δ| = {:.3e} > abs {} + rel {} · |golden|)",
                    golden.title,
                    g.label,
                    (ny - gy).abs(),
                    tol.abs,
                    tol.rel
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Series;
    use crate::spec::{ExperimentKind, ScenarioSpec};

    fn tiny_artifact(y: f64) -> RunArtifact {
        let spec = ExperimentSpec::new(
            "tiny",
            "tiny test artifact",
            1,
            ExperimentKind::SolverComparison {
                title: "tiny".into(),
                scenario: ScenarioSpec::sf(16, 0),
                budget: 1,
                solvers: vec!["soar".into()],
                include_all_red: false,
            },
        );
        let mut chart = Chart::new("tiny", "k", "cost");
        let mut series = Series::new("SOAR");
        series.push(1.0, y);
        chart.push(series);
        RunArtifact::new(spec, vec![chart], None)
    }

    #[test]
    fn identical_artifacts_match() {
        let a = tiny_artifact(5.0);
        assert!(diff(&a, &a, &Tolerances::default()).is_match());
        assert!(diff(&a, &a, &Tolerances::exact()).is_match());
    }

    #[test]
    fn value_drift_is_caught_and_tolerated() {
        let golden = tiny_artifact(5.0);
        let drifted = tiny_artifact(5.0 + 1e-6);
        assert!(!diff(&golden, &drifted, &Tolerances::default()).is_match());
        let loose = Tolerances {
            rel: 1e-3,
            abs: 0.0,
            timing_rel: None,
        };
        assert!(diff(&golden, &drifted, &loose).is_match());
    }

    #[test]
    fn structural_changes_are_caught() {
        let golden = tiny_artifact(5.0);
        let mut renamed = tiny_artifact(5.0);
        renamed.charts[0].series[0].label = "Other".into();
        assert!(!diff(&golden, &renamed, &Tolerances::default()).is_match());

        let mut extra = tiny_artifact(5.0);
        extra.charts.push(Chart::new("extra", "x", "y"));
        let report = diff(&golden, &extra, &Tolerances::default());
        assert!(report.to_string().contains("chart count changed"));
    }

    #[test]
    fn timing_charts_compare_structurally() {
        let mut golden = tiny_artifact(0.010);
        golden.timing_charts = vec![0];
        let mut faster = tiny_artifact(0.002);
        faster.timing_charts = vec![0];
        // 5x timing drift passes a structural check...
        assert!(diff(&golden, &faster, &Tolerances::default()).is_match());
        // ...but a negative timing never does.
        let mut negative = tiny_artifact(-1.0);
        negative.timing_charts = vec![0];
        assert!(!diff(&golden, &negative, &Tolerances::default()).is_match());
        // And an explicit timing_rel bounds the drift.
        let bounded = Tolerances {
            timing_rel: Some(0.5),
            ..Tolerances::default()
        };
        assert!(!diff(&golden, &faster, &bounded).is_match());
    }

    #[test]
    fn artifacts_round_trip_through_json() {
        let artifact = tiny_artifact(5.0);
        let json = artifact.to_json();
        let parsed = RunArtifact::from_json(&json).unwrap();
        assert_eq!(parsed, artifact);
        assert!(RunArtifact::from_json("not json").is_err());
    }
}
