//! The allocation-free gather microbench behind `BENCH_gather.json`.
//!
//! One instrumented measurement per tree size: wall time of a fresh
//! (allocate-every-time) SOAR-Gather versus a warm
//! [`SolverWorkspace`](soar_core::workspace::SolverWorkspace) replay, plus the
//! workspace's allocation count and peak arena footprint. The measurements are
//! persisted as a regular [`RunArtifact`](crate::artifact::RunArtifact) (kind
//! [`GatherMicrobench`](crate::spec::ExperimentKind::GatherMicrobench)), so the
//! perf trajectory shares the figure experiments' snapshot/diff tooling.

use crate::chart::{Chart, Series};
use crate::spec::ScenarioSpec;
use serde::{Deserialize, Serialize};
use soar_core::workspace::SolverWorkspace;
use soar_topology::load::LoadSpec;
use soar_topology::rates::RateScheme;
use std::time::Instant;

/// The budget the default microbench solves for (mid-range: large enough that
/// the `k²` inner loops dominate, small enough that 16k switches stay
/// sub-second).
pub const GATHER_BENCH_BUDGET: usize = 16;

/// Tree sizes of the default microbench, in **switches** (the paper's `BT(n)`
/// counts the destination, so these are `BT(1024)`, `BT(4096)`, `BT(16384)`).
pub const GATHER_BENCH_SIZES: [usize; 3] = [1024, 4096, 16384];

/// One measured point of the gather microbench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatherBenchPoint {
    /// Number of switches in the instance.
    pub n_switches: usize,
    /// The budget `k`.
    pub budget: usize,
    /// Mean wall time of a fresh gather (new arena every call), in seconds.
    pub fresh_seconds: f64,
    /// Mean wall time of a warm-workspace gather, in seconds.
    pub warm_seconds: f64,
    /// Buffer (re)allocations of the *last* warm pass — 0 is the invariant the
    /// allocation-free gather guarantees.
    pub warm_alloc_events: usize,
    /// Peak workspace footprint (arena + scratch), in bytes.
    pub peak_arena_bytes: usize,
}

/// The `BT(n)` instance the microbench times (power-law leaf loads, constant
/// rates, fixed seed — same family as the Fig. 9 scaling study), at the default
/// [`GATHER_BENCH_BUDGET`].
pub fn gather_bench_instance(n: usize) -> soar_core::api::Instance {
    gather_bench_instance_with_budget(n, GATHER_BENCH_BUDGET)
}

/// [`gather_bench_instance`] with an explicit budget — the single definition of
/// the benchmark scenario family, shared by the criterion bench, the
/// `BENCH_gather.json` snapshot and the `gather-bench` registry spec.
pub fn gather_bench_instance_with_budget(n: usize, budget: usize) -> soar_core::api::Instance {
    gather_bench_instance_shaped(n, budget, None)
}

/// The fully general benchmark instance: `BT(n)` when `arity` is `None`, a
/// complete `arity`-ary tree over `n` switches otherwise (the `gather-scale`
/// shape — at arity 16 a 1M-switch tree is only 5 levels deep, which is what
/// keeps `n_l` and the arena bounded at datacenter scale). Loads, rates and
/// seed are identical across shapes so timings compare like for like.
pub fn gather_bench_instance_shaped(
    n: usize,
    budget: usize,
    arity: Option<usize>,
) -> soar_core::api::Instance {
    let mut spec = ScenarioSpec::bt(
        n,
        LoadSpec::paper_power_law(),
        RateScheme::paper_constant(),
        1,
    );
    if let Some(arity) = arity {
        spec.topology = soar_core::api::TopologySpec::CompleteKary {
            arity,
            n_switches: n,
        };
    }
    spec.instance(budget)
}

/// Times one instance: `reps` fresh gathers vs `reps` warm-workspace gathers
/// (after one untimed warm-up each).
pub fn measure_gather(instance: &soar_core::api::Instance, reps: usize) -> GatherBenchPoint {
    let tree = instance.tree();
    let k = instance.budget();
    let reps = reps.max(1);

    let _ = soar_core::soar_gather(tree, k);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(soar_core::soar_gather(tree, k));
    }
    let fresh_seconds = start.elapsed().as_secs_f64() / reps as f64;

    let mut ws = SolverWorkspace::new();
    let _ = ws.gather(tree, k);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ws.gather(tree, k));
    }
    let warm_seconds = start.elapsed().as_secs_f64() / reps as f64;

    GatherBenchPoint {
        n_switches: tree.n_switches(),
        budget: k,
        fresh_seconds,
        warm_seconds,
        warm_alloc_events: ws.last_alloc_events(),
        peak_arena_bytes: ws.peak_bytes(),
    }
}

/// Runs the microbench: one point per size, with repetition counts scaled down
/// for the larger trees so a smoke run stays fast.
pub fn gather_microbench(sizes: &[usize], budget: usize) -> Vec<GatherBenchPoint> {
    gather_microbench_shaped(sizes, budget, None)
}

/// [`gather_microbench`] over an explicit tree shape (see
/// [`gather_bench_instance_shaped`]). Repetition counts scale down with size;
/// the 100k+ `gather-scale` instances run twice each.
pub fn gather_microbench_shaped(
    sizes: &[usize],
    budget: usize,
    arity: Option<usize>,
) -> Vec<GatherBenchPoint> {
    sizes
        .iter()
        .map(|&n| {
            let reps = (16384 / n.max(1)).clamp(2, 12);
            measure_gather(&gather_bench_instance_shaped(n, budget, arity), reps)
        })
        .collect()
}

/// One measured point of the tracing-overhead bench: the same warm gather
/// timed with span tracing disabled vs enabled. Enabled means spans are
/// recorded into the calling thread's ring and the DP counters tick — but
/// nothing is drained, which is the steady state of a daemon between
/// `/metrics` scrapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatherObsPoint {
    /// Number of switches in the instance.
    pub n_switches: usize,
    /// The budget `k`.
    pub budget: usize,
    /// Mean wall time of a warm gather with tracing disabled, in seconds.
    pub warm_seconds: f64,
    /// Mean wall time of the same warm gather with tracing enabled, in
    /// seconds.
    pub warm_obs_seconds: f64,
}

impl GatherObsPoint {
    /// `warm_obs_seconds / warm_seconds` — the multiplicative cost of leaving
    /// tracing on (1.0 = free; the CI gate budgets 1.02 plus timer slack).
    pub fn overhead_ratio(&self) -> f64 {
        if self.warm_seconds == 0.0 {
            1.0
        } else {
            self.warm_obs_seconds / self.warm_seconds
        }
    }
}

/// Times one instance's warm gather with tracing off vs on. The two modes are
/// interleaved rep by rep (off, on, off, on, ...) and each mode keeps its
/// fastest rep, so frequency drift and scheduler interference — which hit
/// both modes alike — cancel out of the overhead ratio instead of flaking
/// the CI gate. Tracing is restored to its previous state afterwards.
pub fn measure_gather_obs(instance: &soar_core::api::Instance, reps: usize) -> GatherObsPoint {
    let tree = instance.tree();
    let k = instance.budget();
    let reps = reps.max(2);
    let was_on = soar_obs::tracing_enabled();

    let mut ws = SolverWorkspace::new();
    soar_obs::set_tracing(false);
    let _ = ws.gather(tree, k);
    soar_obs::set_tracing(true);
    let _ = ws.gather(tree, k);

    let mut warm_seconds = f64::INFINITY;
    let mut warm_obs_seconds = f64::INFINITY;
    for _ in 0..reps {
        soar_obs::set_tracing(false);
        let start = Instant::now();
        std::hint::black_box(ws.gather(tree, k));
        warm_seconds = warm_seconds.min(start.elapsed().as_secs_f64());

        soar_obs::set_tracing(true);
        let start = Instant::now();
        std::hint::black_box(ws.gather(tree, k));
        warm_obs_seconds = warm_obs_seconds.min(start.elapsed().as_secs_f64());
    }

    soar_obs::set_tracing(was_on);
    GatherObsPoint {
        n_switches: tree.n_switches(),
        budget: k,
        warm_seconds,
        warm_obs_seconds,
    }
}

/// Runs the tracing-overhead bench over the standard microbench instances.
pub fn gather_obs_bench(sizes: &[usize], budget: usize) -> Vec<GatherObsPoint> {
    sizes
        .iter()
        .map(|&n| {
            // Flat 12 interleaved pairs: even the 16k point costs < 1 s, and
            // min-of-12 keeps the overhead ratio stable enough for a tight
            // CI gate on shared runners.
            measure_gather_obs(&gather_bench_instance_with_budget(n, budget), 12)
        })
        .collect()
}

/// Renders obs-bench points as the artifact's chart set: wall times with
/// tracing off/on (chart 0) and the enabled/disabled overhead ratio
/// (chart 1). Both are *timing* charts.
pub fn obs_bench_charts(points: &[GatherObsPoint]) -> Vec<Chart> {
    let mut wall = Chart::new(
        "warm gather wall time, tracing off vs on",
        "n switches",
        "wall time [ms]",
    );
    let mut off = Series::new("tracing off");
    let mut on = Series::new("tracing on");
    let mut ratio = Chart::new(
        "tracing overhead ratio",
        "n switches",
        "enabled / disabled wall time",
    );
    let mut ratio_series = Series::new("overhead_ratio");
    for p in points {
        let x = p.n_switches as f64;
        off.push(x, p.warm_seconds * 1e3);
        on.push(x, p.warm_obs_seconds * 1e3);
        ratio_series.push(x, p.overhead_ratio());
    }
    wall.push(off);
    wall.push(on);
    ratio.push(ratio_series);
    vec![wall, ratio]
}

/// Renders microbench points as the artifact's chart set: wall times (chart 0,
/// a *timing* chart), warm allocation events (chart 1 — the allocation-free
/// invariant, diffed exactly) and the peak workspace footprint (chart 2).
pub fn microbench_charts(points: &[GatherBenchPoint]) -> Vec<Chart> {
    let mut wall = Chart::new("SOAR-Gather wall time", "n switches", "wall time [ms]");
    let mut fresh = Series::new("fresh");
    let mut warm = Series::new("warm");
    let mut allocs = Chart::new(
        "warm gather allocation events",
        "n switches",
        "allocations per warm pass",
    );
    let mut alloc_series = Series::new("warm_alloc_events");
    let mut peak = Chart::new(
        "workspace peak footprint",
        "n switches",
        "peak arena + scratch [bytes]",
    );
    let mut peak_series = Series::new("peak_arena_bytes");
    for p in points {
        let x = p.n_switches as f64;
        fresh.push(x, p.fresh_seconds * 1e3);
        warm.push(x, p.warm_seconds * 1e3);
        alloc_series.push(x, p.warm_alloc_events as f64);
        peak_series.push(x, p.peak_arena_bytes as f64);
    }
    wall.push(fresh);
    wall.push(warm);
    allocs.push(alloc_series);
    peak.push(peak_series);
    vec![wall, allocs, peak]
}

/// Reads microbench points back out of an artifact's charts (the inverse of
/// [`microbench_charts`], used by perf-tracking tooling and the legacy-format
/// compat path in `soar-bench`).
pub fn points_from_charts(charts: &[Chart]) -> Option<Vec<GatherBenchPoint>> {
    let wall = charts.first()?;
    let allocs = charts.get(1)?.series.first()?;
    let peak = charts.get(2)?.series.first()?;
    let fresh = wall.series.first()?;
    let warm = wall.series.get(1)?;
    let mut points = Vec::new();
    for (idx, &(x, fresh_ms)) in fresh.points.iter().enumerate() {
        let &(_, warm_ms) = warm.points.get(idx)?;
        let &(_, alloc_events) = allocs.points.get(idx)?;
        let &(_, peak_bytes) = peak.points.get(idx)?;
        points.push(GatherBenchPoint {
            n_switches: x as usize,
            budget: 0, // budget travels in the spec, not the charts
            fresh_seconds: fresh_ms / 1e3,
            warm_seconds: warm_ms / 1e3,
            warm_alloc_events: alloc_events as usize,
            peak_arena_bytes: peak_bytes as usize,
        });
    }
    Some(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_measures_and_renders() {
        let points = gather_microbench(&[128], 4);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.n_switches, 127);
        assert_eq!(p.budget, 4);
        assert!(p.fresh_seconds > 0.0 && p.warm_seconds > 0.0);
        assert_eq!(p.warm_alloc_events, 0, "warm gather must not allocate");
        assert!(p.peak_arena_bytes > 0);

        let charts = microbench_charts(&points);
        assert_eq!(charts.len(), 3);
        assert_eq!(charts[0].series.len(), 2);
        let recovered = points_from_charts(&charts).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].n_switches, 127);
        assert_eq!(recovered[0].warm_alloc_events, 0);
        assert!((recovered[0].fresh_seconds - p.fresh_seconds).abs() < 1e-12);
    }

    #[test]
    fn obs_bench_measures_and_restores_tracing_state() {
        let was_on = soar_obs::tracing_enabled();
        let points = gather_obs_bench(&[128], 4);
        assert_eq!(soar_obs::tracing_enabled(), was_on);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.n_switches, 127);
        assert_eq!(p.budget, 4);
        assert!(p.warm_seconds > 0.0 && p.warm_obs_seconds > 0.0);
        assert!(p.overhead_ratio() > 0.0);

        let charts = obs_bench_charts(&points);
        assert_eq!(charts.len(), 2);
        assert_eq!(charts[0].series.len(), 2);
        assert_eq!(charts[1].series[0].points[0].1, p.overhead_ratio());
    }
}
