//! The named experiment registry: every figure of the paper's evaluation
//! (Figs. 2, 3, 6–11), the `DESIGN.md` ablation and the gather perf microbench
//! as ready-made [`ExperimentSpec`]s.
//!
//! Each constructor encodes the exact topology sizes, load/rate grids, budgets
//! and — importantly — the per-figure seed strides of the historical
//! `soar-bench` experiment functions, so a registry spec reproduces the same
//! numbers the bench harness has always printed. `soar experiment list` prints
//! this registry; `soar experiment run <name>` executes one entry.

use crate::spec::{
    ByteSeriesSpec, ExperimentKind, ExperimentSpec, GridCell, OnlineCell, OnlineSweep, Scale,
    ScalingFamily, ScenarioSpec, UseCaseSpec,
};
use soar_core::api::TopologySpec;
use soar_fabric::{FabricSpec, FabricTopology};
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::rates::RateScheme;

/// Registry names of all predefined experiments, in run order.
pub const NAMES: [&str; 18] = [
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig9-smoke",
    "fig10a",
    "fig10b",
    "fig11a",
    "fig11c",
    "ablation",
    "gather-bench",
    "obs-bench",
    "gather-scale",
    "dynamic-churn",
    "fabric",
    "fabric-sweep",
];

/// The paper's `BT(n)` evaluation size for a scale.
pub fn bt_size(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 256,
        Scale::Quick => 128,
    }
}

/// The default repetition count for a scale (the paper averages over 10).
pub fn default_repetitions(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 10,
        Scale::Quick => 3,
    }
}

fn budgets() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

fn exponents(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Paper => (8..=12).collect(),
        Scale::Quick => (8..=10).collect(),
    }
}

/// The three link-rate regimes of Sec. 5 (Figs. 6a-6c and 7a-7c), in the
/// paper's plotting order. The single source of truth for the grid orderings —
/// `soar_bench::instances::rate_schemes` delegates here.
pub fn rate_schemes() -> [RateScheme; 3] {
    [
        RateScheme::paper_constant(),
        RateScheme::paper_linear(),
        RateScheme::paper_exponential(),
    ]
}

/// The Fig. 2 motivating example: 7 switches, leaf loads 2/6/5/4.
fn fig2_scenario() -> ScenarioSpec {
    ScenarioSpec {
        topology: TopologySpec::CompleteKary {
            arity: 2,
            n_switches: 7,
        },
        load: Some(LoadSpec::Explicit(vec![2, 6, 5, 4])),
        placement: Some(LoadPlacement::Leaves),
        rates: None,
        seed: 0,
    }
}

fn fig2() -> ExperimentSpec {
    ExperimentSpec::new(
        "fig2",
        "Motivating example: utilization of the four strategies at k = 2",
        1,
        ExperimentKind::SolverComparison {
            title: "Fig. 2: motivating example (7 switches, loads 2/6/5/4, k = 2)".into(),
            scenario: fig2_scenario(),
            budget: 2,
            solvers: vec![
                "top".into(),
                "max-load".into(),
                "level".into(),
                "soar".into(),
            ],
            include_all_red: false,
        },
    )
}

fn fig3() -> ExperimentSpec {
    ExperimentSpec::new(
        "fig3",
        "Optimal utilization of the motivating example for k = 0..4",
        1,
        ExperimentKind::BudgetCurve {
            title: "Fig. 3: optimal utilization vs. budget on the motivating example".into(),
            scenario: fig2_scenario(),
            budgets: vec![0, 1, 2, 3, 4],
            series_label: "SOAR (optimal)".into(),
        },
    )
}

/// The two leaf-load distributions compared throughout Sec. 5, in the paper's
/// plotting order (power-law on top), with their figure-caption labels. The
/// single source of truth for the grid orderings — `soar_bench::instances::LoadKind::ALL`
/// mirrors this order.
pub fn paper_loads() -> [(LoadSpec, &'static str); 2] {
    [
        (LoadSpec::paper_power_law(), "power-law"),
        (LoadSpec::paper_uniform(), "uniform"),
    ]
}

fn fig6(scale: Scale) -> ExperimentSpec {
    let n = bt_size(scale);
    let mut cells = Vec::new();
    for (load, load_label) in paper_loads() {
        for scheme in rate_schemes() {
            cells.push(GridCell {
                title: format!(
                    "Fig. 6: BT({n}), {load_label} load, {} rates",
                    scheme.label()
                ),
                load: load.clone(),
                rates: scheme,
            });
        }
    }
    ExperimentSpec::new(
        "fig6",
        "Normalized utilization vs. budget per strategy, load and rate scheme",
        default_repetitions(scale),
        ExperimentKind::StrategyGrid {
            n,
            cells,
            budgets: budgets(),
            solvers: vec![
                "max-load".into(),
                "soar".into(),
                "top".into(),
                "level".into(),
            ],
            seed_stride: 31,
            per_rep_solver_seed: false,
            include_baselines: true,
        },
    )
}

fn fig7(scale: Scale) -> ExperimentSpec {
    let n = bt_size(scale);
    let mut cells = Vec::new();
    for scheme in rate_schemes() {
        cells.push(OnlineCell {
            title: format!(
                "Fig. 7 (top): workloads sweep, {} rates, capacity 4",
                scheme.label()
            ),
            rates: scheme.clone(),
            sweep: OnlineSweep::Workloads {
                counts: vec![4, 8, 16, 24, 32],
                capacity: 4,
            },
            seed_stride: 7,
        });
        cells.push(OnlineCell {
            title: format!(
                "Fig. 7 (bottom): capacity sweep, {} rates, 32 workloads",
                scheme.label()
            ),
            rates: scheme,
            sweep: OnlineSweep::Capacity {
                capacities: vec![2, 4, 8, 16, 32],
                workloads: 32,
            },
            seed_stride: 13,
        });
    }
    ExperimentSpec::new(
        "fig7",
        "Online multi-workload scenario: workload-count and capacity sweeps",
        default_repetitions(scale),
        ExperimentKind::OnlineMultitenant {
            n,
            budget: 16,
            solvers: vec![
                "max-load".into(),
                "soar".into(),
                "top".into(),
                "level".into(),
            ],
            cells,
        },
    )
}

fn fig8(scale: Scale) -> ExperimentSpec {
    let n = bt_size(scale);
    let mut series = Vec::new();
    // Inverted nesting vs. Fig. 6: Fig. 8 plots uniform before power-law.
    for (load, load_label) in [
        (LoadSpec::paper_uniform(), "uniform"),
        (LoadSpec::paper_power_law(), "power-law"),
    ] {
        for (use_case, uc_label) in [
            (UseCaseSpec::WordCount, "WC"),
            (UseCaseSpec::ParameterServer, "PS"),
        ] {
            series.push(ByteSeriesSpec {
                label: format!("{uc_label}-{load_label}"),
                load: load.clone(),
                use_case,
            });
        }
    }
    ExperimentSpec::new(
        "fig8",
        "WC and PS use cases: utilization and byte volumes vs. budget",
        default_repetitions(scale),
        ExperimentKind::UseCaseBytes {
            n,
            budgets: vec![1, 2, 4, 8, 16, 32, 64],
            seed_stride: 97,
            rates: RateScheme::paper_constant(),
            titles: vec![
                format!("Fig. 8a: utilization, BT({n}), constant rates"),
                format!("Fig. 8b: bytes vs all-red, BT({n})"),
                format!("Fig. 8c: bytes vs all-blue, BT({n})"),
            ],
            series,
        },
    )
}

fn fig9(scale: Scale) -> ExperimentSpec {
    let (sizes, budgets) = match scale {
        Scale::Paper => (vec![256, 512, 1024, 2048], vec![4, 8, 16, 32, 64, 128]),
        Scale::Quick => (vec![256, 512], vec![4, 8, 16, 32]),
    };
    ExperimentSpec::new(
        "fig9",
        "SOAR wall-clock solve time for growing sizes and budgets",
        default_repetitions(scale),
        ExperimentKind::SolveTime {
            title: "Fig. 9: SOAR solve time (seconds)".into(),
            sizes,
            budgets,
            seed_stride: 3,
        },
    )
}

/// A scaled-down Fig. 9 for the CI `experiment-smoke` job: one repetition over
/// small trees, checked structurally against a committed golden.
fn fig9_smoke() -> ExperimentSpec {
    ExperimentSpec::new(
        "fig9-smoke",
        "CI smoke variant of Fig. 9 (small sizes, one repetition)",
        1,
        ExperimentKind::SolveTime {
            title: "Fig. 9: SOAR solve time (seconds)".into(),
            sizes: vec![128, 256],
            budgets: vec![4, 8],
            seed_stride: 3,
        },
    )
}

fn fig10a(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig10a",
        "Scaling of SOAR on BT(n) for k in {1% n, log2 n, sqrt n}",
        default_repetitions(scale),
        ExperimentKind::ScalingBudgets {
            title: "Fig. 10a: scaling of SOAR on BT(n), power-law load".into(),
            family: ScalingFamily::BtPowerLaw,
            exponents: exponents(scale),
            seed_stride: 19,
        },
    )
}

fn fig10b(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig10b",
        "Smallest blue fraction reaching a 30/50/70% utilization saving",
        default_repetitions(scale),
        ExperimentKind::RequiredFraction {
            title: "Fig. 10b: % of blue nodes needed for a target utilization reduction".into(),
            exponents: exponents(scale),
            targets: vec![0.30, 0.50, 0.70],
            // The paper's curves stay below 5%, but a single repetition of the
            // heavy-tailed load needs some headroom.
            search_fraction: 0.08,
            seed_stride: 23,
        },
    )
}

fn fig11a() -> ExperimentSpec {
    ExperimentSpec::new(
        "fig11a",
        "The worked SF(128) example: Max-degree vs. SOAR at k = 4",
        1,
        ExperimentKind::SolverComparison {
            title: "Fig. 11a/b: SF(128) example, unit loads, k = 4".into(),
            scenario: ScenarioSpec::sf(128, 42),
            budget: 4,
            solvers: vec!["max-degree".into(), "soar".into()],
            include_all_red: true,
        },
    )
}

fn fig11c(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new(
        "fig11c",
        "Scaling of SOAR on SF(n) for k in {1% n, log2 n, sqrt n}",
        default_repetitions(scale),
        ExperimentKind::ScalingBudgets {
            title: "Fig. 11c: scaling of SOAR on SF(n), unit loads".into(),
            family: ScalingFamily::SfUnit,
            exponents: exponents(scale),
            seed_stride: 29,
        },
    )
}

fn ablation(scale: Scale) -> ExperimentSpec {
    let n = bt_size(scale);
    ExperimentSpec::new(
        "ablation",
        "SOAR's exact DP vs. the greedy heuristic and random placement",
        default_repetitions(scale),
        ExperimentKind::StrategyGrid {
            n,
            cells: vec![GridCell {
                title: format!("Ablation: exact DP vs greedy / random on BT({n}), power-law load"),
                load: LoadSpec::paper_power_law(),
                rates: RateScheme::paper_constant(),
            }],
            budgets: budgets(),
            solvers: vec!["soar".into(), "greedy".into(), "random".into()],
            seed_stride: 41,
            per_rep_solver_seed: true,
            include_baselines: false,
        },
    )
}

fn gather_bench() -> ExperimentSpec {
    ExperimentSpec::new(
        "gather-bench",
        "Allocation-free gather microbench (fresh vs warm workspace)",
        1,
        ExperimentKind::GatherMicrobench {
            sizes: crate::perf::GATHER_BENCH_SIZES.to_vec(),
            budget: crate::perf::GATHER_BENCH_BUDGET,
            arity: None,
        },
    )
}

fn obs_bench() -> ExperimentSpec {
    ExperimentSpec::new(
        "obs-bench",
        "Tracing overhead on the warm gather (spans recorded, never drained)",
        1,
        ExperimentKind::ObsBench {
            sizes: crate::perf::GATHER_BENCH_SIZES.to_vec(),
            budget: crate::perf::GATHER_BENCH_BUDGET,
        },
    )
}

fn gather_scale(scale: Scale) -> ExperimentSpec {
    // Shallow 16-ary trees: the datacenter-fabric shape, and the regime where
    // arena compression and the pruned/tiled kernels earn their keep. Quick
    // (the `scale-smoke` CI gate) runs 100k switches; paper runs the full
    // 100k → 1M sweep.
    let sizes = match scale {
        Scale::Paper => vec![100_000, 250_000, 1_000_000],
        Scale::Quick => vec![100_000],
    };
    ExperimentSpec::new(
        "gather-scale",
        "Large-tree gather scaling (100k-1M switches, 16-ary, compressed arena)",
        1,
        ExperimentKind::GatherMicrobench {
            sizes,
            budget: crate::perf::GATHER_BENCH_BUDGET,
            arity: Some(16),
        },
    )
}

fn dynamic_churn(scale: Scale) -> ExperimentSpec {
    let n = bt_size(scale);
    let epochs = match scale {
        Scale::Paper => 40,
        Scale::Quick => 10,
    };
    ExperimentSpec::new(
        "dynamic-churn",
        "Online re-optimization under tenant churn: cost, moves and DP cell writes per epoch",
        default_repetitions(scale),
        ExperimentKind::DynamicChurn {
            title: format!("Dynamic churn on BT({n}), k = 16"),
            scenario: ScenarioSpec::bt(
                n,
                LoadSpec::paper_uniform(),
                RateScheme::paper_constant(),
                5,
            ),
            budget: 16,
            epochs,
            model: soar_multitenant::churn::ChurnModel::paper_default(),
            seed_stride: 53,
        },
    )
}

/// The sequel-paper fabric of a scale. Quick stays small enough for the
/// exhaustive `fabric-brute` oracle (20 switches at budget 4 enumerate in
/// milliseconds), which is what lets the quick registry spec double as the
/// solver-vs-oracle CI gate; paper scale is a 4-core, 8-pod fat-tree.
fn fabric_spec(scale: Scale) -> FabricSpec {
    let (topology, budget, congestion_bound) = match scale {
        Scale::Quick => (
            FabricTopology::MultiCoreFatTree {
                cores: 2,
                pods: 3,
                aggs_per_pod: 2,
                tors_per_agg: 2,
            },
            4,
            2,
        ),
        Scale::Paper => (
            FabricTopology::MultiCoreFatTree {
                cores: 4,
                pods: 8,
                aggs_per_pod: 4,
                tors_per_agg: 8,
            },
            16,
            4,
        ),
    };
    FabricSpec {
        topology,
        load: LoadSpec::paper_uniform(),
        rates: RateScheme::paper_constant(),
        seed: 61,
        budget,
        congestion_bound,
        congestion_weight: 0.5,
    }
}

fn fabric(scale: Scale) -> ExperimentSpec {
    let fabric = fabric_spec(scale);
    let solvers = match scale {
        // Both solvers: equal cost points certify the decomposition against
        // exhaustive enumeration on every CI run of the quick spec.
        Scale::Quick => vec!["fabric-soar".into(), "fabric-brute".into()],
        Scale::Paper => vec!["fabric-soar".into()],
    };
    ExperimentSpec::new(
        "fabric",
        "Congestion-constrained fabric placement: exact decomposition (vs oracle at quick scale)",
        default_repetitions(scale),
        ExperimentKind::FabricSolve {
            title: format!("Fabric {}, k = {}", fabric.topology.label(), fabric.budget),
            fabric,
            solvers,
            seed_stride: 59,
        },
    )
}

fn fabric_sweep(scale: Scale) -> ExperimentSpec {
    let mut fabric = fabric_spec(scale);
    let bounds = match scale {
        Scale::Quick => vec![1, 2, 3],
        Scale::Paper => vec![1, 2, 4, 8],
    };
    // Give the sweep budget headroom so the bound, not k, is what binds at
    // the relaxed end; the spec's own bound is overridden per x value.
    fabric.budget = match scale {
        Scale::Quick => 6,
        Scale::Paper => 32,
    };
    fabric.congestion_bound = *bounds.last().expect("bounds are non-empty");
    ExperimentSpec::new(
        "fabric-sweep",
        "Congestion-bound sweep: fabric cost vs core congestion trade-off",
        default_repetitions(scale),
        ExperimentKind::FabricCongestionSweep {
            title: format!("Fabric {}, k = {}", fabric.topology.label(), fabric.budget),
            fabric,
            bounds,
            seed_stride: 67,
        },
    )
}

/// Looks up a predefined experiment by registry name.
pub fn by_name(name: &str, scale: Scale) -> Option<ExperimentSpec> {
    Some(match name {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig9-smoke" => fig9_smoke(),
        "fig10a" => fig10a(scale),
        "fig10b" => fig10b(scale),
        "fig11a" => fig11a(),
        "fig11c" => fig11c(scale),
        "ablation" => ablation(scale),
        "gather-bench" => gather_bench(),
        "obs-bench" => obs_bench(),
        "gather-scale" => gather_scale(scale),
        "dynamic-churn" => dynamic_churn(scale),
        "fabric" => fabric(scale),
        "fabric-sweep" => fabric_sweep(scale),
        _ => return None,
    })
}

/// All predefined experiments at the given scale, in the order of [`NAMES`].
pub fn all(scale: Scale) -> Vec<ExperimentSpec> {
    NAMES
        .iter()
        .map(|&name| by_name(name, scale).expect("every registry name resolves"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_round_trips() {
        for &name in &NAMES {
            let spec = by_name(name, Scale::Quick).expect("registered");
            assert_eq!(spec.name, name);
            assert_eq!(spec.version, crate::spec::SPEC_VERSION);
            let json = serde_json::to_string(&spec).unwrap();
            let parsed: ExperimentSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, spec, "{name} round-trips through JSON");
        }
        assert!(by_name("nonsense", Scale::Quick).is_none());
        assert_eq!(all(Scale::Paper).len(), NAMES.len());
    }

    #[test]
    fn scales_change_sizes_not_structure() {
        let quick = by_name("fig6", Scale::Quick).unwrap();
        let paper = by_name("fig6", Scale::Paper).unwrap();
        assert_eq!(quick.name, paper.name);
        assert_ne!(quick, paper);
        match (&quick.kind, &paper.kind) {
            (
                ExperimentKind::StrategyGrid {
                    n: nq, cells: cq, ..
                },
                ExperimentKind::StrategyGrid {
                    n: np, cells: cp, ..
                },
            ) => {
                assert_eq!(*nq, 128);
                assert_eq!(*np, 256);
                assert_eq!(cq.len(), 6);
                assert_eq!(cp.len(), 6);
            }
            _ => panic!("fig6 is a strategy grid"),
        }
        assert_eq!(default_repetitions(Scale::Paper), 10);
        assert_eq!(bt_size(Scale::Quick), 128);
    }

    #[test]
    fn fabric_specs_gate_the_oracle_by_scale() {
        let quick = by_name("fabric", Scale::Quick).unwrap();
        let paper = by_name("fabric", Scale::Paper).unwrap();
        match (&quick.kind, &paper.kind) {
            (
                ExperimentKind::FabricSolve { solvers: sq, .. },
                ExperimentKind::FabricSolve {
                    solvers: sp,
                    fabric,
                    ..
                },
            ) => {
                assert!(
                    sq.iter().any(|s| s == "fabric-brute"),
                    "quick scale cross-checks against the oracle"
                );
                assert!(
                    !sp.iter().any(|s| s == "fabric-brute"),
                    "paper scale must not run the exhaustive oracle"
                );
                assert!(fabric.topology.n_switches() > 100, "paper scale is big");
            }
            _ => panic!("fabric is a FabricSolve spec"),
        }
        // Both scales of both fabric specs validate (the paper sweep included).
        for name in ["fabric", "fabric-sweep"] {
            for scale in [Scale::Quick, Scale::Paper] {
                by_name(name, scale).unwrap().validate().unwrap();
            }
        }
    }
}
