//! Artifact history: trajectories of [`RunArtifact`]s across commits, and the
//! perf-regression gate built on them.
//!
//! A single golden diff ([`crate::artifact::diff`]) answers "did this run match
//! that run"; this module answers the longitudinal questions: *how has each
//! metric moved over an ordered series of runs* ([`Trajectory`]) and *did the
//! newest run regress past a tolerance* ([`check`]). Artifacts align by spec
//! name/version and chart point — every chart title, series label and x value of
//! the first artifact must be present in every later one, so a dropped chart or
//! a renamed series is reported as an alignment error instead of silently
//! shrinking the trajectory.
//!
//! Metrics are classified by the artifact's own `timing_charts` flags: wall-clock
//! metrics regress **relatively** (a slowdown beyond
//! [`RegressionPolicy::max_regress`] fails), everything else — costs, allocation
//! counts, arena footprints — regresses **exactly** (any increase fails, since
//! cost-based artifacts are deterministic). Improvements never fail; the gate is
//! one-sided by design.
//!
//! The `soar history` CLI subcommands (`report`, `check`) are thin shells over
//! this module; the CI `bench-smoke` job uses `soar history check` to turn the
//! `BENCH_gather.json` snapshot into a merge gate.
//!
//! ```
//! use soar_exp::history::{check, RegressionPolicy, Trajectory};
//! use soar_exp::prelude::*;
//!
//! // Two runs of the same deterministic spec form a two-point trajectory...
//! let spec = registry::by_name("fig3", Scale::Quick).unwrap();
//! let (old, new) = (spec.run(), spec.run());
//! let entries = vec![("v1".to_owned(), old), ("v2".to_owned(), new)];
//! let trajectory = Trajectory::build(&entries).unwrap();
//! assert!(trajectory.metrics().iter().all(|m| m.delta() == Some(0.0)));
//!
//! // ...and the newest run passes the regression gate against the oldest.
//! let report = check(&entries[0].1, &entries[1].1, &RegressionPolicy::default()).unwrap();
//! assert!(report.passed());
//! ```

use crate::artifact::RunArtifact;
use crate::chart::{Chart, Series};
use std::fmt;

/// Identifies one tracked metric: a `(chart, series, x)` coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricKey {
    /// Title of the chart the metric lives in.
    pub chart: String,
    /// Legend label of the series.
    pub series: String,
    /// The x value of the point.
    pub x: f64,
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` / `{}` @ x = {}", self.chart, self.series, self.x)
    }
}

/// One metric's values across an ordered artifact series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTrajectory {
    /// What is being tracked.
    pub key: MetricKey,
    /// `true` when the metric is a wall-clock timing (machine-dependent).
    pub timing: bool,
    /// The y values, one per artifact, in history order.
    pub values: Vec<f64>,
}

impl MetricTrajectory {
    /// The newest value.
    pub fn last(&self) -> f64 {
        *self.values.last().expect("trajectories are non-empty")
    }

    /// The best (smallest — every tracked metric is lower-is-better) value seen.
    pub fn best(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Newest minus previous value (`None` for single-entry histories).
    pub fn delta(&self) -> Option<f64> {
        let n = self.values.len();
        (n >= 2).then(|| self.values[n - 1] - self.values[n - 2])
    }

    /// `true` when the newest value is also the best seen so far.
    pub fn is_best_so_far(&self) -> bool {
        self.last() <= self.best()
    }
}

/// Why a series of artifacts failed to align into a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryError {
    /// No artifacts were given.
    Empty,
    /// An artifact's spec name differs from the first artifact's.
    SpecMismatch {
        /// History label of the offending artifact.
        label: String,
        /// The expected spec name (from the first artifact).
        expected: String,
        /// The spec name actually found.
        found: String,
    },
    /// An artifact's format version differs from the first artifact's.
    VersionMismatch {
        /// History label of the offending artifact.
        label: String,
        /// The expected format version.
        expected: u32,
        /// The format version actually found.
        found: u32,
    },
    /// A chart of the first artifact is missing from a later one.
    MissingChart {
        /// History label of the offending artifact.
        label: String,
        /// Title of the missing chart.
        chart: String,
    },
    /// A series of the first artifact is missing (e.g. renamed) in a later one.
    MissingSeries {
        /// History label of the offending artifact.
        label: String,
        /// Title of the chart the series belongs to.
        chart: String,
        /// Label of the missing series.
        series: String,
    },
    /// A point of the first artifact has no matching x in a later one.
    MissingPoint {
        /// History label of the offending artifact.
        label: String,
        /// The metric whose x vanished.
        key: MetricKey,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Empty => write!(f, "history is empty (give at least one artifact)"),
            HistoryError::SpecMismatch {
                label,
                expected,
                found,
            } => write!(
                f,
                "{label}: spec `{found}` does not belong to the `{expected}` history \
                 (artifacts align by spec name)"
            ),
            HistoryError::VersionMismatch {
                label,
                expected,
                found,
            } => write!(
                f,
                "{label}: artifact format version {found} differs from the history's {expected}"
            ),
            HistoryError::MissingChart { label, chart } => {
                write!(f, "{label}: chart `{chart}` disappeared from the artifact")
            }
            HistoryError::MissingSeries {
                label,
                chart,
                series,
            } => write!(
                f,
                "{label}: series `{series}` of chart `{chart}` disappeared \
                 (renamed series break alignment)"
            ),
            HistoryError::MissingPoint { label, key } => {
                write!(f, "{label}: point {key} disappeared from the artifact")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// An aligned, ordered series of artifacts of one spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Name of the spec every artifact belongs to.
    pub spec_name: String,
    /// History labels (file names, commit ids, ...), oldest first.
    pub labels: Vec<String>,
    metrics: Vec<MetricTrajectory>,
}

impl Trajectory {
    /// Aligns `(label, artifact)` entries, oldest first, into a trajectory.
    ///
    /// The **first** artifact defines the tracked metric set; every later
    /// artifact must contain all of its charts, series and x values (extra
    /// charts in later artifacts are fine — new metrics enter the history the
    /// next time a baseline is cut).
    pub fn build(entries: &[(String, RunArtifact)]) -> Result<Self, HistoryError> {
        let borrowed: Vec<(&str, &RunArtifact)> = entries
            .iter()
            .map(|(label, artifact)| (label.as_str(), artifact))
            .collect();
        Self::build_borrowed(&borrowed)
    }

    /// [`Trajectory::build`] over borrowed entries — the zero-copy form used by
    /// [`check`], which aligns two artifacts it does not own.
    pub fn build_borrowed(entries: &[(&str, &RunArtifact)]) -> Result<Self, HistoryError> {
        let &(_, first) = entries.first().ok_or(HistoryError::Empty)?;
        for &(label, artifact) in &entries[1..] {
            if artifact.spec.name != first.spec.name {
                return Err(HistoryError::SpecMismatch {
                    label: label.to_owned(),
                    expected: first.spec.name.clone(),
                    found: artifact.spec.name.clone(),
                });
            }
            if artifact.format_version != first.format_version {
                return Err(HistoryError::VersionMismatch {
                    label: label.to_owned(),
                    expected: first.format_version,
                    found: artifact.format_version,
                });
            }
        }
        let mut metrics = Vec::new();
        for (chart_idx, chart) in first.charts.iter().enumerate() {
            let timing = first.timing_charts.contains(&chart_idx);
            // Resolve the chart once per later artifact (not once per point).
            let later_charts: Vec<(&str, &Chart)> = entries[1..]
                .iter()
                .map(|&(label, artifact)| {
                    artifact
                        .charts
                        .iter()
                        .find(|c| c.title == chart.title)
                        .map(|c| (label, c))
                        .ok_or_else(|| HistoryError::MissingChart {
                            label: label.to_owned(),
                            chart: chart.title.clone(),
                        })
                })
                .collect::<Result<_, _>>()?;
            for series in &chart.series {
                let later_series: Vec<(&str, &Series)> = later_charts
                    .iter()
                    .map(|&(label, found_chart)| {
                        found_chart
                            .series
                            .iter()
                            .find(|s| s.label == series.label)
                            .map(|s| (label, s))
                            .ok_or_else(|| HistoryError::MissingSeries {
                                label: label.to_owned(),
                                chart: chart.title.clone(),
                                series: series.label.clone(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                for &(x, first_y) in &series.points {
                    let key = MetricKey {
                        chart: chart.title.clone(),
                        series: series.label.clone(),
                        x,
                    };
                    let mut values = vec![first_y];
                    for &(label, found_series) in &later_series {
                        let y = found_series
                            .y_at(x)
                            .ok_or_else(|| HistoryError::MissingPoint {
                                label: label.to_owned(),
                                key: key.clone(),
                            })?;
                        values.push(y);
                    }
                    metrics.push(MetricTrajectory {
                        key,
                        timing,
                        values,
                    });
                }
            }
        }
        Ok(Trajectory {
            spec_name: first.spec.name.clone(),
            labels: entries.iter().map(|&(label, _)| label.to_owned()).collect(),
            metrics,
        })
    }

    /// The tracked metrics, in chart/series/point order of the first artifact.
    pub fn metrics(&self) -> &[MetricTrajectory] {
        &self.metrics
    }

    /// Renders the trajectory as an aligned table: one row per metric with the
    /// per-run values, the newest delta and a best-so-far marker.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "history of `{}` over {} run(s): {}",
            self.spec_name,
            self.labels.len(),
            self.labels.join(" -> ")
        )
        .unwrap();
        for m in &self.metrics {
            let values: Vec<String> = m.values.iter().map(|v| format!("{v:.6}")).collect();
            let delta = match m.delta() {
                Some(d) => format!("{d:+.6}"),
                None => "n/a".to_owned(),
            };
            writeln!(
                out,
                "  {:<72} [{}] delta {}{}{}",
                m.key.to_string(),
                values.join(" -> "),
                delta,
                if m.is_best_so_far() {
                    "  (best so far)"
                } else {
                    ""
                },
                if m.timing { "  [timing]" } else { "" },
            )
            .unwrap();
        }
        out
    }
}

/// What counts as a regression when gating a new artifact against a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionPolicy {
    /// Maximum tolerated **relative** increase of a timing metric (0.25 = a 25 %
    /// slowdown fails). Wall times are machine-noisy, so they get headroom.
    pub max_regress: f64,
    /// Absolute guard band on exact metrics, to absorb float formatting noise.
    /// Cost-based artifacts are deterministic, so the default is effectively
    /// exact (1e-9).
    pub exact_abs: f64,
}

impl Default for RegressionPolicy {
    fn default() -> Self {
        RegressionPolicy {
            max_regress: 0.25,
            exact_abs: 1e-9,
        }
    }
}

/// One metric that moved the wrong way past its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed metric.
    pub key: MetricKey,
    /// The baseline value.
    pub baseline: f64,
    /// The new value.
    pub new: f64,
    /// `true` when the metric was judged relatively (a timing chart).
    pub timing: bool,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.timing {
            let pct = if self.baseline > 0.0 {
                100.0 * (self.new - self.baseline) / self.baseline
            } else {
                f64::INFINITY
            };
            write!(
                f,
                "{}: {:.6} -> {:.6} ({pct:+.1} %)",
                self.key, self.baseline, self.new
            )
        } else {
            write!(
                f,
                "{}: {} -> {} (exact metric increased)",
                self.key, self.baseline, self.new
            )
        }
    }
}

/// The outcome of [`check`]: the regressions, the improvements and the policy
/// that judged them.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Metrics that got worse past the policy's tolerance.
    pub regressions: Vec<Regression>,
    /// Metrics that got strictly better (informational).
    pub improvements: Vec<Regression>,
    /// Number of metrics compared.
    pub checked: usize,
    /// The policy applied.
    pub policy: RegressionPolicy,
}

impl RegressionReport {
    /// `true` when no metric regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(
                f,
                "{} metric(s) within tolerance ({} improved, timing headroom {:.0} %)",
                self.checked,
                self.improvements.len(),
                self.policy.max_regress * 100.0
            )
        } else {
            writeln!(f, "{} regression(s):", self.regressions.len())?;
            for r in &self.regressions {
                writeln!(f, "  - {r}")?;
            }
            Ok(())
        }
    }
}

/// Gates `new` against `baseline`: every metric of the baseline must not have
/// gotten worse past the policy's tolerance in the new artifact.
///
/// Timing metrics (per the baseline's `timing_charts` flags) fail on a relative
/// slowdown beyond [`RegressionPolicy::max_regress`]; every other metric fails
/// on **any** increase (beyond the tiny `exact_abs` guard). Decreases are
/// recorded as improvements and always pass.
pub fn check(
    baseline: &RunArtifact,
    new: &RunArtifact,
    policy: &RegressionPolicy,
) -> Result<RegressionReport, HistoryError> {
    let trajectory = Trajectory::build_borrowed(&[("baseline", baseline), ("new", new)])?;
    let mut report = RegressionReport {
        regressions: Vec::new(),
        improvements: Vec::new(),
        checked: trajectory.metrics().len(),
        policy: *policy,
    };
    for m in trajectory.metrics() {
        let (base, new_value) = (m.values[0], m.values[1]);
        let worse = if m.timing {
            new_value > base * (1.0 + policy.max_regress)
        } else {
            new_value > base + policy.exact_abs
        };
        let entry = Regression {
            key: m.key.clone(),
            baseline: base,
            new: new_value,
            timing: m.timing,
        };
        if worse {
            report.regressions.push(entry);
        } else if new_value < base {
            report.improvements.push(entry);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::{Chart, Series};
    use crate::spec::{ExperimentKind, ExperimentSpec, ScenarioSpec};

    /// A two-chart artifact: chart 0 is a cost chart, chart 1 a timing chart.
    fn artifact(cost: f64, wall_ms: f64) -> RunArtifact {
        let spec = ExperimentSpec::new(
            "hist",
            "history test artifact",
            1,
            ExperimentKind::SolverComparison {
                title: "costs".into(),
                scenario: ScenarioSpec::sf(16, 0),
                budget: 1,
                solvers: vec!["soar".into()],
                include_all_red: false,
            },
        );
        let mut costs = Chart::new("costs", "k", "cost");
        let mut soar = Series::new("SOAR");
        soar.push(1.0, cost);
        soar.push(2.0, cost - 1.0);
        costs.push(soar);
        let mut wall = Chart::new("wall", "n", "ms");
        let mut warm = Series::new("warm");
        warm.push(1024.0, wall_ms);
        wall.push(warm);
        let mut a = RunArtifact::new(spec, vec![costs, wall], None);
        a.timing_charts = vec![1];
        a
    }

    fn entries(artifacts: Vec<RunArtifact>) -> Vec<(String, RunArtifact)> {
        artifacts
            .into_iter()
            .enumerate()
            .map(|(i, a)| (format!("run{i}"), a))
            .collect()
    }

    #[test]
    fn trajectories_track_deltas_and_best_so_far() {
        let history = entries(vec![
            artifact(10.0, 5.0),
            artifact(8.0, 6.0),
            artifact(9.0, 4.0),
        ]);
        let t = Trajectory::build(&history).unwrap();
        assert_eq!(t.spec_name, "hist");
        assert_eq!(t.labels, vec!["run0", "run1", "run2"]);
        assert_eq!(t.metrics().len(), 3, "two cost points + one timing point");

        let cost = &t.metrics()[0];
        assert_eq!(cost.key.chart, "costs");
        assert!(!cost.timing);
        assert_eq!(cost.values, vec![10.0, 8.0, 9.0]);
        assert_eq!(cost.delta(), Some(1.0));
        assert_eq!(cost.best(), 8.0);
        assert!(!cost.is_best_so_far());

        let wall = &t.metrics()[2];
        assert!(wall.timing);
        assert_eq!(wall.values, vec![5.0, 6.0, 4.0]);
        assert!(wall.is_best_so_far());

        let table = t.to_table();
        assert!(table.contains("best so far"), "{table}");
        assert!(table.contains("[timing]"), "{table}");
    }

    #[test]
    fn alignment_rejects_mismatched_histories() {
        assert_eq!(Trajectory::build(&[]).unwrap_err(), HistoryError::Empty);

        let mut other = artifact(1.0, 1.0);
        other.spec.name = "other".into();
        let err = Trajectory::build(&entries(vec![artifact(1.0, 1.0), other])).unwrap_err();
        assert!(matches!(err, HistoryError::SpecMismatch { .. }), "{err}");

        let mut newer = artifact(1.0, 1.0);
        newer.format_version += 1;
        let err = Trajectory::build(&entries(vec![artifact(1.0, 1.0), newer])).unwrap_err();
        assert!(matches!(err, HistoryError::VersionMismatch { .. }), "{err}");
    }

    #[test]
    fn alignment_reports_missing_charts_series_and_points() {
        let mut chartless = artifact(1.0, 1.0);
        chartless.charts.remove(1);
        let err = Trajectory::build(&entries(vec![artifact(1.0, 1.0), chartless])).unwrap_err();
        assert!(
            matches!(&err, HistoryError::MissingChart { chart, .. } if chart == "wall"),
            "{err}"
        );

        let mut renamed = artifact(1.0, 1.0);
        renamed.charts[0].series[0].label = "SOAR v2".into();
        let err = Trajectory::build(&entries(vec![artifact(1.0, 1.0), renamed])).unwrap_err();
        assert!(
            matches!(&err, HistoryError::MissingSeries { series, .. } if series == "SOAR"),
            "{err}"
        );
        assert!(err.to_string().contains("renamed series"), "{err}");

        let mut shifted = artifact(1.0, 1.0);
        shifted.charts[0].series[0].points[1].0 = 3.0;
        let err = Trajectory::build(&entries(vec![artifact(1.0, 1.0), shifted])).unwrap_err();
        assert!(
            matches!(&err, HistoryError::MissingPoint { key, .. } if key.x == 2.0),
            "{err}"
        );
    }

    #[test]
    fn extra_charts_in_later_artifacts_are_tolerated() {
        let mut extended = artifact(1.0, 1.0);
        extended.charts.push(Chart::new("new chart", "x", "y"));
        let t = Trajectory::build(&entries(vec![artifact(1.0, 1.0), extended])).unwrap();
        assert_eq!(t.metrics().len(), 3, "the first artifact defines the set");
    }

    #[test]
    fn exact_metrics_fail_on_any_increase() {
        let baseline = artifact(10.0, 5.0);
        let policy = RegressionPolicy::default();

        let report = check(&baseline, &artifact(10.0, 5.0), &policy).unwrap();
        assert!(report.passed());
        assert_eq!(report.checked, 3);

        // A cost increase of any size fails...
        let report = check(&baseline, &artifact(10.001, 5.0), &policy).unwrap();
        assert!(!report.passed());
        assert!(report.to_string().contains("exact metric increased"));

        // ...while a cost decrease is an improvement.
        let report = check(&baseline, &artifact(9.0, 5.0), &policy).unwrap();
        assert!(report.passed());
        assert_eq!(report.improvements.len(), 2, "both cost points improved");
    }

    #[test]
    fn timing_metrics_get_relative_headroom() {
        let baseline = artifact(10.0, 100.0);
        let policy = RegressionPolicy::default();

        // +20 % wall time sits inside the default 25 % headroom...
        assert!(check(&baseline, &artifact(10.0, 120.0), &policy)
            .unwrap()
            .passed());
        // ...+30 % does not...
        let failed = check(&baseline, &artifact(10.0, 130.0), &policy).unwrap();
        assert!(!failed.passed());
        assert_eq!(failed.regressions.len(), 1);
        assert!(failed.regressions[0].timing);
        // ...and a tighter policy tightens the gate.
        let tight = RegressionPolicy {
            max_regress: 0.1,
            ..policy
        };
        assert!(!check(&baseline, &artifact(10.0, 120.0), &tight)
            .unwrap()
            .passed());
    }

    #[test]
    fn check_reports_failures_displayably() {
        let baseline = artifact(10.0, 5.0);
        let failed = check(
            &baseline,
            &artifact(11.0, 5.0),
            &RegressionPolicy::default(),
        )
        .unwrap();
        assert!(failed.to_string().contains("regression"), "{failed}");

        let mut misaligned = artifact(10.0, 5.0);
        misaligned.spec.name = "other".into();
        let err = check(&baseline, &misaligned, &RegressionPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("align"), "{err}");
    }
}
