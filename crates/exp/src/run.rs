//! Executes [`ExperimentSpec`]s into [`RunArtifact`]s.
//!
//! Every runner is written against the unified `soar_core::api` layer:
//! scenarios materialize as [`Instance`]s, contenders are resolved from the
//! [`solvers`] registry, repetition fans out through [`solve_batch`] /
//! [`sweep_budgets_batch`] on the `soar-pool` work-stealing pool (whose workers
//! carry warm per-thread `SolverWorkspace`s), and budget curves come from
//! single-gather sweeps. All numeric outputs are deterministic: instance seeds
//! follow the spec's explicit seed rules, solver randomness is derived from
//! fixed seeds, and pooled batches return reports in submission order.

use crate::artifact::RunArtifact;
use crate::chart::{Chart, Series};
use crate::perf;
use crate::spec::{
    ByteSeriesSpec, ExperimentKind, ExperimentSpec, GridCell, OnlineCell, OnlineSweep,
    ScalingFamily, ScenarioSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_core::api::{
    solve_batch, solvers, sweep_budgets, sweep_budgets_batch, DpStats, Instance, SoarSolver,
    SolveReport, Solver, StrategySolver,
};
use soar_core::Strategy;
use soar_fabric::FabricSolver;
use soar_multitenant::churn::ChurnModel;
use soar_multitenant::{workloads::MixedWorkloadGenerator, OnlineAllocator};
use soar_online::{DynamicInstance, OnlineDriver, Verify};
use soar_reduce::Coloring;
use soar_topology::builders;
use soar_topology::load::LoadPlacement;
use soar_topology::rates::RateScheme;

/// The paper's legend label for a solver registry name (used for chart series).
pub fn paper_label(name: &str) -> &str {
    match name {
        "soar" => "SOAR",
        "top" => "Top",
        "max-load" => "Max",
        "max-degree" => "Max-degree",
        "level" => "Level",
        "random" => "Random",
        "greedy" => "Greedy",
        "all-red" => "All red",
        "all-blue" => "All blue",
        "brute-force" => "Brute force",
        "fabric-soar" => "SOAR (fabric)",
        "fabric-brute" => "Fabric oracle",
        other => other,
    }
}

/// Resolves a registry name back to the underlying placement [`Strategy`]
/// (needed when a spec reseeds randomized strategies per repetition).
fn strategy_by_name(name: &str) -> Option<Strategy> {
    Some(match name {
        "soar" => Strategy::Soar,
        "top" => Strategy::Top,
        "max-load" => Strategy::MaxLoad,
        "max-degree" => Strategy::MaxDegree,
        "level" => Strategy::Level,
        "random" => Strategy::Random,
        "greedy" => Strategy::Greedy,
        "all-red" => Strategy::AllRed,
        "all-blue" => Strategy::AllBlue,
        _ => return None,
    })
}

fn resolve(name: &str) -> Box<dyn Solver> {
    solvers::by_name(name)
        .unwrap_or_else(|| panic!("experiment spec references unknown solver `{name}`"))
}

/// Tracks the largest DP table statistics seen across a run, canonicalized for
/// artifacts (the workspace-lifetime counters depend on scheduling history, not
/// on the spec, so they are zeroed; see [`RunArtifact::dp`]).
#[derive(Default)]
struct DpAggregate(Option<DpStats>);

/// Canonicalizes a report for storage inside a figure artifact: the wall time
/// and the workspace-lifetime DP counters are machine/scheduling noise, and
/// zeroing them is what makes cost-based artifacts byte-identical run to run
/// (timing experiments chart their wall times explicitly instead).
fn canonical_report(mut report: SolveReport) -> SolveReport {
    report.wall_time = std::time::Duration::ZERO;
    report.dp = report.dp.map(crate::artifact::canonical_dp);
    report
}

impl DpAggregate {
    fn note_report(&mut self, report: &SolveReport) {
        self.note(report.dp);
    }

    /// Like [`DpAggregate::note_report`] for bare statistics (used when pooled
    /// repetition loops hand back only the DP stats of their reports). Must be
    /// called in submission order so ties keep the historical first-seen winner.
    fn note(&mut self, dp: Option<DpStats>) {
        let Some(dp) = dp.map(crate::artifact::canonical_dp) else {
            return;
        };
        match &self.0 {
            Some(best) if best.table_cells >= dp.table_cells => {}
            _ => self.0 = Some(dp),
        }
    }
}

impl ExperimentSpec {
    /// Executes the spec and bundles the outcome into a [`RunArtifact`].
    pub fn run(&self) -> RunArtifact {
        let mut dp = DpAggregate::default();
        let mut reports = Vec::new();
        let charts = match &self.kind {
            ExperimentKind::SolverComparison {
                title,
                scenario,
                budget,
                solvers,
                include_all_red,
            } => run_solver_comparison(
                title,
                scenario,
                *budget,
                solvers,
                *include_all_red,
                &mut dp,
                &mut reports,
            ),
            ExperimentKind::BudgetCurve {
                title,
                scenario,
                budgets,
                series_label,
            } => run_budget_curve(
                title,
                scenario,
                budgets,
                series_label,
                &mut dp,
                &mut reports,
            ),
            ExperimentKind::StrategyGrid {
                n,
                cells,
                budgets,
                solvers,
                seed_stride,
                per_rep_solver_seed,
                include_baselines,
            } => run_strategy_grid(
                self,
                *n,
                cells,
                budgets,
                solvers,
                *seed_stride,
                *per_rep_solver_seed,
                *include_baselines,
                &mut dp,
            ),
            ExperimentKind::OnlineMultitenant {
                n,
                budget,
                solvers,
                cells,
            } => run_online(self, *n, *budget, solvers, cells),
            ExperimentKind::UseCaseBytes {
                n,
                budgets,
                seed_stride,
                rates,
                titles,
                series,
            } => run_use_case_bytes(
                self,
                *n,
                budgets,
                *seed_stride,
                rates,
                titles,
                series,
                &mut dp,
            ),
            ExperimentKind::SolveTime {
                title,
                sizes,
                budgets,
                seed_stride,
            } => run_solve_time(self, title, sizes, budgets, *seed_stride, &mut dp),
            ExperimentKind::ScalingBudgets {
                title,
                family,
                exponents,
                seed_stride,
            } => run_scaling(self, title, *family, exponents, *seed_stride, &mut dp),
            ExperimentKind::RequiredFraction {
                title,
                exponents,
                targets,
                search_fraction,
                seed_stride,
            } => run_required_fraction(
                self,
                title,
                exponents,
                targets,
                *search_fraction,
                *seed_stride,
                &mut dp,
            ),
            ExperimentKind::GatherMicrobench {
                sizes,
                budget,
                arity,
            } => perf::microbench_charts(&perf::gather_microbench_shaped(sizes, *budget, *arity)),
            ExperimentKind::ObsBench { sizes, budget } => {
                perf::obs_bench_charts(&perf::gather_obs_bench(sizes, *budget))
            }
            ExperimentKind::DynamicChurn {
                title,
                scenario,
                budget,
                epochs,
                model,
                seed_stride,
            } => run_dynamic_churn(self, title, scenario, *budget, *epochs, model, *seed_stride),
            ExperimentKind::FabricSolve {
                title,
                fabric,
                solvers,
                seed_stride,
            } => run_fabric_solve(self, title, fabric, solvers, *seed_stride),
            ExperimentKind::FabricCongestionSweep {
                title,
                fabric,
                bounds,
                seed_stride,
            } => run_fabric_sweep(self, title, fabric, bounds, *seed_stride),
            ExperimentKind::ServeBench { .. } => panic!(
                "serve-bench artifacts are produced by `soar loadtest` against a live \
                 server and are not re-runnable"
            ),
            ExperimentKind::ChaosBench { .. } => panic!(
                "chaos-bench artifacts are produced by `soar loadtest --chaos` against a \
                 live server and are not re-runnable"
            ),
            ExperimentKind::Adhoc { command, .. } => panic!(
                "ad-hoc `{command}` artifacts record a CLI run over an explicit instance \
                 and are not re-runnable"
            ),
        };
        let mut artifact = RunArtifact::new(self.clone(), charts, dp.0);
        artifact.reports = reports;
        artifact
    }
}

fn run_solver_comparison(
    title: &str,
    scenario: &ScenarioSpec,
    budget: usize,
    solver_names: &[String],
    include_all_red: bool,
    dp: &mut DpAggregate,
    reports: &mut Vec<SolveReport>,
) -> Vec<Chart> {
    let instance = scenario.instance(budget);
    let mut chart = Chart::new(title, "k", "utilization complexity");
    for name in solver_names {
        let report = resolve(name).solve(&instance);
        dp.note_report(&report);
        let mut series = Series::new(paper_label(name));
        series.push(budget as f64, report.solution.cost);
        chart.push(series);
        reports.push(canonical_report(report));
    }
    if include_all_red {
        let mut all_red = Series::new("All red");
        all_red.push(budget as f64, instance.all_red_cost());
        chart.push(all_red);
    }
    vec![chart]
}

fn run_budget_curve(
    title: &str,
    scenario: &ScenarioSpec,
    budgets: &[usize],
    series_label: &str,
    dp: &mut DpAggregate,
    reports: &mut Vec<SolveReport>,
) -> Vec<Chart> {
    let k_max = budgets.iter().copied().max().unwrap_or(0);
    let instance = scenario.instance(k_max);
    let mut chart = Chart::new(title, "k", "utilization complexity");
    let mut series = Series::new(series_label);
    for report in sweep_budgets(&instance, budgets) {
        dp.note_report(&report);
        series.push(report.solution.budget as f64, report.solution.cost);
        reports.push(canonical_report(report));
    }
    chart.push(series);
    vec![chart]
}

#[allow(clippy::too_many_arguments)]
fn run_strategy_grid(
    spec: &ExperimentSpec,
    n: usize,
    cells: &[GridCell],
    budgets: &[usize],
    solver_names: &[String],
    seed_stride: u64,
    per_rep_solver_seed: bool,
    include_baselines: bool,
    dp: &mut DpAggregate,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut charts = Vec::new();
    for cell in cells {
        let mut chart = Chart::new(
            &cell.title,
            "k",
            "network utilization (normalized to all-red)",
        );
        let mut all_blue = Series::new("All blue");
        let mut all_red = Series::new("All red");
        let mut per_solver: Vec<Series> = solver_names
            .iter()
            .map(|name| Series::new(paper_label(name)))
            .collect();
        let scenario_for = |seed: u64| ScenarioSpec {
            topology: soar_core::api::TopologySpec::CompleteBinaryBt { n },
            load: Some(cell.load.clone()),
            placement: Some(LoadPlacement::Leaves),
            rates: Some(cell.rates.clone()),
            seed,
        };
        for &k in budgets {
            let instances: Vec<Instance> = (0..reps)
                .map(|rep| scenario_for(spec.base_seed + rep * seed_stride + k as u64).instance(k))
                .collect();
            if include_baselines {
                let blue_reports = solve_batch(&StrategySolver::new(Strategy::AllBlue), &instances);
                let blue_mean =
                    blue_reports.iter().map(|r| r.normalized_cost).sum::<f64>() / reps as f64;
                all_blue.push(k as f64, blue_mean);
                all_red.push(k as f64, 1.0);
            }
            for (idx, name) in solver_names.iter().enumerate() {
                let solver_reports: Vec<SolveReport> = if per_rep_solver_seed {
                    let strategy = strategy_by_name(name).unwrap_or_else(|| {
                        panic!("per-repetition seeding needs a strategy solver, got `{name}`")
                    });
                    instances
                        .iter()
                        .enumerate()
                        .map(|(rep, instance)| {
                            StrategySolver::with_seed(strategy, rep as u64).solve(instance)
                        })
                        .collect()
                } else {
                    solve_batch(resolve(name).as_ref(), &instances)
                };
                for report in &solver_reports {
                    dp.note_report(report);
                }
                let mean = solver_reports
                    .iter()
                    .map(|r| r.normalized_cost)
                    .sum::<f64>()
                    / reps as f64;
                per_solver[idx].push(k as f64, mean);
            }
        }
        if include_baselines {
            chart.push(all_blue);
            chart.push(all_red);
        }
        for series in per_solver {
            chart.push(series);
        }
        charts.push(chart);
    }
    charts
}

fn run_online(
    spec: &ExperimentSpec,
    n: usize,
    budget: usize,
    solver_names: &[String],
    cells: &[OnlineCell],
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let generator = MixedWorkloadGenerator::paper_default();
    let solvers: Vec<Box<dyn Solver>> = solver_names.iter().map(|name| resolve(name)).collect();
    let mut charts = Vec::new();
    for cell in cells {
        let mut base = builders::complete_binary_tree_bt(n);
        base.apply_rates(&cell.rates);
        // Per x value: (seed key, per-switch capacity, workload count).
        let (x_label, grid): (&str, Vec<(u64, u32, usize)>) = match &cell.sweep {
            OnlineSweep::Workloads { counts, capacity } => (
                "workloads",
                counts.iter().map(|&c| (c as u64, *capacity, c)).collect(),
            ),
            OnlineSweep::Capacity {
                capacities,
                workloads,
            } => (
                "capacity",
                capacities
                    .iter()
                    .map(|&c| (c as u64, c, *workloads))
                    .collect(),
            ),
        };
        let mut chart = Chart::new(
            &cell.title,
            x_label,
            "network utilization (normalized to all-red)",
        );
        let mut series: Vec<Series> = solver_names
            .iter()
            .map(|name| Series::new(paper_label(name)))
            .collect();
        let mut red = Series::new("All red");
        // Fan the (x value, repetition) pairs of the whole cell out across the
        // pool: each pair draws its own workload sequence (seeds are explicit,
        // so scheduling cannot change them) and runs every allocator on it. The
        // results come back in submission order — grid-major, repetition-minor,
        // exactly the historical sequential loop order — so the per-point float
        // accumulation below adds the same values in the same order and the
        // rendered chart (and its CSV) stays byte-identical.
        let pairs: Vec<(usize, u64)> = (0..grid.len())
            .flat_map(|gi| (0..reps).map(move |rep| (gi, rep)))
            .collect();
        let per_pair: Vec<Vec<f64>> = soar_pool::global().map(&pairs, |&(gi, rep)| {
            let (x, capacity, workload_count) = grid[gi];
            let mut rng = StdRng::seed_from_u64(spec.base_seed + rep * cell.seed_stride + x);
            let workloads = generator.draw_sequence(&base, workload_count, &mut rng);
            solvers
                .iter()
                .map(|solver| {
                    let mut allocator = OnlineAllocator::new(&base, budget, capacity);
                    allocator
                        .run_sequence_with(&workloads, solver.as_ref())
                        .normalized_total()
                })
                .collect()
        });
        let mut pair_results = per_pair.into_iter();
        for &(x, _, _) in &grid {
            let mut acc = vec![0.0; solvers.len()];
            for _rep in 0..reps {
                let totals = pair_results.next().expect("one result per pair");
                for (idx, total) in totals.into_iter().enumerate() {
                    acc[idx] += total;
                }
            }
            for (idx, s) in series.iter_mut().enumerate() {
                s.push(x as f64, acc[idx] / reps as f64);
            }
            red.push(x as f64, 1.0);
        }
        chart.push(red);
        for s in series {
            chart.push(s);
        }
        charts.push(chart);
    }
    charts
}

#[allow(clippy::too_many_arguments)]
fn run_use_case_bytes(
    spec: &ExperimentSpec,
    n: usize,
    budgets: &[usize],
    seed_stride: u64,
    rates: &RateScheme,
    titles: &[String],
    series_specs: &[ByteSeriesSpec],
    dp: &mut DpAggregate,
) -> Vec<Chart> {
    assert_eq!(titles.len(), 3, "UseCaseBytes needs exactly three titles");
    let reps = spec.repetitions.max(1);
    let mut utilization = Chart::new(
        &titles[0],
        "k",
        "network utilization (normalized to all-red)",
    );
    let mut bytes_vs_red = Chart::new(&titles[1], "k", "bytes (normalized to all-red)");
    let mut bytes_vs_blue = Chart::new(&titles[2], "k", "bytes (normalized to all-blue)");
    for series_spec in series_specs {
        let use_case = series_spec.use_case.use_case();
        let mut util_series = Series::new(series_spec.label.clone());
        let mut red_series = Series::new(series_spec.label.clone());
        let mut blue_series = Series::new(series_spec.label.clone());
        // One pooled task per (budget, repetition) pair of the series. Instance
        // seeds and the byte-report RNG streams are explicit functions of
        // (k, rep), so the parallel fan-out draws exactly the sequential
        // numbers; results return in submission order (budget-major,
        // repetition-minor), keeping the float accumulation — and therefore the
        // CSV output — byte-identical to the historical sequential loops.
        let pairs: Vec<(usize, u64)> = budgets
            .iter()
            .flat_map(|&k| (0..reps).map(move |rep| (k, rep)))
            .collect();
        let results: Vec<(Option<DpStats>, f64, f64, f64)> =
            soar_pool::global().map(&pairs, |&(k, rep)| {
                let scenario = ScenarioSpec::bt(
                    n,
                    series_spec.load.clone(),
                    rates.clone(),
                    spec.base_seed + rep * seed_stride + k as u64,
                );
                let instance = scenario.instance(k);
                let report = SoarSolver.solve(&instance);

                let tree = instance.tree();
                let mut rng = StdRng::seed_from_u64(rep);
                let soar_bytes = use_case
                    .byte_report(tree, &report.solution.coloring, &mut rng)
                    .total_bytes as f64;
                let mut rng = StdRng::seed_from_u64(rep);
                let red_bytes = use_case
                    .byte_report(tree, &Coloring::all_red(tree.n_switches()), &mut rng)
                    .total_bytes as f64;
                let mut rng = StdRng::seed_from_u64(rep);
                let blue_bytes = use_case
                    .byte_report(tree, &Coloring::all_blue(tree.n_switches()), &mut rng)
                    .total_bytes as f64;
                (
                    report.dp,
                    report.normalized_cost,
                    soar_bytes / red_bytes,
                    soar_bytes / blue_bytes,
                )
            });
        let mut pair_results = results.into_iter();
        for &k in budgets {
            let mut util_acc = 0.0;
            let mut red_acc = 0.0;
            let mut blue_acc = 0.0;
            for _rep in 0..reps {
                let (report_dp, util, red_ratio, blue_ratio) =
                    pair_results.next().expect("one result per pair");
                dp.note(report_dp);
                util_acc += util;
                red_acc += red_ratio;
                blue_acc += blue_ratio;
            }
            let reps_f = reps as f64;
            util_series.push(k as f64, util_acc / reps_f);
            red_series.push(k as f64, red_acc / reps_f);
            blue_series.push(k as f64, blue_acc / reps_f);
        }
        utilization.push(util_series);
        bytes_vs_red.push(red_series);
        bytes_vs_blue.push(blue_series);
    }
    vec![utilization, bytes_vs_red, bytes_vs_blue]
}

/// Replays the churn timeline once per repetition on the `soar-online`
/// incremental engine — every epoch verified bit-identical to a from-scratch
/// solve — and charts the mean placement trajectory. The (rep) replays fan out
/// on the pool; per-epoch metrics fold in submission order, so the chart data
/// is deterministic regardless of scheduling.
fn run_dynamic_churn(
    spec: &ExperimentSpec,
    title: &str,
    scenario: &ScenarioSpec,
    budget: usize,
    epochs: usize,
    model: &ChurnModel,
    seed_stride: u64,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let rep_ids: Vec<u64> = (0..reps).collect();
    let reports: Vec<soar_online::ChurnReport> = soar_pool::global().map(&rep_ids, |&rep| {
        let seed = spec.base_seed + rep * seed_stride;
        let instance = scenario.instance_seeded(scenario.seed.wrapping_add(seed), budget);
        let timeline = model.generate(
            instance.tree(),
            epochs,
            // A distinct stream so the timeline does not depend on how many
            // random numbers the instance draw consumed.
            &mut StdRng::seed_from_u64(seed.wrapping_add(0xD11E)),
        );
        let mut dynamic = DynamicInstance::from_instance(&instance);
        OnlineDriver::with_verification(Verify::Solution)
            .run(&mut dynamic, &timeline)
            .expect("generated timelines replay cleanly")
    });

    let mut cost_chart = Chart::new(
        format!("{title}: cost over time"),
        "epoch",
        "utilization complexity",
    );
    let mut cost = Series::new("SOAR (incremental)");
    let mut all_red = Series::new("All red");
    let mut moves_chart = Chart::new(
        format!("{title}: placement churn"),
        "epoch",
        "placement moves",
    );
    let mut moves = Series::new("moves");
    let mut cells_chart = Chart::new(
        format!("{title}: DP cell writes"),
        "epoch",
        "X cells written",
    );
    let mut incremental_cells = Series::new("incremental");
    let mut full_cells = Series::new("from-scratch");
    let reps_f = reps as f64;
    for epoch in 0..epochs {
        let mean = |f: &dyn Fn(&soar_online::EpochMetrics) -> f64| {
            reports.iter().map(|r| f(&r.epochs[epoch])).sum::<f64>() / reps_f
        };
        let x = epoch as f64;
        cost.push(x, mean(&|e| e.cost));
        all_red.push(x, mean(&|e| e.all_red_cost));
        moves.push(x, mean(&|e| e.moves as f64));
        incremental_cells.push(x, mean(&|e| e.cells_written as f64));
        full_cells.push(x, mean(&|e| e.cells_full as f64));
    }
    cost_chart.push(cost);
    cost_chart.push(all_red);
    moves_chart.push(moves);
    cells_chart.push(incremental_cells);
    cells_chart.push(full_cells);
    vec![cost_chart, moves_chart, cells_chart]
}

/// Rebuilds a fabric with the repetition's load redraw folded into its seed.
/// The repetitions stay a sequential outer loop: [`soar_fabric::DecomposeSolver`]
/// already fans its per-tree DP out on the global pool, and nesting pool maps
/// buys nothing at 3–10 repetitions.
fn fabric_for_rep(
    fabric: &soar_fabric::FabricSpec,
    base_seed: u64,
    rep: u64,
    seed_stride: u64,
) -> soar_fabric::FabricInstance {
    soar_fabric::FabricSpec {
        seed: fabric.seed.wrapping_add(base_seed + rep * seed_stride),
        ..fabric.clone()
    }
    .build()
    .expect("validated fabric specs build")
}

/// One fabric scenario through every listed fabric solver: chart 0 is the
/// normalized objective at the fabric's budget, chart 1 the core up-link
/// congestion. When the spec lists both `fabric-soar` and `fabric-brute`,
/// equal cost points double as the solver-vs-oracle cross-check (the CI
/// fabric-smoke gate asserts exactly that on the committed golden).
fn run_fabric_solve(
    spec: &ExperimentSpec,
    title: &str,
    fabric: &soar_fabric::FabricSpec,
    solver_names: &[String],
    seed_stride: u64,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut cost_chart = Chart::new(
        format!("{title}: fabric objective"),
        "k",
        "fabric objective (normalized to all-red)",
    );
    let mut congestion_chart = Chart::new(
        format!("{title}: core congestion"),
        "k",
        "summed core up-link utilization",
    );
    let x = fabric.budget as f64;
    for name in solver_names {
        let solver = soar_fabric::solvers::by_name(name)
            .unwrap_or_else(|| panic!("experiment spec references unknown fabric solver `{name}`"));
        let mut cost_acc = 0.0;
        let mut congestion_acc = 0.0;
        for rep in 0..reps {
            let instance = fabric_for_rep(fabric, spec.base_seed, rep, seed_stride);
            let solution = solver.solve(&instance);
            assert!(
                solution.is_feasible(),
                "fabric solver `{name}` returned an infeasible placement"
            );
            cost_acc += solution.normalized_cost;
            congestion_acc += solution.congestion;
        }
        let mut cost_series = Series::new(paper_label(name));
        cost_series.push(x, cost_acc / reps as f64);
        cost_chart.push(cost_series);
        let mut congestion_series = Series::new(paper_label(name));
        congestion_series.push(x, congestion_acc / reps as f64);
        congestion_chart.push(congestion_series);
    }
    vec![cost_chart, congestion_chart]
}

/// Sweeps the per-core congestion bound `c` over a fixed fabric with the
/// exact `fabric-soar` decomposition, charting the cost/congestion trade-off
/// (cost can only improve as the bound relaxes; congestion is what it buys).
fn run_fabric_sweep(
    spec: &ExperimentSpec,
    title: &str,
    fabric: &soar_fabric::FabricSpec,
    bounds: &[usize],
    seed_stride: u64,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut cost_chart = Chart::new(
        format!("{title}: cost vs congestion bound"),
        "c",
        "fabric objective (normalized to all-red)",
    );
    let mut congestion_chart = Chart::new(
        format!("{title}: congestion vs congestion bound"),
        "c",
        "core up-link utilization",
    );
    let mut cost = Series::new("SOAR (fabric)");
    let mut all_red = Series::new("All red");
    let mut total_congestion = Series::new("summed core up-links");
    let mut max_congestion = Series::new("most-utilized core up-link");
    for &c in bounds {
        let mut cost_acc = 0.0;
        let mut total_acc = 0.0;
        let mut max_acc = 0.0;
        for rep in 0..reps {
            let swept = soar_fabric::FabricSpec {
                congestion_bound: c,
                ..fabric.clone()
            };
            let instance = fabric_for_rep(&swept, spec.base_seed, rep, seed_stride);
            let solution = soar_fabric::DecomposeSolver.solve(&instance);
            cost_acc += solution.normalized_cost;
            total_acc += solution.congestion;
            max_acc += solution.max_core_utilization;
        }
        let reps_f = reps as f64;
        cost.push(c as f64, cost_acc / reps_f);
        all_red.push(c as f64, 1.0);
        total_congestion.push(c as f64, total_acc / reps_f);
        max_congestion.push(c as f64, max_acc / reps_f);
    }
    cost_chart.push(cost);
    cost_chart.push(all_red);
    congestion_chart.push(total_congestion);
    congestion_chart.push(max_congestion);
    vec![cost_chart, congestion_chart]
}

fn run_solve_time(
    spec: &ExperimentSpec,
    title: &str,
    sizes: &[usize],
    budgets: &[usize],
    seed_stride: u64,
    dp: &mut DpAggregate,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut chart = Chart::new(title, "k", "solve time [s]");
    for &n in sizes {
        let mut series = Series::new(format!("Size {n}"));
        for &k in budgets {
            let mut total = 0.0;
            for rep in 0..reps {
                let scenario = ScenarioSpec::bt(
                    n,
                    soar_topology::load::LoadSpec::paper_power_law(),
                    RateScheme::paper_constant(),
                    spec.base_seed + rep * seed_stride + n as u64,
                );
                let instance = scenario.instance(k);
                let report = SoarSolver.solve(&instance);
                dp.note_report(&report);
                total += report.wall_time.as_secs_f64();
                std::hint::black_box(report.solution.cost);
            }
            series.push(k as f64, total / reps as f64);
        }
        chart.push(series);
    }
    vec![chart]
}

/// The scaling budgets of Figs. 10a / 11c: `{1 % n, log₂ n, √n}`.
pub fn scaling_budgets(n: usize) -> [usize; 3] {
    [
        ((n as f64) * 0.01).round().max(1.0) as usize,
        (n as f64).log2().round() as usize,
        (n as f64).sqrt().round() as usize,
    ]
}

fn run_scaling(
    spec: &ExperimentSpec,
    title: &str,
    family: ScalingFamily,
    exponents: &[u32],
    seed_stride: u64,
    dp: &mut DpAggregate,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut chart = Chart::new(title, "n", "network utilization (normalized to all-red)");
    let mut blue = Series::new("All blue");
    let mut one_percent = Series::new("k = 1% of n");
    let mut log_n = Series::new("k = log2 n");
    let mut sqrt_n = Series::new("k = sqrt n");
    for &exp in exponents {
        let n = 2usize.pow(exp);
        let budgets = scaling_budgets(n);
        let instances: Vec<Instance> = (0..reps)
            .map(|rep| family.instance(n, spec.base_seed + rep * seed_stride + exp as u64, 0))
            .collect();
        let blue_reports = solve_batch(&StrategySolver::new(Strategy::AllBlue), &instances);
        let sweeps = sweep_budgets_batch(&instances, &budgets);
        let mut acc = [0.0f64; 3];
        let mut blue_acc = 0.0;
        for (blue_report, sweep) in blue_reports.iter().zip(&sweeps) {
            blue_acc += blue_report.normalized_cost;
            for (idx, report) in sweep.iter().enumerate() {
                dp.note_report(report);
                acc[idx] += report.normalized_cost;
            }
        }
        let reps_f = reps as f64;
        one_percent.push(n as f64, acc[0] / reps_f);
        log_n.push(n as f64, acc[1] / reps_f);
        sqrt_n.push(n as f64, acc[2] / reps_f);
        blue.push(n as f64, blue_acc / reps_f);
    }
    chart.push(blue);
    chart.push(one_percent);
    chart.push(log_n);
    chart.push(sqrt_n);
    vec![chart]
}

fn run_required_fraction(
    spec: &ExperimentSpec,
    title: &str,
    exponents: &[u32],
    targets: &[f64],
    search_fraction: f64,
    seed_stride: u64,
    dp: &mut DpAggregate,
) -> Vec<Chart> {
    let reps = spec.repetitions.max(1);
    let mut chart = Chart::new(title, "n", "% blue nodes");
    let mut series: Vec<Series> = targets
        .iter()
        .map(|t| Series::new(format!("{:.0}% saving", t * 100.0)))
        .collect();
    for &exp in exponents {
        let n = 2usize.pow(exp);
        let k_max = ((n as f64) * search_fraction).ceil() as usize;
        let all_budgets: Vec<usize> = (0..=k_max).collect();
        let instances: Vec<Instance> = (0..reps)
            .map(|rep| {
                ScalingFamily::BtPowerLaw.instance(
                    n,
                    spec.base_seed + rep * seed_stride + exp as u64,
                    k_max,
                )
            })
            .collect();
        let sweeps = sweep_budgets_batch(&instances, &all_budgets);
        let mut acc = vec![0.0f64; targets.len()];
        for sweep in &sweeps {
            let curve: Vec<f64> = sweep
                .iter()
                .map(|report| {
                    dp.note_report(report);
                    report.normalized_cost
                })
                .collect();
            for (t_idx, target) in targets.iter().enumerate() {
                let needed = curve
                    .iter()
                    .position(|&norm| norm <= 1.0 - target)
                    .unwrap_or(k_max);
                acc[t_idx] += 100.0 * needed as f64 / (n as f64);
            }
        }
        for (t_idx, s) in series.iter_mut().enumerate() {
            s.push(n as f64, acc[t_idx] / reps as f64);
        }
    }
    for s in series {
        chart.push(s);
    }
    vec![chart]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentKind;
    use soar_topology::load::LoadSpec;

    fn fig2_scenario() -> ScenarioSpec {
        ScenarioSpec {
            topology: soar_core::api::TopologySpec::CompleteKary {
                arity: 2,
                n_switches: 7,
            },
            load: Some(LoadSpec::Explicit(vec![2, 6, 5, 4])),
            placement: Some(LoadPlacement::Leaves),
            rates: None,
            seed: 0,
        }
    }

    #[test]
    fn solver_comparison_reproduces_fig2() {
        let spec = ExperimentSpec::new(
            "fig2-test",
            "fig2",
            1,
            ExperimentKind::SolverComparison {
                title: "fig2".into(),
                scenario: fig2_scenario(),
                budget: 2,
                solvers: vec![
                    "top".into(),
                    "max-load".into(),
                    "level".into(),
                    "soar".into(),
                ],
                include_all_red: false,
            },
        );
        let artifact = spec.run();
        assert_eq!(artifact.charts.len(), 1);
        let chart = &artifact.charts[0];
        let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
        assert_eq!(soar.y_at(2.0), Some(20.0));
        let level = chart.series.iter().find(|s| s.label == "Level").unwrap();
        assert_eq!(level.y_at(2.0), Some(21.0));
        assert_eq!(artifact.reports.len(), 4);
        let dp = artifact.dp.expect("SOAR ran, so dp stats are present");
        assert_eq!(dp.n_switches, 7);
        assert_eq!(dp.alloc_events, 0, "artifact dp is canonicalized");
    }

    #[test]
    fn budget_curve_reproduces_fig3() {
        let spec = ExperimentSpec::new(
            "fig3-test",
            "fig3",
            1,
            ExperimentKind::BudgetCurve {
                title: "fig3".into(),
                scenario: fig2_scenario(),
                budgets: vec![0, 1, 2, 3, 4],
                series_label: "SOAR (optimal)".into(),
            },
        );
        let artifact = spec.run();
        let curve = &artifact.charts[0].series[0];
        assert_eq!(curve.y_at(0.0), Some(51.0));
        assert_eq!(curve.y_at(1.0), Some(35.0));
        assert_eq!(curve.y_at(4.0), Some(11.0));
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = ExperimentSpec::new(
            "grid-test",
            "tiny grid",
            2,
            ExperimentKind::StrategyGrid {
                n: 32,
                cells: vec![GridCell {
                    title: "tiny".into(),
                    load: LoadSpec::paper_power_law(),
                    rates: RateScheme::paper_constant(),
                }],
                budgets: vec![1, 2],
                solvers: vec!["soar".into(), "top".into()],
                seed_stride: 31,
                per_rep_solver_seed: false,
                include_baselines: true,
            },
        );
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.to_json(), b.to_json(), "artifact JSON is byte-identical");
    }

    #[test]
    fn pooled_online_and_byte_runs_are_deterministic() {
        // Tiny fig7- and fig8-shaped specs: the per-repetition loops fan out on
        // the pool, and the artifact JSON must stay byte-identical run to run.
        let online = ExperimentSpec::new(
            "online-test",
            "tiny online multitenant",
            2,
            ExperimentKind::OnlineMultitenant {
                n: 32,
                budget: 4,
                solvers: vec!["soar".into(), "top".into()],
                cells: vec![OnlineCell {
                    title: "tiny workloads sweep".into(),
                    rates: RateScheme::paper_constant(),
                    sweep: OnlineSweep::Workloads {
                        counts: vec![2, 4],
                        capacity: 2,
                    },
                    seed_stride: 7,
                }],
            },
        );
        let a = online.run();
        assert_eq!(a.to_json(), online.run().to_json());
        assert_eq!(a.charts[0].series.len(), 3, "All red + two solvers");

        let bytes = ExperimentSpec::new(
            "bytes-test",
            "tiny use-case bytes",
            2,
            ExperimentKind::UseCaseBytes {
                n: 32,
                budgets: vec![1, 2],
                seed_stride: 97,
                rates: RateScheme::paper_constant(),
                titles: vec!["util".into(), "vs-red".into(), "vs-blue".into()],
                series: vec![crate::spec::ByteSeriesSpec {
                    label: "WC-uniform".into(),
                    load: LoadSpec::paper_uniform(),
                    use_case: crate::spec::UseCaseSpec::WordCount,
                }],
            },
        );
        let a = bytes.run();
        assert_eq!(a.to_json(), bytes.run().to_json());
        assert_eq!(a.charts.len(), 3);
        assert!(a.dp.is_some(), "SOAR ran, so dp stats aggregate");
    }

    #[test]
    fn dynamic_churn_runs_are_deterministic_and_charted() {
        let spec = ExperimentSpec::new(
            "churn-test",
            "tiny dynamic churn",
            2,
            ExperimentKind::DynamicChurn {
                title: "tiny churn".into(),
                scenario: ScenarioSpec::bt(
                    32,
                    LoadSpec::paper_uniform(),
                    RateScheme::paper_constant(),
                    3,
                ),
                budget: 4,
                epochs: 6,
                model: ChurnModel::paper_default(),
                seed_stride: 17,
            },
        );
        let a = spec.run();
        assert_eq!(a.to_json(), spec.run().to_json(), "byte-identical rerun");
        assert_eq!(a.charts.len(), 3, "cost / moves / cell-writes");
        assert!(a.timing_charts.is_empty(), "all churn charts are exact");
        let cells = &a.charts[2];
        let incremental = &cells.series[0];
        let full = &cells.series[1];
        assert_eq!(incremental.points.len(), 6);
        // Epoch 0 is the full solve; later epochs write strictly fewer cells.
        assert_eq!(incremental.points[0].1, full.points[0].1);
        for idx in 1..6 {
            assert!(
                incremental.points[idx].1 < full.points[idx].1,
                "epoch {idx} should be incremental"
            );
        }
        // The cost curve never exceeds its all-red baseline.
        let cost = &a.charts[0].series[0];
        let red = &a.charts[0].series[1];
        for (c, r) in cost.points.iter().zip(&red.points) {
            assert!(c.1 <= r.1 + 1e-9);
        }
    }

    fn tiny_fabric() -> soar_fabric::FabricSpec {
        soar_fabric::FabricSpec {
            topology: soar_fabric::FabricTopology::MultiCoreFatTree {
                cores: 2,
                pods: 3,
                aggs_per_pod: 2,
                tors_per_agg: 2,
            },
            load: LoadSpec::paper_uniform(),
            rates: RateScheme::paper_constant(),
            seed: 11,
            budget: 4,
            congestion_bound: 2,
            congestion_weight: 0.5,
        }
    }

    #[test]
    fn fabric_runs_are_deterministic_and_solver_matches_oracle() {
        let spec = ExperimentSpec::new(
            "fabric-test",
            "tiny fabric solve",
            2,
            ExperimentKind::FabricSolve {
                title: "tiny fabric".into(),
                fabric: tiny_fabric(),
                solvers: vec!["fabric-soar".into(), "fabric-brute".into()],
                seed_stride: 59,
            },
        );
        spec.validate().expect("the tiny fabric spec validates");
        let a = spec.run();
        assert_eq!(a.to_json(), spec.run().to_json(), "byte-identical rerun");
        assert_eq!(a.charts.len(), 2, "objective + congestion");
        assert!(a.timing_charts.is_empty(), "fabric charts are exact");
        let chart = &a.charts[0];
        let soar = &chart.series[0];
        let oracle = &chart.series[1];
        assert_eq!(soar.label, "SOAR (fabric)");
        assert_eq!(oracle.label, "Fabric oracle");
        // The exact decomposition cost-matches exhaustive enumeration.
        assert!(
            (soar.points[0].1 - oracle.points[0].1).abs() < 1e-9,
            "solver {} vs oracle {}",
            soar.points[0].1,
            oracle.points[0].1
        );
        assert!(soar.points[0].1 <= 1.0, "never worse than all-red");
    }

    #[test]
    fn fabric_sweep_relaxing_the_bound_only_helps() {
        let spec = ExperimentSpec::new(
            "fabric-sweep-test",
            "tiny congestion sweep",
            2,
            ExperimentKind::FabricCongestionSweep {
                title: "tiny sweep".into(),
                fabric: tiny_fabric(),
                bounds: vec![1, 2, 3],
                seed_stride: 67,
            },
        );
        spec.validate().expect("the tiny sweep spec validates");
        let a = spec.run();
        assert_eq!(a.to_json(), spec.run().to_json(), "byte-identical rerun");
        assert_eq!(a.charts.len(), 2);
        let cost = &a.charts[0].series[0];
        assert_eq!(cost.points.len(), 3);
        for window in cost.points.windows(2) {
            assert!(
                window[1].1 <= window[0].1 + 1e-12,
                "relaxing c must not increase the optimal cost: {:?}",
                cost.points
            );
        }
    }

    #[test]
    fn paper_labels_cover_the_registry() {
        for name in solvers::NAMES {
            assert_ne!(paper_label(name), name, "{name} should have a paper label");
        }
        assert_eq!(paper_label("custom"), "custom");
    }

    #[test]
    fn strategy_lookup_matches_registry_names() {
        for name in solvers::NAMES {
            if name == "brute-force" {
                assert!(strategy_by_name(name).is_none());
            } else {
                assert!(strategy_by_name(name).is_some(), "{name}");
            }
        }
    }
}
