//! # soar-exp
//!
//! The declarative experiment layer of the SOAR reproduction: **spec → run →
//! artifact**.
//!
//! * [`spec`] — [`ExperimentSpec`]: a named, versioned, serde-backed
//!   description of one evaluation experiment (topology/load/rate grids, budget
//!   sweeps, solver sets, explicit seed rules, repetitions). The concrete specs
//!   for every figure of the paper (Figs. 2, 3, 6–11, the ablation, the
//!   gather perf microbench and the sequel-paper fabric experiments) live in
//!   [`registry`]. User-authored spec files may factor shared scenario
//!   fragments out with [`template`]'s `$include` directive.
//! * [`run`] — executes a spec on the unified `soar_core::api` layer
//!   (`solve_batch` / `sweep_budgets_batch` on the `soar-pool` work-stealing
//!   pool, warm per-thread workspaces) and renders the results. Dynamic
//!   scenarios ([`ExperimentKind::DynamicChurn`]) replay churn timelines on
//!   the `soar-online` incremental engine, each epoch verified bit-identical
//!   to a from-scratch solve.
//! * [`artifact`] — [`RunArtifact`]: the persisted JSON outcome (the spec
//!   itself, an environment stamp, chart data, aggregate DP statistics and —
//!   for single solves — raw [`SolveReport`](soar_core::api::SolveReport)s),
//!   plus [`artifact::diff`] for golden-snapshot regression checking within
//!   [`Tolerances`].
//! * [`history`] — artifact **trajectories**: align an ordered series of
//!   artifacts of one spec by chart point ([`history::Trajectory`]), report
//!   per-metric deltas and best-so-far, and gate a new artifact against a
//!   baseline ([`history::check`]) with relative tolerance on wall-clock
//!   metrics and exact tolerance on everything else. This is the CI
//!   perf-regression gate behind `soar history check`.
//! * [`chart`] — [`Chart`] / [`Series`], the render views (CSV and aligned
//!   tables) of an artifact.
//! * [`perf`] — the allocation-free gather microbench behind
//!   `BENCH_gather.json`, persisted in the same artifact format.
//!
//! The root `soar` CLI (`soar experiment run|list|check`, `soar solve`,
//! `soar sweep`, `soar compare`) is a thin shell over this crate.
//!
//! ```
//! use soar_exp::prelude::*;
//!
//! // Every paper figure is a named, declarative spec...
//! let spec = registry::by_name("fig3", Scale::Quick).unwrap();
//! // ...which runs to a self-describing artifact...
//! let artifact = spec.run();
//! assert_eq!(artifact.charts[0].series[0].y_at(0.0), Some(51.0));
//! assert_eq!(artifact.charts[0].series[0].y_at(4.0), Some(11.0));
//! // ...that diffs cleanly against itself (the golden-snapshot mechanism)...
//! assert!(diff(&artifact, &spec.run(), &Tolerances::default()).is_match());
//! // ...and round-trips through its JSON on-disk format.
//! let reparsed = RunArtifact::from_json(&artifact.to_json()).unwrap();
//! assert_eq!(reparsed, artifact);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod chart;
pub mod history;
pub mod perf;
pub mod registry;
pub mod run;
pub mod spec;
pub mod template;

pub use artifact::{diff, DiffReport, EnvStamp, RunArtifact, Tolerances};
pub use chart::{Chart, Series};
pub use history::{HistoryError, RegressionPolicy, RegressionReport, Trajectory};
pub use spec::{ExperimentKind, ExperimentSpec, Scale, ScenarioSpec, SpecValidationError};
pub use template::TemplateError;

/// One-stop imports for experiment drivers (the CLI, `soar-bench`, tests).
pub mod prelude {
    pub use crate::artifact::{diff, DiffReport, EnvStamp, RunArtifact, Tolerances};
    pub use crate::chart::{Chart, Series};
    pub use crate::history::{
        HistoryError, MetricKey, MetricTrajectory, Regression, RegressionPolicy, RegressionReport,
        Trajectory,
    };
    pub use crate::registry;
    pub use crate::spec::{
        ExperimentKind, ExperimentSpec, Scale, ScenarioSpec, SpecValidationError,
    };
}
