//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is a named, versioned, fully self-contained description
//! of one evaluation experiment: which scenarios to build (topology / load /
//! rate grids), which solvers to run, which budgets to sweep, and — crucially —
//! the explicit seed rules for every random draw, so a spec re-run anywhere
//! reproduces the same numbers. Specs serialize to JSON, which is what the
//! `soar experiment` CLI subcommands read and write.
//!
//! The concrete per-figure specs of the paper live in [`crate::registry`];
//! running a spec ([`ExperimentSpec::run`]) produces a
//! [`RunArtifact`](crate::artifact::RunArtifact).

use serde::{Deserialize, Serialize};
use soar_core::api::{Instance, TopologySpec};
use soar_fabric::FabricSpec;
use soar_multitenant::churn::ChurnModel;
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::rates::RateScheme;

/// Version stamp of the spec/artifact schema; bumped on incompatible changes so
/// [`diff`](crate::artifact::diff) can refuse to compare apples to oranges.
pub const SPEC_VERSION: u32 = 1;

/// Instance sizing: the quick sizes used by CI and `cargo test`, or the paper's
/// full evaluation sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Shrunken instances; the full suite finishes in well under a minute.
    Quick,
    /// The instance sizes reported in the paper (Sec. 5 and the appendices).
    Paper,
}

/// One declarative scenario: a topology plus optional loads and rates.
///
/// Building an [`Instance`] additionally takes a seed (scenarios inside a spec
/// are re-drawn per repetition with seeds derived from the spec's seed rule) and
/// a budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The topology family and size.
    pub topology: TopologySpec,
    /// Load distribution, if any load is to be placed.
    pub load: Option<LoadSpec>,
    /// Where the load goes (required when `load` is set; defaults to leaves).
    #[serde(default)]
    pub placement: Option<LoadPlacement>,
    /// Link-rate scheme (unit rates when absent).
    pub rates: Option<RateScheme>,
    /// Base seed for the scenario's random draws.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A `BT(n)` scenario with the given leaf loads and rates (the Sec. 5 shape).
    pub fn bt(n: usize, load: LoadSpec, rates: RateScheme, seed: u64) -> Self {
        ScenarioSpec {
            topology: TopologySpec::CompleteBinaryBt { n },
            load: Some(load),
            placement: Some(LoadPlacement::Leaves),
            rates: Some(rates),
            seed,
        }
    }

    /// An `SF(n)` scenario with unit load on every switch (the Appendix B shape).
    pub fn sf(n: usize, seed: u64) -> Self {
        ScenarioSpec {
            topology: TopologySpec::ScaleFreeSf { n },
            load: Some(LoadSpec::Constant(1)),
            placement: Some(LoadPlacement::AllSwitches),
            rates: None,
            seed,
        }
    }

    /// Materializes an [`Instance`] with this scenario's own seed.
    pub fn instance(&self, budget: usize) -> Instance {
        self.instance_seeded(self.seed, budget)
    }

    /// Materializes an [`Instance`], overriding the seed (used by repetition
    /// loops, which derive per-repetition seeds from the spec's seed rule).
    pub fn instance_seeded(&self, seed: u64, budget: usize) -> Instance {
        let mut builder = Instance::builder()
            .topology(self.topology.clone())
            .seed(seed)
            .budget(budget);
        if let Some(load) = &self.load {
            let placement = self.placement.unwrap_or(LoadPlacement::Leaves);
            builder = builder.loads(load.clone(), placement);
        }
        if let Some(rates) = &self.rates {
            builder = builder.rates(rates.clone());
        }
        builder
            .build()
            .expect("scenario specs describe well-formed instances")
    }
}

/// One cell of a [`ExperimentKind::StrategyGrid`]: a chart title plus the load /
/// rate pair drawn for every instance of the cell (the topology and budgets are
/// shared across the grid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Title of the chart this cell renders to.
    pub title: String,
    /// Leaf-load distribution of the cell.
    pub load: LoadSpec,
    /// Link-rate scheme of the cell.
    pub rates: RateScheme,
}

/// The WC / PS use cases of Fig. 8, as serializable names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UseCaseSpec {
    /// The word-count use case.
    WordCount,
    /// The ML parameter-server use case.
    ParameterServer,
}

impl UseCaseSpec {
    /// The concrete workload model.
    pub fn use_case(&self) -> soar_apps::UseCase {
        match self {
            UseCaseSpec::WordCount => soar_apps::UseCase::word_count_default(),
            UseCaseSpec::ParameterServer => soar_apps::UseCase::parameter_server_default(),
        }
    }
}

/// One series of a [`ExperimentKind::UseCaseBytes`] experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteSeriesSpec {
    /// Legend label (e.g. "WC-uniform").
    pub label: String,
    /// Leaf-load distribution of the series' instances.
    pub load: LoadSpec,
    /// The application use case measured.
    pub use_case: UseCaseSpec,
}

/// The sweep axis of one [`ExperimentKind::OnlineMultitenant`] cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OnlineSweep {
    /// Sweep the number of arriving workloads at a fixed per-switch capacity.
    Workloads {
        /// The workload counts on the x axis.
        counts: Vec<usize>,
        /// The fixed per-switch workload capacity.
        capacity: u32,
    },
    /// Sweep the per-switch capacity at a fixed number of workloads.
    Capacity {
        /// The capacities on the x axis.
        capacities: Vec<u32>,
        /// The fixed number of arriving workloads.
        workloads: usize,
    },
}

/// One chart of a [`ExperimentKind::OnlineMultitenant`] experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineCell {
    /// Title of the chart this cell renders to.
    pub title: String,
    /// Link-rate scheme applied to the shared base topology.
    pub rates: RateScheme,
    /// What the cell sweeps.
    pub sweep: OnlineSweep,
    /// Seed stride: workload sequence `rep` at x value `x` is drawn with seed
    /// `rep * seed_stride + x`.
    pub seed_stride: u64,
}

/// The instance family of a [`ExperimentKind::ScalingBudgets`] experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingFamily {
    /// `BT(n)` with power-law leaf loads and constant rates (Fig. 10a).
    BtPowerLaw,
    /// `SF(n)` with unit loads (Fig. 11c).
    SfUnit,
}

impl ScalingFamily {
    /// Builds one instance of the family (`budget` is the gather budget).
    pub fn instance(&self, n: usize, seed: u64, budget: usize) -> Instance {
        let scenario = match self {
            ScalingFamily::BtPowerLaw => ScenarioSpec::bt(
                n,
                LoadSpec::paper_power_law(),
                RateScheme::paper_constant(),
                seed,
            ),
            ScalingFamily::SfUnit => ScenarioSpec::sf(n, seed),
        };
        scenario.instance(budget)
    }
}

/// The executable body of an experiment. Each variant maps onto one family of
/// the paper's figures; the runner for every variant lives in [`crate::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// A fixed scenario solved by several solvers at one budget, plotting raw
    /// utilization (Figs. 2 and 11a).
    SolverComparison {
        /// Chart title.
        title: String,
        /// The single scenario.
        scenario: ScenarioSpec,
        /// The budget `k`.
        budget: usize,
        /// Registry names of the solvers, in legend order.
        solvers: Vec<String>,
        /// Append an "All red" baseline series at the instance's all-red cost.
        include_all_red: bool,
    },
    /// The optimal cost-vs-budget curve of one scenario, from a single
    /// SOAR-Gather pass (Fig. 3).
    BudgetCurve {
        /// Chart title.
        title: String,
        /// The single scenario.
        scenario: ScenarioSpec,
        /// The budgets on the x axis.
        budgets: Vec<usize>,
        /// Legend label of the curve.
        series_label: String,
    },
    /// Budgets × solvers on a grid of (load, rates) cells over `BT(n)`, plotting
    /// mean normalized utilization (Fig. 6 and the ablation).
    StrategyGrid {
        /// The `BT(n)` size shared by every cell.
        n: usize,
        /// One chart per cell.
        cells: Vec<GridCell>,
        /// The budgets on the x axis.
        budgets: Vec<usize>,
        /// Registry names of the solvers, in legend order.
        solvers: Vec<String>,
        /// Instance seed for repetition `rep` at budget `k` is
        /// `rep * seed_stride + k`.
        seed_stride: u64,
        /// Reseed randomized solvers with the repetition index (the ablation's
        /// random baseline); `false` keeps the fixed default solver seed.
        per_rep_solver_seed: bool,
        /// Prepend measured "All blue" and constant "All red" baseline series.
        include_baselines: bool,
    },
    /// The online multi-workload scenario (Fig. 7).
    OnlineMultitenant {
        /// The `BT(n)` size of the shared base topology.
        n: usize,
        /// The aggregation budget `k` given to every allocator.
        budget: usize,
        /// Registry names of the placement solvers, in legend order.
        solvers: Vec<String>,
        /// One chart per cell.
        cells: Vec<OnlineCell>,
    },
    /// The WC / PS byte-volume experiment (Fig. 8): three charts (utilization,
    /// bytes vs all-red, bytes vs all-blue) sharing one budget axis.
    UseCaseBytes {
        /// The `BT(n)` size.
        n: usize,
        /// The budgets on the x axis.
        budgets: Vec<usize>,
        /// Instance seed for repetition `rep` at budget `k` is
        /// `rep * seed_stride + k`.
        seed_stride: u64,
        /// Link-rate scheme of every instance.
        rates: RateScheme,
        /// Titles of the three charts, in order (utilization, vs-red, vs-blue).
        titles: Vec<String>,
        /// The plotted series.
        series: Vec<ByteSeriesSpec>,
    },
    /// SOAR wall-clock solve time for growing sizes and budgets (Fig. 9).
    /// The resulting chart is a *timing* chart: goldens compare it structurally,
    /// not value for value.
    SolveTime {
        /// Chart title.
        title: String,
        /// Tree sizes (one series each).
        sizes: Vec<usize>,
        /// The budgets on the x axis.
        budgets: Vec<usize>,
        /// Instance seed for repetition `rep` at size `n` is
        /// `rep * seed_stride + n`.
        seed_stride: u64,
    },
    /// Normalized utilization of the scaling budgets `{1 % n, log₂ n, √n}` on
    /// growing instances (Figs. 10a and 11c), one sweep per instance.
    ScalingBudgets {
        /// Chart title.
        title: String,
        /// The instance family.
        family: ScalingFamily,
        /// Sizes are `2^exp` for each exponent.
        exponents: Vec<u32>,
        /// Instance seed for repetition `rep` at exponent `exp` is
        /// `rep * seed_stride + exp`.
        seed_stride: u64,
    },
    /// The smallest blue fraction reaching a target utilization saving
    /// (Fig. 10b).
    RequiredFraction {
        /// Chart title.
        title: String,
        /// Sizes are `2^exp` for each exponent.
        exponents: Vec<u32>,
        /// The savings targets (fractions of the all-red cost).
        targets: Vec<f64>,
        /// Budgets are searched up to `search_fraction · n`.
        search_fraction: f64,
        /// Instance seed for repetition `rep` at exponent `exp` is
        /// `rep * seed_stride + exp`.
        seed_stride: u64,
    },
    /// The allocation-free gather microbench behind `BENCH_gather.json`: fresh
    /// vs warm-workspace wall times, warm allocation events and peak arena
    /// footprint per tree size. Wall-time charts are *timing* charts.
    GatherMicrobench {
        /// Tree sizes in switches.
        sizes: Vec<usize>,
        /// The gather budget.
        budget: usize,
        /// Tree shape: `None` is the paper's `BT(n)` binary shape; `Some(a)`
        /// is a complete `a`-ary tree (the shallow, wide shape of the
        /// large-scale `gather-scale` runs, where a 1M-switch tree stays a
        /// handful of levels deep).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        arity: Option<usize>,
    },
    /// The tracing-overhead microbench behind `BENCH_gather_obs.json`: the
    /// same warm gather timed with span tracing disabled vs enabled (spans
    /// recorded into per-thread rings, never drained — the steady state of a
    /// daemon whose `/metrics` endpoint is scraped occasionally). Both charts
    /// are *timing* charts; the `scale-smoke` CI gate asserts the
    /// enabled/disabled overhead stays under its budget.
    ObsBench {
        /// Tree sizes in switches.
        sizes: Vec<usize>,
        /// The gather budget.
        budget: usize,
    },
    /// A dynamic-workload scenario replayed by the `soar-online` incremental
    /// re-optimization engine: a base snapshot plus a seeded churn timeline,
    /// re-solved epoch by epoch (each epoch verified bit-identical to a
    /// from-scratch solve). Charts the placement trajectory: cost over time,
    /// placement moves per epoch, and DP cell writes incremental
    /// vs from-scratch. All values are deterministic — goldens diff exactly.
    DynamicChurn {
        /// Chart-title prefix.
        title: String,
        /// The base snapshot the churn starts from.
        scenario: ScenarioSpec,
        /// The starting aggregation budget `k`.
        budget: usize,
        /// Number of epochs replayed.
        epochs: usize,
        /// The churn model generating the timeline.
        model: ChurnModel,
        /// Timeline/instance seed for repetition `rep` is
        /// `base_seed + rep * seed_stride` (plus the scenario seed for the
        /// instance draw).
        seed_stride: u64,
    },
    /// One congestion-constrained fabric scenario (the 2022 sequel paper)
    /// solved by the registered fabric solvers, charting the normalized
    /// fabric objective and the core up-link congestion. Repetition `rep`
    /// redraws the loads with seed `base_seed + rep * seed_stride` added to
    /// the fabric's own seed.
    FabricSolve {
        /// Chart-title prefix.
        title: String,
        /// The fabric scenario (topology, loads, rates, `k`, `c`, γ).
        fabric: FabricSpec,
        /// Registry names of the fabric solvers (see `soar_fabric::solvers`),
        /// in legend order.
        solvers: Vec<String>,
        /// Per-repetition seed stride of the load redraws.
        seed_stride: u64,
    },
    /// Sweep of the per-core congestion bound `c` over a fixed fabric,
    /// charting how tightening the bound trades fabric cost against core
    /// congestion (the sequel paper's central tension). Solved by the exact
    /// `fabric-soar` decomposition at every bound.
    FabricCongestionSweep {
        /// Chart-title prefix.
        title: String,
        /// The fabric scenario; its own `congestion_bound` is overridden by
        /// each x value of the sweep.
        fabric: FabricSpec,
        /// The congestion bounds on the x axis (each must be ≥ 1).
        bounds: Vec<usize>,
        /// Per-repetition seed stride of the load redraws.
        seed_stride: u64,
    },
    /// Provenance record of a `soar loadtest` run against a `soar serve`
    /// daemon (the `BENCH_serve.json` artifact). Like [`Self::Adhoc`] it is
    /// **not re-runnable** through `experiment run` — the loadtest harness
    /// produces it and `soar history check` gates it; the spec fields record
    /// the load shape so baselines only compare like with like.
    ServeBench {
        /// Service tenants registered (each one resident `DynamicInstance`).
        tenants: u64,
        /// `BT(n)` size parameter of every tenant's tree.
        switches: u32,
        /// Aggregation budget `k` per tenant.
        budget: u32,
        /// Concurrent client connections.
        connections: usize,
        /// In-flight request window per connection (closed loop).
        window: usize,
        /// Churn events per request batch.
        events_per_batch: usize,
        /// A solve interleaved after every N churn batches (0 = never).
        solve_every: u64,
        /// Total churn batches sent across all tenants.
        batches: u64,
        /// Open-loop target events/sec (0 = closed-loop).
        rate: f64,
    },
    /// Provenance of a `soar loadtest --chaos` resilience run: fault-injected
    /// churn against a live (possibly killed-and-recovered) daemon. Like
    /// [`ExperimentKind::ServeBench`] it is **not re-runnable** through
    /// `experiment run`; the spec records the load and fault mix so the
    /// `BENCH_chaos.json` baseline only compares like with like.
    ChaosBench {
        /// Service tenants registered.
        tenants: u64,
        /// `BT(n)` size parameter of every tenant's tree.
        switches: u32,
        /// Aggregation budget `k` per tenant.
        budget: u32,
        /// Concurrent client connections.
        connections: usize,
        /// Churn events per request batch.
        events_per_batch: usize,
        /// Total churn batches generated across all tenants.
        batches: u64,
        /// Injection probability: close the connection before sending.
        drop_before_send: f64,
        /// Injection probability: send, then close before reading the ack.
        drop_after_send: f64,
        /// Injection probability: write a torn frame, then close.
        kill_mid_frame: f64,
        /// Injection probability: send an undecodable payload first.
        malformed_frame: f64,
        /// Injection probability: stall before reading the response.
        stall: f64,
    },
    /// Provenance record of a CLI run over an explicit serialized `Instance`
    /// (`soar solve` / `sweep` / `compare`). The instance itself is not
    /// reconstructible from the spec — the artifact's reports and charts carry
    /// the outcome — so ad-hoc specs are **not re-runnable**.
    Adhoc {
        /// The CLI subcommand that produced the artifact.
        command: String,
        /// Label of the instance operated on.
        instance: String,
        /// Registry names of the solvers involved.
        solvers: Vec<String>,
        /// The budgets involved.
        budgets: Vec<usize>,
    },
}

/// A named, versioned, declarative experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Registry name (e.g. "fig6"); also the artifact's file stem.
    pub name: String,
    /// One-line human description.
    pub title: String,
    /// Schema version ([`SPEC_VERSION`]).
    pub version: u32,
    /// Number of random repetitions averaged per point.
    pub repetitions: u64,
    /// Base seed added to every derived instance seed (0 for the paper specs).
    #[serde(default)]
    pub base_seed: u64,
    /// The executable body.
    pub kind: ExperimentKind,
}

impl ExperimentSpec {
    /// Wraps a kind with the given name/title and the defaults shared by the
    /// paper specs (version [`SPEC_VERSION`], base seed 0).
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        repetitions: u64,
        kind: ExperimentKind,
    ) -> Self {
        ExperimentSpec {
            name: name.into(),
            title: title.into(),
            version: SPEC_VERSION,
            repetitions,
            base_seed: 0,
            kind,
        }
    }

    /// Indices (into the artifact's chart list) of wall-clock timing charts,
    /// which golden diffs compare structurally rather than value for value.
    pub fn timing_chart_indices(&self) -> Vec<usize> {
        match &self.kind {
            ExperimentKind::SolveTime { .. } => vec![0],
            // Chart 0 of the microbench is the fresh/warm wall-time chart.
            ExperimentKind::GatherMicrobench { .. } => vec![0],
            // Chart 0 (wall times) and chart 1 (overhead ratio) are both
            // wall-clock derived.
            ExperimentKind::ObsBench { .. } => vec![0, 1],
            // Charts 0 (latency percentiles) and 1 (ns per churn event) are
            // wall-clock; chart 2 (sheds/errors) diffs exactly.
            ExperimentKind::ServeBench { .. } => vec![0, 1],
            // Charts 0 (latency) and 1 (ns/event + recovery replay) are
            // wall-clock; chart 2 (lost/unaccounted batches) diffs exactly.
            ExperimentKind::ChaosBench { .. } => vec![0, 1],
            _ => Vec::new(),
        }
    }

    /// Validates the spec before running it, collecting **every** problem rather
    /// than stopping at the first: unknown solver names, empty grids, seed
    /// strides that would alias repetitions, schema-version mismatches and
    /// degenerate scenario sizes all come back as one actionable error.
    ///
    /// The registry specs always validate; the check exists for user-authored
    /// spec files (`soar experiment run path/to/spec.json`), where a typo should
    /// fail fast with a message naming the field instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), SpecValidationError> {
        let mut problems = Vec::new();
        if self.name.trim().is_empty() {
            problems.push("spec name is empty".to_owned());
        } else if self.name.contains('/') || self.name.contains('\\') || self.name.contains("..") {
            // The name becomes the artifact's file stem; a separator would let a
            // spec document write outside the chosen --out-dir.
            problems.push(format!(
                "spec name `{}` must not contain path separators or `..` \
                 (it becomes the artifact file name)",
                self.name
            ));
        }
        if self.version != SPEC_VERSION {
            problems.push(format!(
                "spec version {} does not match this binary's schema version {SPEC_VERSION}",
                self.version
            ));
        }
        if self.repetitions == 0 {
            problems.push("repetitions must be at least 1".to_owned());
        }
        self.kind.collect_problems(self.repetitions, &mut problems);
        if problems.is_empty() {
            Ok(())
        } else {
            Err(SpecValidationError { problems })
        }
    }
}

/// A failed [`ExperimentSpec::validate`]: one actionable message per problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecValidationError {
    /// Every problem found, in field order.
    pub problems: Vec<String>,
}

impl std::fmt::Display for SpecValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invalid experiment spec ({} problem(s)):",
            self.problems.len()
        )?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecValidationError {}

/// `true` when the registry resolves the solver name **and** a per-repetition
/// reseed is possible for it (everything but the brute-force oracle).
fn is_strategy_name(name: &str) -> bool {
    soar_core::api::solvers::by_name(name).is_some() && name != "brute-force"
}

fn check_solvers(solvers: &[String], problems: &mut Vec<String>) {
    if solvers.is_empty() {
        problems.push("solver list is empty (give at least one registry name)".to_owned());
    }
    for name in solvers {
        if soar_core::api::solvers::by_name(name).is_none() {
            problems.push(format!(
                "unknown solver `{name}` (registered: {})",
                soar_core::api::solvers::NAMES.join(", ")
            ));
        }
    }
}

fn check_stride(what: &str, stride: u64, repetitions: u64, problems: &mut Vec<String>) {
    if stride == 0 && repetitions > 1 {
        problems.push(format!(
            "{what} is 0 with {repetitions} repetitions: every repetition would draw \
             identical instances (use a positive stride or 1 repetition)"
        ));
    }
}

fn check_scenario(scenario: &ScenarioSpec, problems: &mut Vec<String>) {
    let too_small = match scenario.topology {
        // BT(n)/SF(n) count the destination server, so the switch tree needs n >= 2.
        TopologySpec::CompleteBinaryBt { n } | TopologySpec::ScaleFreeSf { n } => n < 2,
        TopologySpec::CompleteKary { arity, n_switches } => arity < 1 || n_switches < 1,
        TopologySpec::RandomRecursive { n_switches }
        | TopologySpec::Path { n_switches }
        | TopologySpec::Star { n_switches } => n_switches < 1,
        TopologySpec::RandomBoundedDegree {
            n_switches,
            max_children,
        } => n_switches < 1 || max_children < 1,
        TopologySpec::TwoTierFatTree { aggs, tors_per_agg } => aggs < 1 || tors_per_agg < 1,
    };
    if too_small {
        problems.push(format!(
            "topology `{}` is too small to build (paper families count the destination, \
             so BT/SF need n >= 2; everything else needs at least 1 switch)",
            scenario.topology.label()
        ));
    }
    if let Some(load) = &scenario.load {
        check_load("scenario load", load, problems);
    }
    if let Some(rates) = &scenario.rates {
        check_rates("scenario rates", rates, problems);
    }
}

/// Serde bypasses the `LoadSpec` constructor asserts, so a hand-edited spec
/// file can carry draws that would panic mid-run (e.g. an empty uniform range);
/// catch them here with the context of where the load sits.
fn check_load(what: &str, load: &LoadSpec, problems: &mut Vec<String>) {
    match load {
        LoadSpec::Uniform { min, max } if min > max => {
            problems.push(format!(
                "{what}: uniform load needs min <= max, got [{min}, {max}]"
            ));
        }
        LoadSpec::PowerLaw { min, max, alpha } => {
            if *min < 1 || min > max {
                problems.push(format!(
                    "{what}: power-law load needs 1 <= min <= max, got [{min}, {max}]"
                ));
            }
            if !(alpha.is_finite() && *alpha > 0.0) {
                problems.push(format!(
                    "{what}: power-law exponent must be positive and finite, got {alpha}"
                ));
            }
        }
        LoadSpec::Explicit(values) if values.is_empty() => {
            problems.push(format!(
                "{what}: explicit load list is empty (every switch would get 0)"
            ));
        }
        _ => {}
    }
}

/// Same serde-bypass problem for rates: every scheme must yield positive,
/// finite link rates, or costs and normalizations become meaningless.
fn check_rates(what: &str, rates: &RateScheme, problems: &mut Vec<String>) {
    let bad = match rates {
        RateScheme::Constant(w) => !(w.is_finite() && *w > 0.0),
        RateScheme::LinearByLevel { base, step } => {
            !(base.is_finite() && step.is_finite() && *base > 0.0 && *step >= 0.0)
        }
        RateScheme::ExponentialByLevel { base, factor } => {
            !(base.is_finite() && factor.is_finite() && *base > 0.0 && *factor > 0.0)
        }
        RateScheme::Explicit(values) => {
            values.is_empty() || values.iter().any(|r| !(r.is_finite() && *r > 0.0))
        }
    };
    if bad {
        problems.push(format!(
            "{what}: `{}` does not yield positive finite rates on every level",
            rates.label()
        ));
    }
}

/// Field-level validation of an embedded [`FabricSpec`]: degenerate topology
/// dimensions, a zero congestion bound and a non-finite/negative γ are exactly
/// the rejections `FabricSpec::build` would return — caught here so a
/// hand-edited spec file fails fast at the CLI (exit 2) with the same
/// actionable messages instead of erroring mid-run.
fn check_fabric(what: &str, fabric: &FabricSpec, problems: &mut Vec<String>) {
    if let Err(e) = fabric.topology.check() {
        problems.push(format!("{what}: {e}"));
    }
    if fabric.congestion_bound == 0 {
        problems.push(format!(
            "{what}: {}",
            soar_fabric::FabricError::ZeroCongestionBound
        ));
    }
    if !(fabric.congestion_weight.is_finite() && fabric.congestion_weight >= 0.0) {
        problems.push(format!(
            "{what}: {}",
            soar_fabric::FabricError::InvalidCongestionWeight(fabric.congestion_weight)
        ));
    }
    check_load(&format!("{what} load"), &fabric.load, problems);
    check_rates(&format!("{what} rates"), &fabric.rates, problems);
}

fn check_fabric_solvers(solvers: &[String], fabric: &FabricSpec, problems: &mut Vec<String>) {
    if solvers.is_empty() {
        problems.push(format!(
            "fabric solver list is empty (registered: {})",
            soar_fabric::solvers::NAMES.join(", ")
        ));
    }
    for name in solvers {
        if soar_fabric::solvers::by_name(name).is_none() {
            problems.push(format!(
                "unknown fabric solver `{name}` (registered: {})",
                soar_fabric::solvers::NAMES.join(", ")
            ));
        }
    }
    if solvers.iter().any(|name| name == "fabric-brute")
        && !soar_fabric::oracle_is_tractable(fabric.topology.n_switches(), fabric.budget)
    {
        problems.push(format!(
            "`fabric-brute` cannot enumerate a {}-switch fabric at budget {} — the \
             exhaustive oracle is for small cross-checks only (drop it from the solver \
             list or shrink the fabric to quick scale)",
            fabric.topology.n_switches(),
            fabric.budget
        ));
    }
}

impl ExperimentKind {
    fn collect_problems(&self, repetitions: u64, problems: &mut Vec<String>) {
        match self {
            ExperimentKind::SolverComparison {
                scenario, solvers, ..
            } => {
                check_scenario(scenario, problems);
                check_solvers(solvers, problems);
            }
            ExperimentKind::BudgetCurve {
                scenario, budgets, ..
            } => {
                check_scenario(scenario, problems);
                if budgets.is_empty() {
                    problems.push("budget grid is empty (give at least one budget)".to_owned());
                }
            }
            ExperimentKind::StrategyGrid {
                n,
                cells,
                budgets,
                solvers,
                seed_stride,
                per_rep_solver_seed,
                ..
            } => {
                if *n < 2 {
                    problems.push(format!("BT({n}) is too small (n counts the destination)"));
                }
                if cells.is_empty() {
                    problems
                        .push("cell grid is empty (give at least one load/rate cell)".to_owned());
                }
                for cell in cells {
                    check_load(&format!("cell `{}` load", cell.title), &cell.load, problems);
                    check_rates(
                        &format!("cell `{}` rates", cell.title),
                        &cell.rates,
                        problems,
                    );
                }
                if budgets.is_empty() {
                    problems.push("budget grid is empty (give at least one budget)".to_owned());
                }
                check_solvers(solvers, problems);
                check_stride("seed_stride", *seed_stride, repetitions, problems);
                if *per_rep_solver_seed {
                    for name in solvers {
                        if soar_core::api::solvers::by_name(name).is_some()
                            && !is_strategy_name(name)
                        {
                            problems.push(format!(
                                "per_rep_solver_seed requires strategy solvers, and `{name}` \
                                 is not one"
                            ));
                        }
                    }
                }
            }
            ExperimentKind::OnlineMultitenant {
                n, solvers, cells, ..
            } => {
                if *n < 2 {
                    problems.push(format!("BT({n}) is too small (n counts the destination)"));
                }
                check_solvers(solvers, problems);
                if cells.is_empty() {
                    problems.push("cell grid is empty (give at least one sweep cell)".to_owned());
                }
                for cell in cells {
                    let empty = match &cell.sweep {
                        OnlineSweep::Workloads { counts, .. } => counts.is_empty(),
                        OnlineSweep::Capacity { capacities, .. } => capacities.is_empty(),
                    };
                    if empty {
                        problems.push(format!(
                            "cell `{}` sweeps an empty grid (give at least one x value)",
                            cell.title
                        ));
                    }
                    check_rates(
                        &format!("cell `{}` rates", cell.title),
                        &cell.rates,
                        problems,
                    );
                    check_stride(
                        &format!("cell `{}` seed_stride", cell.title),
                        cell.seed_stride,
                        repetitions,
                        problems,
                    );
                }
            }
            ExperimentKind::UseCaseBytes {
                n,
                budgets,
                seed_stride,
                rates,
                titles,
                series,
                ..
            } => {
                check_rates("rates", rates, problems);
                if *n < 2 {
                    problems.push(format!("BT({n}) is too small (n counts the destination)"));
                }
                if budgets.is_empty() {
                    problems.push("budget grid is empty (give at least one budget)".to_owned());
                }
                if titles.len() != 3 {
                    problems.push(format!(
                        "UseCaseBytes needs exactly three chart titles \
                         (utilization, vs-red, vs-blue), got {}",
                        titles.len()
                    ));
                }
                if series.is_empty() {
                    problems.push("series list is empty (give at least one series)".to_owned());
                }
                for s in series {
                    check_load(&format!("series `{}` load", s.label), &s.load, problems);
                }
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::SolveTime {
                sizes,
                budgets,
                seed_stride,
                ..
            } => {
                if sizes.is_empty() {
                    problems.push("size grid is empty (give at least one tree size)".to_owned());
                }
                if budgets.is_empty() {
                    problems.push("budget grid is empty (give at least one budget)".to_owned());
                }
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::ScalingBudgets {
                exponents,
                seed_stride,
                ..
            } => {
                if exponents.is_empty() {
                    problems.push("exponent grid is empty (give at least one exponent)".to_owned());
                }
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::RequiredFraction {
                exponents,
                targets,
                search_fraction,
                seed_stride,
                ..
            } => {
                if exponents.is_empty() {
                    problems.push("exponent grid is empty (give at least one exponent)".to_owned());
                }
                if targets.is_empty() {
                    problems
                        .push("target list is empty (give at least one saving target)".to_owned());
                }
                for t in targets {
                    if !(0.0..1.0).contains(t) {
                        problems.push(format!("saving target {t} is outside [0, 1)"));
                    }
                }
                if !(search_fraction.is_finite() && *search_fraction > 0.0) {
                    problems.push(format!(
                        "search_fraction {search_fraction} must be a positive finite fraction"
                    ));
                }
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::GatherMicrobench { sizes, arity, .. } => {
                if sizes.is_empty() {
                    problems.push("size grid is empty (give at least one tree size)".to_owned());
                }
                if arity.is_some_and(|a| a < 2) {
                    problems.push("gather microbench arity must be at least 2".to_owned());
                }
            }
            ExperimentKind::ObsBench { sizes, .. } => {
                if sizes.is_empty() {
                    problems.push("size grid is empty (give at least one tree size)".to_owned());
                }
            }
            ExperimentKind::DynamicChurn {
                scenario,
                epochs,
                model,
                seed_stride,
                ..
            } => {
                check_scenario(scenario, problems);
                if *epochs == 0 {
                    problems.push("epochs must be at least 1".to_owned());
                }
                if !(model.mean_lifetime.is_finite() && model.mean_lifetime >= 1.0) {
                    problems.push(format!(
                        "churn mean_lifetime must be at least one epoch, got {}",
                        model.mean_lifetime
                    ));
                }
                for (what, value) in [
                    ("arrivals_per_epoch", model.arrivals_per_epoch),
                    ("rate_changes_per_epoch", model.rate_changes_per_epoch),
                ] {
                    if !(value.is_finite() && value >= 0.0) {
                        problems.push(format!(
                            "churn {what} must be a non-negative finite rate, got {value}"
                        ));
                    }
                }
                if model.tenant_leaves == 0 {
                    problems.push("churn tenant_leaves must be at least 1".to_owned());
                }
                check_load("churn load", &model.load, problems);
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::FabricSolve {
                fabric,
                solvers,
                seed_stride,
                ..
            } => {
                check_fabric("fabric", fabric, problems);
                check_fabric_solvers(solvers, fabric, problems);
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::FabricCongestionSweep {
                fabric,
                bounds,
                seed_stride,
                ..
            } => {
                check_fabric("fabric", fabric, problems);
                if bounds.is_empty() {
                    problems.push(
                        "congestion-bound grid is empty (give at least one bound)".to_owned(),
                    );
                }
                if bounds.contains(&0) {
                    problems.push(
                        "congestion bound 0 is in the sweep grid (every bound must \
                         admit at least one blue switch per core tree)"
                            .to_owned(),
                    );
                }
                check_stride("seed_stride", *seed_stride, repetitions, problems);
            }
            ExperimentKind::ServeBench { .. } => {
                problems.push(
                    "serve-bench specs record the provenance of a `soar loadtest` run \
                     against a live server and are not re-runnable via `experiment run` \
                     (re-run the loadtest instead)"
                        .to_owned(),
                );
            }
            ExperimentKind::ChaosBench { .. } => {
                problems.push(
                    "chaos-bench specs record the provenance of a `soar loadtest --chaos` \
                     run against a live server and are not re-runnable via `experiment run` \
                     (re-run the chaos loadtest instead)"
                        .to_owned(),
                );
            }
            ExperimentKind::Adhoc { command, .. } => {
                problems.push(format!(
                    "ad-hoc `{command}` specs record the provenance of a CLI run over an \
                     explicit instance and are not re-runnable"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_specs_build_reproducible_instances() {
        let scenario = ScenarioSpec::bt(
            64,
            LoadSpec::paper_power_law(),
            RateScheme::paper_constant(),
            7,
        );
        let a = scenario.instance(4);
        let b = scenario.instance(4);
        assert_eq!(a, b);
        assert_eq!(a.budget(), 4);
        assert_eq!(a.n_switches(), 63);
        // A different seed draws different loads.
        let c = scenario.instance_seeded(8, 4);
        assert_ne!(a.tree(), c.tree());
    }

    #[test]
    fn sf_scenarios_have_unit_loads() {
        let tree_owner = ScenarioSpec::sf(128, 3).instance(0);
        assert_eq!(tree_owner.tree().total_load(), 127);
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = ExperimentSpec::new(
            "demo",
            "a demo spec",
            3,
            ExperimentKind::BudgetCurve {
                title: "demo curve".into(),
                scenario: ScenarioSpec::bt(
                    32,
                    LoadSpec::paper_uniform(),
                    RateScheme::paper_linear(),
                    1,
                ),
                budgets: vec![0, 1, 2],
                series_label: "SOAR".into(),
            },
        );
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let parsed: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn validation_accepts_every_registry_spec() {
        for scale in [Scale::Quick, Scale::Paper] {
            for spec in crate::registry::all(scale) {
                spec.validate()
                    .unwrap_or_else(|e| panic!("registry spec {} rejected: {e}", spec.name));
            }
        }
    }

    #[test]
    fn validation_collects_every_problem() {
        let mut spec = ExperimentSpec::new(
            "bad",
            "a deliberately broken grid",
            3,
            ExperimentKind::StrategyGrid {
                n: 64,
                cells: Vec::new(),
                budgets: Vec::new(),
                solvers: vec!["soar".into(), "frobnicate".into()],
                seed_stride: 0,
                per_rep_solver_seed: false,
                include_baselines: false,
            },
        );
        spec.version = 99;
        let err = spec.validate().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("version 99"), "{text}");
        assert!(text.contains("unknown solver `frobnicate`"), "{text}");
        assert!(text.contains("cell grid is empty"), "{text}");
        assert!(text.contains("budget grid is empty"), "{text}");
        assert!(text.contains("seed_stride is 0"), "{text}");
        assert_eq!(err.problems.len(), 5, "{text}");
    }

    #[test]
    fn validation_flags_strides_reps_and_adhoc() {
        let mut spec = ExperimentSpec::new(
            "t",
            "solve-time stride",
            2,
            ExperimentKind::SolveTime {
                title: "t".into(),
                sizes: vec![64],
                budgets: vec![2],
                seed_stride: 0,
            },
        );
        assert!(spec.validate().is_err(), "stride 0 with 2 reps aliases");
        spec.repetitions = 1;
        assert!(spec.validate().is_ok(), "stride 0 is fine for 1 repetition");
        spec.repetitions = 0;
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("repetitions must be at least 1"));

        spec.repetitions = 1;
        for evil in ["../evil", "a/b", "a\\b"] {
            spec.name = evil.into();
            assert!(
                spec.validate()
                    .unwrap_err()
                    .to_string()
                    .contains("path separators"),
                "{evil} should be rejected as an artifact file stem"
            );
        }

        let adhoc = ExperimentSpec::new(
            "adhoc-solve",
            "provenance only",
            1,
            ExperimentKind::Adhoc {
                command: "solve".into(),
                instance: "x".into(),
                solvers: vec!["soar".into()],
                budgets: vec![1],
            },
        );
        assert!(adhoc
            .validate()
            .unwrap_err()
            .to_string()
            .contains("not re-runnable"));
    }

    #[test]
    fn validation_flags_degenerate_loads_and_rates() {
        // Serde bypasses the constructor asserts, so validate() must catch the
        // draws that would panic mid-run.
        let mut scenario = ScenarioSpec::bt(
            32,
            LoadSpec::Uniform { min: 6, max: 4 },
            RateScheme::Constant(0.0),
            1,
        );
        let spec = |scenario: ScenarioSpec| {
            ExperimentSpec::new(
                "degenerate",
                "degenerate load/rates",
                1,
                ExperimentKind::BudgetCurve {
                    title: "t".into(),
                    scenario,
                    budgets: vec![1],
                    series_label: "SOAR".into(),
                },
            )
        };
        let text = spec(scenario.clone()).validate().unwrap_err().to_string();
        assert!(text.contains("uniform load needs min <= max"), "{text}");
        assert!(text.contains("positive finite rates"), "{text}");

        scenario.load = Some(LoadSpec::PowerLaw {
            min: 0,
            max: 63,
            alpha: -1.0,
        });
        scenario.rates = Some(RateScheme::LinearByLevel {
            base: -5.0,
            step: 1.0,
        });
        let text = spec(scenario).validate().unwrap_err().to_string();
        assert!(text.contains("power-law load needs 1 <= min"), "{text}");
        assert!(text.contains("power-law exponent"), "{text}");
        assert!(text.contains("positive finite rates"), "{text}");
    }

    #[test]
    fn validation_flags_oracle_reseeding_and_tiny_topologies() {
        let spec = ExperimentSpec::new(
            "brute-reseed",
            "per-rep reseed of the oracle",
            2,
            ExperimentKind::StrategyGrid {
                n: 1,
                cells: vec![GridCell {
                    title: "c".into(),
                    load: LoadSpec::paper_uniform(),
                    rates: RateScheme::paper_constant(),
                }],
                budgets: vec![1],
                solvers: vec!["brute-force".into()],
                seed_stride: 7,
                per_rep_solver_seed: true,
                include_baselines: false,
            },
        );
        let text = spec.validate().unwrap_err().to_string();
        assert!(text.contains("per_rep_solver_seed"), "{text}");
        assert!(text.contains("BT(1) is too small"), "{text}");

        let tiny = ExperimentSpec::new(
            "tiny-sf",
            "degenerate scale-free scenario",
            1,
            ExperimentKind::SolverComparison {
                title: "t".into(),
                scenario: ScenarioSpec::sf(1, 0),
                budget: 1,
                solvers: vec!["soar".into()],
                include_all_red: false,
            },
        );
        assert!(tiny
            .validate()
            .unwrap_err()
            .to_string()
            .contains("too small to build"));
    }

    #[test]
    fn validation_flags_degenerate_churn_models() {
        let mut model = ChurnModel::paper_default();
        model.mean_lifetime = 0.5;
        model.arrivals_per_epoch = f64::NAN;
        model.tenant_leaves = 0;
        let spec = ExperimentSpec::new(
            "bad-churn",
            "degenerate churn model",
            2,
            ExperimentKind::DynamicChurn {
                title: "t".into(),
                scenario: ScenarioSpec::bt(
                    32,
                    LoadSpec::paper_uniform(),
                    RateScheme::paper_constant(),
                    1,
                ),
                budget: 4,
                epochs: 0,
                model,
                seed_stride: 0,
            },
        );
        let text = spec.validate().unwrap_err().to_string();
        assert!(text.contains("epochs must be at least 1"), "{text}");
        assert!(text.contains("mean_lifetime"), "{text}");
        assert!(text.contains("arrivals_per_epoch"), "{text}");
        assert!(text.contains("tenant_leaves"), "{text}");
        assert!(text.contains("seed_stride is 0"), "{text}");
    }

    #[test]
    fn validation_flags_degenerate_fabrics() {
        use soar_fabric::{FabricSpec, FabricTopology};

        let good_fabric = FabricSpec {
            topology: FabricTopology::MultiCoreFatTree {
                cores: 2,
                pods: 3,
                aggs_per_pod: 2,
                tors_per_agg: 2,
            },
            load: LoadSpec::paper_uniform(),
            rates: RateScheme::paper_constant(),
            seed: 1,
            budget: 4,
            congestion_bound: 2,
            congestion_weight: 0.5,
        };
        let wrap = |fabric: FabricSpec, solvers: Vec<String>| {
            ExperimentSpec::new(
                "fabric-test",
                "fabric validation",
                1,
                ExperimentKind::FabricSolve {
                    title: "t".into(),
                    fabric,
                    solvers,
                    seed_stride: 1,
                },
            )
        };
        assert!(wrap(good_fabric.clone(), vec!["fabric-soar".into()])
            .validate()
            .is_ok());

        // Zero cores.
        let mut fabric = good_fabric.clone();
        fabric.topology = FabricTopology::MultiCoreFatTree {
            cores: 0,
            pods: 3,
            aggs_per_pod: 2,
            tors_per_agg: 2,
        };
        let text = wrap(fabric, vec!["fabric-soar".into()])
            .validate()
            .unwrap_err()
            .to_string();
        assert!(text.contains("at least one core switch"), "{text}");

        // Degenerate pods (an agg with no ToRs below it).
        let mut fabric = good_fabric.clone();
        fabric.topology = FabricTopology::MultiCoreFatTree {
            cores: 2,
            pods: 3,
            aggs_per_pod: 2,
            tors_per_agg: 0,
        };
        let text = wrap(fabric, vec!["fabric-soar".into()])
            .validate()
            .unwrap_err()
            .to_string();
        assert!(text.contains("at least one ToR"), "{text}");

        // Congestion bound 0 and a bad γ collect together with a bad solver.
        let mut fabric = good_fabric.clone();
        fabric.congestion_bound = 0;
        fabric.congestion_weight = f64::NAN;
        let err = wrap(fabric, vec!["frobnicate".into()])
            .validate()
            .unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("congestion bound must be at least 1"),
            "{text}"
        );
        assert!(text.contains("finite, non-negative"), "{text}");
        assert!(
            text.contains("unknown fabric solver `frobnicate`"),
            "{text}"
        );
        assert_eq!(err.problems.len(), 3, "{text}");

        // The exhaustive oracle is rejected at paper scale.
        let mut fabric = good_fabric.clone();
        fabric.topology = FabricTopology::MultiCoreFatTree {
            cores: 4,
            pods: 8,
            aggs_per_pod: 4,
            tors_per_agg: 8,
        };
        fabric.budget = 16;
        let text = wrap(fabric, vec!["fabric-soar".into(), "fabric-brute".into()])
            .validate()
            .unwrap_err()
            .to_string();
        assert!(text.contains("cannot enumerate"), "{text}");
        assert!(text.contains("small cross-checks only"), "{text}");

        // An empty sweep grid and a zero bound inside it are both flagged.
        let sweep = ExperimentSpec::new(
            "fabric-sweep-test",
            "sweep validation",
            1,
            ExperimentKind::FabricCongestionSweep {
                title: "t".into(),
                fabric: good_fabric.clone(),
                bounds: Vec::new(),
                seed_stride: 1,
            },
        );
        assert!(sweep
            .validate()
            .unwrap_err()
            .to_string()
            .contains("congestion-bound grid is empty"));
        let sweep_zero = ExperimentSpec::new(
            "fabric-sweep-test",
            "sweep validation",
            1,
            ExperimentKind::FabricCongestionSweep {
                title: "t".into(),
                fabric: good_fabric,
                bounds: vec![0, 1],
                seed_stride: 1,
            },
        );
        assert!(sweep_zero
            .validate()
            .unwrap_err()
            .to_string()
            .contains("congestion bound 0 is in the sweep grid"));
    }

    #[test]
    fn timing_charts_are_flagged_per_kind() {
        let timing = ExperimentSpec::new(
            "t",
            "t",
            1,
            ExperimentKind::SolveTime {
                title: "t".into(),
                sizes: vec![64],
                budgets: vec![2],
                seed_stride: 3,
            },
        );
        assert_eq!(timing.timing_chart_indices(), vec![0]);
        let cost = ExperimentSpec::new(
            "c",
            "c",
            1,
            ExperimentKind::SolverComparison {
                title: "c".into(),
                scenario: ScenarioSpec::sf(32, 0),
                budget: 1,
                solvers: vec!["soar".into()],
                include_all_red: false,
            },
        );
        assert!(cost.timing_chart_indices().is_empty());
    }
}
