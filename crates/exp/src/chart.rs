//! Labelled `(x, y)` data series with CSV / table rendering.
//!
//! [`Chart`] and [`Series`] are the *render view* of a
//! [`RunArtifact`](crate::artifact::RunArtifact): experiments produce artifacts,
//! and charts are how artifacts are printed for humans (aligned tables) or for
//! external plotting tools (CSV). Both types serialize with serde, so charts
//! travel inside artifacts unchanged.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One labelled curve: a sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. "SOAR", "Top", "All red").
    pub label: String,
    /// The `(x, y)` points, in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value recorded for a given x, if any.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// A titled group of series sharing an x axis (one paper sub-figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    /// Title of the chart (e.g. "Fig. 6a, power-law load, constant rates").
    pub title: String,
    /// Label of the x axis (e.g. "k").
    pub x_label: String,
    /// Label of the y axis (e.g. "normalized utilization").
    pub y_label: String,
    /// The series of the chart.
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All distinct x values, in first-seen order.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = Vec::new();
        for series in &self.series {
            for &(x, _) in &series.points {
                if !xs.iter().any(|&seen| (seen - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs
    }

    /// Renders the chart as CSV: a header of `x, <label>, <label>, ...` followed by one
    /// row per x value.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write!(out, "{}", self.x_label).unwrap();
        for series in &self.series {
            write!(out, ",{}", series.label).unwrap();
        }
        writeln!(out).unwrap();
        for x in self.xs() {
            write!(out, "{x}").unwrap();
            for series in &self.series {
                match series.y_at(x) {
                    Some(y) => write!(out, ",{y:.6}").unwrap(),
                    None => write!(out, ",").unwrap(),
                }
            }
            writeln!(out).unwrap();
        }
        out
    }

    /// Renders the chart as an aligned, human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).unwrap();
        write!(out, "{:>12}", self.x_label).unwrap();
        for series in &self.series {
            write!(out, " {:>14}", truncate(&series.label, 14)).unwrap();
        }
        writeln!(out).unwrap();
        for x in self.xs() {
            write!(out, "{x:>12.2}").unwrap();
            for series in &self.series {
                match series.y_at(x) {
                    Some(y) => write!(out, " {y:>14.4}").unwrap(),
                    None => write!(out, " {:>14}", "-").unwrap(),
                }
            }
            writeln!(out).unwrap();
        }
        writeln!(out, "({})", self.y_label).unwrap();
        out
    }
}

fn truncate(label: &str, width: usize) -> String {
    if label.len() <= width {
        label.to_string()
    } else {
        label.chars().take(width).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        let mut chart = Chart::new("demo", "k", "normalized utilization");
        let mut a = Series::new("SOAR");
        a.push(1.0, 0.9);
        a.push(2.0, 0.7);
        let mut b = Series::new("Top");
        b.push(1.0, 0.95);
        chart.push(a);
        chart.push(b);
        chart
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        assert_eq!(s.y_at(1.0), Some(2.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.label, "x");
    }

    #[test]
    fn csv_contains_all_points_and_gaps() {
        let chart = sample_chart();
        let csv = chart.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,SOAR,Top");
        assert!(lines[1].starts_with("1,0.9"));
        assert!(
            lines[2].ends_with(','),
            "missing Top value renders as an empty cell"
        );
        assert_eq!(chart.xs(), vec![1.0, 2.0]);
    }

    #[test]
    fn table_is_human_readable() {
        let table = sample_chart().to_table();
        assert!(table.contains("== demo =="));
        assert!(table.contains("SOAR"));
        assert!(table.contains("0.9000"));
        assert!(table.contains('-'), "missing values are dashed");
    }

    #[test]
    fn long_labels_are_truncated_in_tables() {
        let mut chart = Chart::new("t", "x", "y");
        let mut s = Series::new("a-very-long-strategy-label");
        s.push(0.0, 0.0);
        chart.push(s);
        let table = chart.to_table();
        assert!(table.contains("a-very-long-st"));
    }

    #[test]
    fn charts_round_trip_through_json() {
        let chart = sample_chart();
        let json = serde_json::to_string(&chart).unwrap();
        let parsed: Chart = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, chart);
    }
}
