//! Regenerates the figures of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p soar-bench --bin figures              # all figures, quick settings
//! cargo run --release -p soar-bench --bin figures -- --fig 6   # only Fig. 6
//! cargo run --release -p soar-bench --bin figures -- --paper   # paper-scale instances, 10 reps
//! cargo run --release -p soar-bench --bin figures -- --csv     # machine-readable CSV output
//! ```
//!
//! Figures covered: 2, 3, 6, 7, 8, 9, 10, 11, plus the `ablation` pseudo-figure called
//! out in `DESIGN.md`.

use soar_bench::experiments::{self, ExperimentConfig};
use soar_bench::series::Chart;

struct Options {
    figures: Vec<String>,
    config: ExperimentConfig,
    csv: bool,
}

fn parse_args() -> Options {
    let mut figures: Vec<String> = Vec::new();
    let mut config = ExperimentConfig::default();
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let value = args.next().unwrap_or_else(|| usage("--fig needs a value"));
                figures.push(value);
            }
            "--paper" => config = ExperimentConfig::paper(),
            "--reps" => {
                let value = args.next().unwrap_or_else(|| usage("--reps needs a value"));
                config.repetitions = value
                    .parse()
                    .unwrap_or_else(|_| usage("--reps needs a number"));
            }
            "--csv" => csv = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if figures.is_empty() {
        figures = vec![
            "2".into(),
            "3".into(),
            "6".into(),
            "7".into(),
            "8".into(),
            "9".into(),
            "10".into(),
            "11".into(),
            "ablation".into(),
        ];
    }
    Options {
        figures,
        config,
        csv,
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: figures [--fig <2|3|6|7|8|9|10|11|ablation>]... [--paper] [--reps N] [--csv]"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

fn print_charts(charts: &[Chart], csv: bool) {
    for chart in charts {
        if csv {
            println!("# {}", chart.title);
            print!("{}", chart.to_csv());
        } else {
            println!("{}", chart.to_table());
        }
    }
}

fn main() {
    let options = parse_args();
    let config = options.config;
    eprintln!(
        "running figures {:?} ({} repetitions, {})",
        options.figures,
        config.repetitions,
        if config.paper_scale {
            "paper-scale instances"
        } else {
            "quick instances"
        }
    );

    for figure in &options.figures {
        let charts: Vec<Chart> = match figure.as_str() {
            "2" => vec![experiments::fig2()],
            "3" => vec![experiments::fig3()],
            "6" => experiments::fig6(&config),
            "7" => experiments::fig7(&config),
            "8" => experiments::fig8(&config),
            "9" => vec![experiments::fig9(&config)],
            "10" => vec![
                experiments::fig10_scaling(&config),
                experiments::fig10_required_fraction(&config),
            ],
            "11" => experiments::fig11(&config),
            "ablation" => vec![experiments::ablation(&config)],
            other => {
                eprintln!("skipping unknown figure {other}");
                continue;
            }
        };
        print_charts(&charts, options.csv);
    }
}
