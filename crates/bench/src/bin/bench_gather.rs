//! Writes the `BENCH_gather.json` perf-tracking snapshot.
//!
//! Runs the single-instance gather microbench of a registered
//! [`GatherMicrobench`](soar_exp::ExperimentKind::GatherMicrobench) spec —
//! `gather-bench` by default (the `BT(n)` sizes of
//! [`soar_bench::perf::GATHER_BENCH_SIZES`]), or `gather-scale` for the
//! large-tree CI gate (100k switches, 16-ary, compressed arena) — and records,
//! per size, the fresh and warm-workspace wall times, the warm pass's
//! allocation count (expected 0) and the peak arena footprint. The snapshot is
//! a regular [`RunArtifact`](soar_exp::RunArtifact) JSON document — the same
//! format the figure experiments persist — so `soar experiment check` and
//! `soar history check` can diff and gate it. The `bench-smoke` and
//! `scale-smoke` CI jobs run this binary so every commit leaves
//! machine-readable perf data points.
//!
//! With `--obs` it instead runs the tracing-overhead variant (`obs-bench`):
//! the same warm gather timed with span tracing off vs on, written to
//! `BENCH_gather_obs.json` — the artifact behind the `scale-smoke` job's
//! <2% instrumentation-overhead gate. The committed `gather-bench` baseline
//! is untouched by `--obs` runs.
//!
//! ```text
//! cargo run --release -p soar-bench --bin bench_gather [output-path] [--spec NAME] [--obs]
//! ```

use soar_bench::perf::{
    gather_artifact_named, gather_microbench_named, obs_artifact, obs_bench_registered,
};

fn main() {
    let mut out_path: Option<String> = None;
    let mut spec_name = "gather-bench".to_owned();
    let mut obs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => match args.next() {
                Some(name) => spec_name = name,
                None => {
                    eprintln!("error: --spec needs a registry spec name");
                    std::process::exit(2);
                }
            },
            "--obs" => obs = true,
            _ => out_path = Some(arg),
        }
    }
    if obs {
        let out_path = out_path.unwrap_or_else(|| "BENCH_gather_obs.json".to_owned());
        let points = obs_bench_registered();
        for p in &points {
            println!(
                "obs-gather n={:>8} k={:>3}  off {:>9.3} ms   on {:>9.3} ms   overhead {:.4}x",
                p.n_switches,
                p.budget,
                p.warm_seconds * 1e3,
                p.warm_obs_seconds * 1e3,
                p.overhead_ratio(),
            );
        }
        let artifact = obs_artifact(&points);
        std::fs::write(&out_path, artifact.to_json()).expect("writing the obs snapshot failed");
        println!("wrote {out_path}");
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_gather.json".to_owned());
    let points = gather_microbench_named(&spec_name).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for p in &points {
        println!(
            "gather n={:>8} k={:>3}  fresh {:>9.3} ms   warm {:>9.3} ms   allocs {}   peak {:.1} MB",
            p.n_switches,
            p.budget,
            p.fresh_seconds * 1e3,
            p.warm_seconds * 1e3,
            p.warm_alloc_events,
            p.peak_arena_bytes as f64 / 1e6,
        );
    }
    let artifact = gather_artifact_named(&points, &spec_name);
    std::fs::write(&out_path, artifact.to_json()).expect("writing the bench snapshot failed");
    println!("wrote {out_path}");
    // A warm pass that allocates is a regression of the allocation-free gather;
    // fail the smoke job loudly rather than silently recording it.
    if points.iter().any(|p| p.warm_alloc_events != 0) {
        eprintln!("error: warm gather performed heap allocations");
        std::process::exit(1);
    }
}
