//! Writes the `BENCH_gather.json` perf-tracking snapshot.
//!
//! Runs the single-instance gather microbench of a registered
//! [`GatherMicrobench`](soar_exp::ExperimentKind::GatherMicrobench) spec —
//! `gather-bench` by default (the `BT(n)` sizes of
//! [`soar_bench::perf::GATHER_BENCH_SIZES`]), or `gather-scale` for the
//! large-tree CI gate (100k switches, 16-ary, compressed arena) — and records,
//! per size, the fresh and warm-workspace wall times, the warm pass's
//! allocation count (expected 0) and the peak arena footprint. The snapshot is
//! a regular [`RunArtifact`](soar_exp::RunArtifact) JSON document — the same
//! format the figure experiments persist — so `soar experiment check` and
//! `soar history check` can diff and gate it. The `bench-smoke` and
//! `scale-smoke` CI jobs run this binary so every commit leaves
//! machine-readable perf data points.
//!
//! ```text
//! cargo run --release -p soar-bench --bin bench_gather [output-path] [--spec NAME]
//! ```

use soar_bench::perf::{gather_artifact_named, gather_microbench_named};

fn main() {
    let mut out_path = "BENCH_gather.json".to_owned();
    let mut spec_name = "gather-bench".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => match args.next() {
                Some(name) => spec_name = name,
                None => {
                    eprintln!("error: --spec needs a registry spec name");
                    std::process::exit(2);
                }
            },
            _ => out_path = arg,
        }
    }
    let points = gather_microbench_named(&spec_name).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for p in &points {
        println!(
            "gather n={:>8} k={:>3}  fresh {:>9.3} ms   warm {:>9.3} ms   allocs {}   peak {:.1} MB",
            p.n_switches,
            p.budget,
            p.fresh_seconds * 1e3,
            p.warm_seconds * 1e3,
            p.warm_alloc_events,
            p.peak_arena_bytes as f64 / 1e6,
        );
    }
    let artifact = gather_artifact_named(&points, &spec_name);
    std::fs::write(&out_path, artifact.to_json()).expect("writing the bench snapshot failed");
    println!("wrote {out_path}");
    // A warm pass that allocates is a regression of the allocation-free gather;
    // fail the smoke job loudly rather than silently recording it.
    if points.iter().any(|p| p.warm_alloc_events != 0) {
        eprintln!("error: warm gather performed heap allocations");
        std::process::exit(1);
    }
}
