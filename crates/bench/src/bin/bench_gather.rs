//! Writes the `BENCH_gather.json` perf-tracking snapshot.
//!
//! Runs the single-instance gather microbench over the tree sizes of
//! [`soar_bench::perf::GATHER_BENCH_SIZES`] and records, per size, the fresh and
//! warm-workspace wall times, the warm pass's allocation count (expected 0) and
//! the peak arena footprint. The snapshot is a regular
//! [`RunArtifact`](soar_exp::RunArtifact) JSON document — the same format the
//! figure experiments persist — so `soar experiment check` can diff it. The
//! `bench-smoke` CI job runs this binary so every commit leaves a
//! machine-readable perf data point.
//!
//! ```text
//! cargo run --release -p soar-bench --bin bench_gather [output-path]
//! ```

use soar_bench::perf::{gather_artifact, gather_microbench};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gather.json".to_owned());
    let points = gather_microbench();
    for p in &points {
        println!(
            "gather n={:>6} k={:>3}  fresh {:>9.3} ms   warm {:>9.3} ms   allocs {}   peak {:.1} MB",
            p.n_switches,
            p.budget,
            p.fresh_seconds * 1e3,
            p.warm_seconds * 1e3,
            p.warm_alloc_events,
            p.peak_arena_bytes as f64 / 1e6,
        );
    }
    let artifact = gather_artifact(&points);
    std::fs::write(&out_path, artifact.to_json()).expect("writing the bench snapshot failed");
    println!("wrote {out_path}");
    // A warm pass that allocates is a regression of the allocation-free gather;
    // fail the smoke job loudly rather than silently recording it.
    if points.iter().any(|p| p.warm_alloc_events != 0) {
        eprintln!("error: warm gather performed heap allocations");
        std::process::exit(1);
    }
}
