//! Builders for the evaluation instances of Sec. 5 and the appendices.
//!
//! The canonical entry points are [`bt_scenario`] and [`sf_scenario`], which return
//! first-class [`Instance`]s for the unified `soar_core::api` layer; the historical
//! tree-returning helpers ([`bt_instance`], [`sf_instance`]) delegate to them.

use soar_core::api::{Instance, TopologySpec};
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::rates::RateScheme;
use soar_topology::Tree;

/// The two leaf-load distributions compared throughout Sec. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Uniform integer load in `[4, 6]`.
    Uniform,
    /// Heavy-tailed power-law load with mean 5.
    PowerLaw,
}

impl LoadKind {
    /// The corresponding load specification.
    pub fn spec(&self) -> LoadSpec {
        match self {
            LoadKind::Uniform => LoadSpec::paper_uniform(),
            LoadKind::PowerLaw => LoadSpec::paper_power_law(),
        }
    }

    /// A label matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            LoadKind::Uniform => "uniform",
            LoadKind::PowerLaw => "power-law",
        }
    }

    /// Both load kinds, in the paper's plotting order (power-law on top; must
    /// mirror `soar_exp::registry::paper_loads`, asserted by test).
    pub const ALL: [LoadKind; 2] = [LoadKind::PowerLaw, LoadKind::Uniform];
}

/// The three link-rate regimes of Sec. 5 (Figs. 6a-6c and 7a-7c), delegated to
/// the experiment registry so bench and specs share one ordering.
pub fn rate_schemes() -> [RateScheme; 3] {
    soar_exp::registry::rate_schemes()
}

/// A `BT(n)` scenario with leaf loads drawn from `load` and the given rate scheme,
/// as a first-class [`Instance`] with budget `k`.
pub fn bt_scenario(n: usize, load: LoadKind, rates: &RateScheme, seed: u64, k: usize) -> Instance {
    Instance::builder()
        .topology(TopologySpec::CompleteBinaryBt { n })
        .leaf_loads(load.spec())
        .rates(rates.clone())
        .seed(seed)
        .budget(k)
        .label(format!("BT({n})/{}/{}#{seed}", load.label(), rates.label()))
        .build()
        .expect("BT scenarios are always well-formed")
}

/// An `SF(n)` (random preferential attachment) scenario with unit load on every
/// switch and unit rates (Appendix B), as a first-class [`Instance`].
pub fn sf_scenario(n: usize, seed: u64, k: usize) -> Instance {
    Instance::builder()
        .topology(TopologySpec::ScaleFreeSf { n })
        .loads(LoadSpec::Constant(1), LoadPlacement::AllSwitches)
        .seed(seed)
        .budget(k)
        .label(format!("SF({n})#{seed}"))
        .build()
        .expect("SF scenarios are always well-formed")
}

/// A `BT(n)` instance with leaf loads drawn from `load` and the given rate scheme.
///
/// Delegates to [`bt_scenario`]; kept for callers that want a bare [`Tree`].
pub fn bt_instance(n: usize, load: LoadKind, rates: &RateScheme, seed: u64) -> Tree {
    bt_scenario(n, load, rates, seed, 0).tree().clone()
}

/// An `SF(n)` (random preferential attachment) instance with unit load on every switch
/// and unit rates, as used in Appendix B.
///
/// Delegates to [`sf_scenario`]; kept for callers that want a bare [`Tree`].
pub fn sf_instance(n: usize, seed: u64) -> Tree {
    sf_scenario(n, seed, 0).tree().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_instance_matches_configuration() {
        let tree = bt_instance(256, LoadKind::Uniform, &RateScheme::paper_linear(), 3);
        assert_eq!(tree.n_switches(), 255);
        assert!(tree.total_load() >= 4 * 128);
        assert_eq!(tree.rate(0), 8.0);
        // Deterministic per seed.
        let again = bt_instance(256, LoadKind::Uniform, &RateScheme::paper_linear(), 3);
        assert_eq!(tree, again);
    }

    #[test]
    fn sf_instance_has_unit_loads() {
        let tree = sf_instance(128, 7);
        assert_eq!(tree.n_switches(), 127);
        assert_eq!(tree.total_load(), 127);
    }

    #[test]
    fn scenarios_wrap_the_same_trees_as_the_legacy_helpers() {
        let scenario = bt_scenario(64, LoadKind::PowerLaw, &RateScheme::paper_constant(), 9, 4);
        assert_eq!(scenario.budget(), 4);
        assert!(scenario.label().starts_with("BT(64)/power-law"));
        assert_eq!(
            scenario.tree(),
            &bt_instance(64, LoadKind::PowerLaw, &RateScheme::paper_constant(), 9)
        );
        let sf = sf_scenario(128, 7, 2);
        assert_eq!(sf.tree(), &sf_instance(128, 7));
        assert_eq!(sf.budget(), 2);
    }

    #[test]
    fn load_kind_helpers() {
        assert_eq!(LoadKind::Uniform.label(), "uniform");
        assert_eq!(LoadKind::PowerLaw.label(), "power-law");
        assert_eq!(LoadKind::ALL.len(), 2);
        assert_eq!(rate_schemes().len(), 3);
    }

    #[test]
    fn load_kinds_mirror_the_registry_ordering() {
        let registry = soar_exp::registry::paper_loads();
        for (kind, (spec, label)) in LoadKind::ALL.iter().zip(registry) {
            assert_eq!(kind.spec(), spec);
            assert_eq!(kind.label(), label);
        }
    }
}
