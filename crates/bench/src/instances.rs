//! Builders for the evaluation instances of Sec. 5 and the appendices.

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_topology::builders;
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::rates::RateScheme;
use soar_topology::Tree;

/// The two leaf-load distributions compared throughout Sec. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Uniform integer load in `[4, 6]`.
    Uniform,
    /// Heavy-tailed power-law load with mean 5.
    PowerLaw,
}

impl LoadKind {
    /// The corresponding load specification.
    pub fn spec(&self) -> LoadSpec {
        match self {
            LoadKind::Uniform => LoadSpec::paper_uniform(),
            LoadKind::PowerLaw => LoadSpec::paper_power_law(),
        }
    }

    /// A label matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            LoadKind::Uniform => "uniform",
            LoadKind::PowerLaw => "power-law",
        }
    }

    /// Both load kinds, in the paper's plotting order (power-law on top).
    pub const ALL: [LoadKind; 2] = [LoadKind::PowerLaw, LoadKind::Uniform];
}

/// The three link-rate regimes of Sec. 5 (Figs. 6a-6c and 7a-7c).
pub fn rate_schemes() -> [RateScheme; 3] {
    [
        RateScheme::paper_constant(),
        RateScheme::paper_linear(),
        RateScheme::paper_exponential(),
    ]
}

/// A `BT(n)` instance with leaf loads drawn from `load` and the given rate scheme.
pub fn bt_instance(n: usize, load: LoadKind, rates: &RateScheme, seed: u64) -> Tree {
    let mut tree = builders::complete_binary_tree_bt(n);
    let mut rng = StdRng::seed_from_u64(seed);
    tree.apply_leaf_loads(&load.spec(), &mut rng);
    tree.apply_rates(rates);
    tree
}

/// An `SF(n)` (random preferential attachment) instance with unit load on every switch
/// and unit rates, as used in Appendix B.
pub fn sf_instance(n: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = builders::scale_free_tree_sf(n, &mut rng);
    let mut load_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    tree.apply_loads(
        &LoadSpec::Constant(1),
        LoadPlacement::AllSwitches,
        &mut load_rng,
    );
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_instance_matches_configuration() {
        let tree = bt_instance(256, LoadKind::Uniform, &RateScheme::paper_linear(), 3);
        assert_eq!(tree.n_switches(), 255);
        assert!(tree.total_load() >= 4 * 128);
        assert_eq!(tree.rate(0), 8.0);
        // Deterministic per seed.
        let again = bt_instance(256, LoadKind::Uniform, &RateScheme::paper_linear(), 3);
        assert_eq!(tree, again);
    }

    #[test]
    fn sf_instance_has_unit_loads() {
        let tree = sf_instance(128, 7);
        assert_eq!(tree.n_switches(), 127);
        assert_eq!(tree.total_load(), 127);
    }

    #[test]
    fn load_kind_helpers() {
        assert_eq!(LoadKind::Uniform.label(), "uniform");
        assert_eq!(LoadKind::PowerLaw.label(), "power-law");
        assert_eq!(LoadKind::ALL.len(), 2);
        assert_eq!(rate_schemes().len(), 3);
    }
}
