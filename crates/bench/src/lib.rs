//! # soar-bench
//!
//! Experiment harness that regenerates every figure of the SOAR paper's evaluation
//! (Figs. 2, 3 and 6-11). The figures themselves are defined declaratively as
//! [`soar_exp::ExperimentSpec`]s in `soar_exp::registry`; this crate is the thin
//! render layer on top. It exposes:
//!
//! * [`series`] — the [`Chart`](series::Chart) / [`Series`](series::Series) render
//!   views (re-exported from `soar_exp::chart`);
//! * [`instances`] — builders for the evaluation instances (BT(n) / SF(n) with the
//!   paper's load distributions and link-rate schemes);
//! * [`experiments`] — one function per figure, each resolving the registry spec,
//!   running it and returning the labelled charts the `figures` binary prints;
//! * [`perf`] — the gather perf snapshot (`BENCH_gather.json`) in the shared
//!   `RunArtifact` format, with a compat reader for the legacy format.
//!
//! Criterion benchmarks (under `benches/`) time the computational kernels themselves —
//! most importantly SOAR-Gather's `O(n · h · k²)` scaling, which reproduces Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod instances;
pub mod perf;
pub mod series;
