//! # soar-bench
//!
//! Experiment harness that regenerates every figure of the SOAR paper's evaluation
//! (Figs. 2, 3 and 6-11). The library exposes:
//!
//! * [`series`] — a tiny data-series container with CSV / table printing;
//! * [`instances`] — builders for the evaluation instances (BT(n) / SF(n) with the
//!   paper's load distributions and link-rate schemes);
//! * [`experiments`] — one function per figure, each returning labelled charts that the
//!   `figures` binary prints (and `EXPERIMENTS.md` records).
//!
//! Criterion benchmarks (under `benches/`) time the computational kernels themselves —
//! most importantly SOAR-Gather's `O(n · h · k²)` scaling, which reproduces Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod instances;
pub mod perf;
pub mod series;
