//! Data-series plumbing for the experiment harness, re-exported from
//! [`soar_exp::chart`].
//!
//! [`Chart`] and [`Series`] moved into the `soar-exp` crate when the experiment
//! layer became declarative (they are the render view of a
//! [`RunArtifact`](soar_exp::RunArtifact) and serialize with it); this module
//! keeps the historical `soar_bench::series` paths working.

pub use soar_exp::chart::{Chart, Series};
