//! The gather microbenchmark behind the `bench-smoke` CI job.
//!
//! One instrumented measurement per tree size: wall time of a fresh
//! (allocate-every-time) SOAR-Gather versus a warm [`SolverWorkspace`] replay,
//! plus the workspace's allocation count and peak arena footprint. The criterion
//! bench `batch_solve` (group `gather`) times the same routine interactively; the
//! `bench_gather` binary runs it briefly and writes `BENCH_gather.json` so the
//! perf trajectory is tracked commit over commit.

use crate::instances::{bt_scenario, LoadKind};
use soar_core::api::Instance;
use soar_core::workspace::SolverWorkspace;
use soar_topology::rates::RateScheme;
use std::time::Instant;

/// The budget the microbench solves for (mid-range: large enough that the `k²`
/// inner loops dominate, small enough that 16k switches stay sub-second).
pub const GATHER_BENCH_BUDGET: usize = 16;

/// Tree sizes of the microbench, in **switches** (the paper's `BT(n)` counts the
/// destination, so these are `BT(1024)`, `BT(4096)`, `BT(16384)`).
pub const GATHER_BENCH_SIZES: [usize; 3] = [1024, 4096, 16384];

/// One measured point of the gather microbench.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherBenchPoint {
    /// Number of switches in the instance.
    pub n_switches: usize,
    /// The budget `k`.
    pub budget: usize,
    /// Mean wall time of a fresh gather (new arena every call), in seconds.
    pub fresh_seconds: f64,
    /// Mean wall time of a warm-workspace gather, in seconds.
    pub warm_seconds: f64,
    /// Buffer (re)allocations of the *last* warm pass — 0 is the invariant the
    /// allocation-free gather guarantees.
    pub warm_alloc_events: usize,
    /// Peak workspace footprint (arena + scratch), in bytes.
    pub peak_arena_bytes: usize,
}

impl GatherBenchPoint {
    /// Serializes the point as a JSON object (hand-rolled: the bench result
    /// schema is flat and this keeps the bin free of the serde feature).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"n_switches\":{},\"budget\":{},\"fresh_ms\":{:.4},",
                "\"warm_ms\":{:.4},\"warm_alloc_events\":{},\"peak_arena_bytes\":{}}}"
            ),
            self.n_switches,
            self.budget,
            self.fresh_seconds * 1e3,
            self.warm_seconds * 1e3,
            self.warm_alloc_events,
            self.peak_arena_bytes,
        )
    }
}

/// The `BT(n)` instance the microbench times (power-law leaf loads, constant
/// rates, fixed seed — same family as the Fig. 9 scaling study).
pub fn gather_bench_instance(n: usize) -> Instance {
    bt_scenario(
        n,
        LoadKind::PowerLaw,
        &RateScheme::paper_constant(),
        1,
        GATHER_BENCH_BUDGET,
    )
}

/// Times one instance: `reps` fresh gathers vs `reps` warm-workspace gathers
/// (after one untimed warm-up each).
pub fn measure_gather(instance: &Instance, reps: usize) -> GatherBenchPoint {
    let tree = instance.tree();
    let k = instance.budget();
    let reps = reps.max(1);

    let _ = soar_core::soar_gather(tree, k);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(soar_core::soar_gather(tree, k));
    }
    let fresh_seconds = start.elapsed().as_secs_f64() / reps as f64;

    let mut ws = SolverWorkspace::new();
    let _ = ws.gather(tree, k);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ws.gather(tree, k));
    }
    let warm_seconds = start.elapsed().as_secs_f64() / reps as f64;

    GatherBenchPoint {
        n_switches: tree.n_switches(),
        budget: k,
        fresh_seconds,
        warm_seconds,
        warm_alloc_events: ws.last_alloc_events(),
        peak_arena_bytes: ws.peak_bytes(),
    }
}

/// Runs the whole microbench: one point per size in [`GATHER_BENCH_SIZES`], with
/// repetition counts scaled down for the larger trees so a smoke run stays fast.
pub fn gather_microbench() -> Vec<GatherBenchPoint> {
    GATHER_BENCH_SIZES
        .iter()
        .map(|&n| {
            let reps = (16384 / n).clamp(2, 12);
            measure_gather(&gather_bench_instance(n), reps)
        })
        .collect()
}

/// Formats the whole result set as the `BENCH_gather.json` document.
pub fn to_json_document(points: &[GatherBenchPoint]) -> String {
    let rows: Vec<String> = points.iter().map(GatherBenchPoint::to_json).collect();
    format!(
        "{{\"bench\":\"gather\",\"points\":[\n  {}\n]}}\n",
        rows.join(",\n  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_point_measures_and_serializes() {
        // A small stand-in instance so the test stays fast; the shape of the
        // measurement (positive timings, zero warm allocations) is what matters.
        let instance = bt_scenario(128, LoadKind::PowerLaw, &RateScheme::paper_constant(), 1, 4);
        let point = measure_gather(&instance, 2);
        assert_eq!(point.n_switches, 127);
        assert_eq!(point.budget, 4);
        assert!(point.fresh_seconds > 0.0 && point.warm_seconds > 0.0);
        assert_eq!(point.warm_alloc_events, 0, "warm gather must not allocate");
        assert!(point.peak_arena_bytes > 0);
        let json = point.to_json();
        assert!(json.contains("\"n_switches\":127"));
        assert!(json.contains("\"warm_alloc_events\":0"));
        let doc = to_json_document(&[point]);
        assert!(doc.starts_with("{\"bench\":\"gather\""));
        assert!(doc.ends_with("]}\n"));
    }
}
