//! The gather microbenchmark behind the `bench-smoke` CI job.
//!
//! The measurement itself lives in [`soar_exp::perf`] (re-exported here), and
//! the snapshot is persisted in the shared [`RunArtifact`] format — the same
//! JSON schema every figure experiment writes — via [`gather_artifact`]. The
//! criterion bench `batch_solve` (group `gather`) times the same routine
//! interactively; the `bench_gather` binary runs it briefly and writes
//! `BENCH_gather.json` so the perf trajectory is tracked commit over commit.
//! [`read_snapshot`] additionally understands the legacy hand-rolled
//! `{"bench":"gather",...}` document that predates the artifact format.

pub use soar_exp::perf::{
    gather_bench_instance, gather_bench_instance_shaped, gather_bench_instance_with_budget,
    gather_microbench_shaped, gather_obs_bench, measure_gather, measure_gather_obs,
    obs_bench_charts, points_from_charts, GatherBenchPoint, GatherObsPoint, GATHER_BENCH_BUDGET,
    GATHER_BENCH_SIZES,
};
use soar_exp::registry;
use soar_exp::{RunArtifact, Scale};

/// Runs the whole microbench: one point per size in [`GATHER_BENCH_SIZES`], with
/// repetition counts scaled down for the larger trees so a smoke run stays fast.
pub fn gather_microbench() -> Vec<GatherBenchPoint> {
    soar_exp::perf::gather_microbench(&GATHER_BENCH_SIZES, GATHER_BENCH_BUDGET)
}

/// Wraps measured points in the shared [`RunArtifact`] snapshot format (the
/// `gather-bench` registry spec plus the standard chart rendering).
pub fn gather_artifact(points: &[GatherBenchPoint]) -> RunArtifact {
    gather_artifact_named(points, "gather-bench")
}

/// [`gather_artifact`] under an explicit registry spec name (`gather-bench`
/// or `gather-scale` — any registered [`GatherMicrobench`] spec).
///
/// [`GatherMicrobench`]: soar_exp::ExperimentKind::GatherMicrobench
pub fn gather_artifact_named(points: &[GatherBenchPoint], name: &str) -> RunArtifact {
    let spec =
        registry::by_name(name, Scale::Quick).expect("the gather microbench spec is registered");
    let charts = soar_exp::perf::microbench_charts(points);
    RunArtifact::new(spec, charts, None)
}

/// Runs the microbench described by a registered [`GatherMicrobench`] spec
/// (`gather-bench`, `gather-scale`, ...) at quick scale: the sizes, budget and
/// tree shape all come from the spec, so the CI gates and a local
/// `soar experiment run <name>` measure exactly the same scenarios.
///
/// [`GatherMicrobench`]: soar_exp::ExperimentKind::GatherMicrobench
pub fn gather_microbench_named(name: &str) -> Result<Vec<GatherBenchPoint>, String> {
    let spec = registry::by_name(name, Scale::Quick)
        .ok_or_else(|| format!("unknown registry spec `{name}`"))?;
    let soar_exp::ExperimentKind::GatherMicrobench {
        sizes,
        budget,
        arity,
    } = &spec.kind
    else {
        return Err(format!("spec `{name}` is not a gather microbench"));
    };
    Ok(gather_microbench_shaped(sizes, *budget, *arity))
}

/// Runs the tracing-overhead bench described by the registered `obs-bench`
/// spec (`bench_gather --obs`): same instances and budget as the quick-scale
/// gather microbench, timed with span tracing off vs on.
pub fn obs_bench_registered() -> Vec<GatherObsPoint> {
    let spec = registry::by_name("obs-bench", Scale::Quick).expect("the obs bench is registered");
    let soar_exp::ExperimentKind::ObsBench { sizes, budget } = &spec.kind else {
        unreachable!("the obs-bench registry entry is an ObsBench spec");
    };
    gather_obs_bench(sizes, *budget)
}

/// Wraps obs-overhead points in the shared [`RunArtifact`] snapshot format
/// (the `BENCH_gather_obs.json` document of the `scale-smoke` overhead gate).
pub fn obs_artifact(points: &[GatherObsPoint]) -> RunArtifact {
    let spec = registry::by_name("obs-bench", Scale::Quick).expect("the obs bench is registered");
    RunArtifact::new(spec, obs_bench_charts(points), None)
}

/// Reads a `BENCH_gather.json` snapshot in either format: the current
/// [`RunArtifact`] document, or the legacy hand-rolled
/// `{"bench":"gather","points":[...]}` document written before the artifact
/// format existed.
pub fn read_snapshot(json: &str) -> Result<Vec<GatherBenchPoint>, String> {
    if let Ok(artifact) = RunArtifact::from_json(json) {
        let mut points = points_from_charts(&artifact.charts)
            .ok_or_else(|| "artifact is missing the gather chart set".to_owned())?;
        // The charts carry everything except the budget, which travels in the
        // spec; restore it so both snapshot formats parse identically.
        if let soar_exp::ExperimentKind::GatherMicrobench { budget, .. } = &artifact.spec.kind {
            for point in &mut points {
                point.budget = *budget;
            }
        }
        return Ok(points);
    }
    read_legacy_snapshot(json)
}

/// Parses the legacy pre-artifact snapshot format.
fn read_legacy_snapshot(json: &str) -> Result<Vec<GatherBenchPoint>, String> {
    let value = serde_json::parse_value(json).map_err(|e| e.to_string())?;
    if value.get("bench").and_then(|b| b.as_str()) != Some("gather") {
        return Err("not a gather snapshot (no \"bench\": \"gather\" marker)".to_owned());
    }
    let Some(serde::Value::Arr(rows)) = value.get("points") else {
        return Err("legacy snapshot has no points array".to_owned());
    };
    rows.iter()
        .map(|row| {
            Ok(GatherBenchPoint {
                n_switches: serde::field(row, "n_switches").map_err(|e| e.to_string())?,
                budget: serde::field(row, "budget").map_err(|e| e.to_string())?,
                fresh_seconds: serde::field::<f64>(row, "fresh_ms").map_err(|e| e.to_string())?
                    / 1e3,
                warm_seconds: serde::field::<f64>(row, "warm_ms").map_err(|e| e.to_string())? / 1e3,
                warm_alloc_events: serde::field(row, "warm_alloc_events")
                    .map_err(|e| e.to_string())?,
                peak_arena_bytes: serde::field(row, "peak_arena_bytes")
                    .map_err(|e| e.to_string())?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{bt_scenario, LoadKind};
    use soar_topology::rates::RateScheme;

    #[test]
    fn microbench_point_measures_and_serializes() {
        // A small stand-in instance so the test stays fast; the shape of the
        // measurement (positive timings, zero warm allocations) is what matters.
        let instance = bt_scenario(128, LoadKind::PowerLaw, &RateScheme::paper_constant(), 1, 4);
        let point = measure_gather(&instance, 2);
        assert_eq!(point.n_switches, 127);
        assert_eq!(point.budget, 4);
        assert!(point.fresh_seconds > 0.0 && point.warm_seconds > 0.0);
        assert_eq!(point.warm_alloc_events, 0, "warm gather must not allocate");
        assert!(point.peak_arena_bytes > 0);

        let artifact = gather_artifact(std::slice::from_ref(&point));
        assert_eq!(artifact.spec.name, "gather-bench");
        assert_eq!(artifact.timing_charts, vec![0]);
        let json = artifact.to_json();
        let recovered = read_snapshot(&json).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].n_switches, 127);
        assert_eq!(recovered[0].warm_alloc_events, 0);
        assert!((recovered[0].warm_seconds - point.warm_seconds).abs() < 1e-12);
    }

    #[test]
    fn legacy_snapshots_still_parse() {
        let legacy = concat!(
            "{\"bench\":\"gather\",\"points\":[\n  ",
            "{\"n_switches\":1023,\"budget\":16,\"fresh_ms\":4.3500,",
            "\"warm_ms\":2.0800,\"warm_alloc_events\":0,\"peak_arena_bytes\":1234567}",
            "\n]}\n"
        );
        let points = read_snapshot(legacy).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].n_switches, 1023);
        assert_eq!(points[0].budget, 16);
        assert!((points[0].fresh_seconds - 0.00435).abs() < 1e-12);
        assert!((points[0].warm_seconds - 0.00208).abs() < 1e-12);
        assert_eq!(points[0].peak_arena_bytes, 1234567);

        assert!(read_snapshot("{}").is_err());
        assert!(read_snapshot("not json").is_err());
    }
}
