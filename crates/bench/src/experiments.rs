//! One function per figure of the paper's evaluation.
//!
//! Every function returns [`Chart`]s (labelled series) so the `figures` binary can
//! print them as tables and CSV; `EXPERIMENTS.md` records a snapshot of the output next
//! to the paper's reported numbers. All experiments accept an [`ExperimentConfig`] so
//! that a *quick* variant (smaller trees / fewer repetitions, suitable for CI and for
//! `cargo test`) and the *paper-scale* variant share the same code path.
//!
//! The experiments are written against the unified `soar_core::api` layer: scenarios
//! are [`Instance`]s (see [`crate::instances`]), contenders are [`Solver`]s resolved
//! from the registry, and budget curves come from [`sweep_budgets`], which shares one
//! SOAR-Gather pass across all budgets of a sweep.

use crate::instances::{bt_scenario, rate_schemes, sf_scenario, LoadKind};
use crate::series::{Chart, Series};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_apps::UseCase;
use soar_core::api::{sweep_budgets, Instance, SoarSolver, Solver, StrategySolver};
use soar_core::Strategy;
use soar_multitenant::{workloads::MixedWorkloadGenerator, OnlineAllocator};
use soar_reduce::Coloring;
use soar_topology::builders;
use soar_topology::Tree;

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Number of random repetitions to average over (the paper uses 10).
    pub repetitions: u64,
    /// Run at the paper's instance sizes (`false` shrinks the instances so the full
    /// suite finishes in well under a minute).
    pub paper_scale: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            repetitions: 3,
            paper_scale: false,
        }
    }
}

impl ExperimentConfig {
    /// The paper's configuration: 10 repetitions, full instance sizes.
    pub fn paper() -> Self {
        ExperimentConfig {
            repetitions: 10,
            paper_scale: true,
        }
    }

    fn bt_size(&self) -> usize {
        if self.paper_scale {
            256
        } else {
            128
        }
    }

    fn budgets(&self) -> Vec<usize> {
        vec![1, 2, 4, 8, 16, 32]
    }
}

/// The strategies plotted in Figs. 6 and 7, in the paper's legend order.
const FIG_STRATEGIES: [Strategy; 4] = [
    Strategy::MaxLoad,
    Strategy::Soar,
    Strategy::Top,
    Strategy::Level,
];

fn fig2_tree() -> Tree {
    let mut tree = builders::complete_binary_tree(7);
    for (leaf, load) in [(3usize, 2u64), (4, 6), (5, 5), (6, 4)] {
        tree.set_load(leaf, load);
    }
    tree
}

/// Fig. 2: the motivating example — utilization of the four strategies at `k = 2`.
pub fn fig2() -> Chart {
    let instance = Instance::from_tree(&fig2_tree(), 2).with_label("fig2");
    let mut chart = Chart::new(
        "Fig. 2: motivating example (7 switches, loads 2/6/5/4, k = 2)",
        "k",
        "utilization complexity",
    );
    for strategy in [
        Strategy::Top,
        Strategy::MaxLoad,
        Strategy::Level,
        Strategy::Soar,
    ] {
        let report = StrategySolver::new(strategy).solve(&instance);
        let mut series = Series::new(strategy.name());
        series.push(2.0, report.solution.cost);
        chart.push(series);
    }
    chart
}

/// Fig. 3: optimal utilization of the motivating example for `k = 0..4` — a single
/// gather pass via [`sweep_budgets`].
pub fn fig3() -> Chart {
    let instance = Instance::from_tree(&fig2_tree(), 4).with_label("fig3");
    let mut chart = Chart::new(
        "Fig. 3: optimal utilization vs. budget on the motivating example",
        "k",
        "utilization complexity",
    );
    let mut series = Series::new("SOAR (optimal)");
    for report in sweep_budgets(&instance, &[0, 1, 2, 3, 4]) {
        series.push(report.solution.budget as f64, report.solution.cost);
    }
    chart.push(series);
    chart
}

/// Fig. 6: normalized utilization vs. budget for every strategy, for each load
/// distribution and each link-rate scheme. Returns one chart per (load, rates) pair.
pub fn fig6(config: &ExperimentConfig) -> Vec<Chart> {
    let budgets = config.budgets();
    let mut charts = Vec::new();
    for load in LoadKind::ALL {
        for scheme in rate_schemes() {
            let mut chart = Chart::new(
                format!(
                    "Fig. 6: BT({}), {} load, {} rates",
                    config.bt_size(),
                    load.label(),
                    scheme.label()
                ),
                "k",
                "network utilization (normalized to all-red)",
            );
            let mut all_blue = Series::new("All blue");
            let mut all_red = Series::new("All red");
            let mut per_strategy: Vec<Series> = FIG_STRATEGIES
                .iter()
                .map(|s| Series::new(s.name()))
                .collect();

            for &k in &budgets {
                let mut blue_acc = 0.0;
                let mut acc = vec![0.0; FIG_STRATEGIES.len()];
                for rep in 0..config.repetitions {
                    let instance =
                        bt_scenario(config.bt_size(), load, &scheme, rep * 31 + k as u64, k);
                    blue_acc += StrategySolver::new(Strategy::AllBlue)
                        .solve(&instance)
                        .normalized_cost;
                    for (idx, strategy) in FIG_STRATEGIES.iter().enumerate() {
                        acc[idx] += StrategySolver::new(*strategy)
                            .solve(&instance)
                            .normalized_cost;
                    }
                }
                let reps = config.repetitions as f64;
                all_blue.push(k as f64, blue_acc / reps);
                all_red.push(k as f64, 1.0);
                for (idx, series) in per_strategy.iter_mut().enumerate() {
                    series.push(k as f64, acc[idx] / reps);
                }
            }
            chart.push(all_blue);
            chart.push(all_red);
            for series in per_strategy {
                chart.push(series);
            }
            charts.push(chart);
        }
    }
    charts
}

/// Fig. 7: the online multi-workload scenario. Returns, per rate scheme, two charts:
/// normalized utilization vs. the number of workloads (capacity 4) and vs. the switch
/// capacity (32 workloads).
pub fn fig7(config: &ExperimentConfig) -> Vec<Chart> {
    let n = config.bt_size();
    let k = 16;
    let workload_counts = [4usize, 8, 16, 24, 32];
    let capacities = [2u32, 4, 8, 16, 32];
    let strategies = FIG_STRATEGIES;
    let mut charts = Vec::new();

    for scheme in rate_schemes() {
        // The shared topology carries no load of its own (workloads bring theirs);
        // build it directly instead of drawing-and-discarding a loaded scenario.
        let mut base = builders::complete_binary_tree_bt(n);
        base.apply_rates(&scheme);
        let generator = MixedWorkloadGenerator::paper_default();

        // Sweep 1: number of workloads at capacity 4.
        let mut chart = Chart::new(
            format!(
                "Fig. 7 (top): workloads sweep, {} rates, capacity 4",
                scheme.label()
            ),
            "workloads",
            "network utilization (normalized to all-red)",
        );
        let mut series: Vec<Series> = strategies.iter().map(|s| Series::new(s.name())).collect();
        let mut red = Series::new("All red");
        for &count in &workload_counts {
            let mut acc = vec![0.0; strategies.len()];
            for rep in 0..config.repetitions {
                let mut rng = StdRng::seed_from_u64(rep * 7 + count as u64);
                let workloads = generator.draw_sequence(&base, count, &mut rng);
                for (idx, strategy) in strategies.iter().enumerate() {
                    let mut allocator = OnlineAllocator::new(&base, k, 4);
                    acc[idx] += allocator
                        .run_sequence_with(&workloads, &StrategySolver::new(*strategy))
                        .normalized_total();
                }
            }
            for (idx, s) in series.iter_mut().enumerate() {
                s.push(count as f64, acc[idx] / config.repetitions as f64);
            }
            red.push(count as f64, 1.0);
        }
        chart.push(red);
        for s in series {
            chart.push(s);
        }
        charts.push(chart);

        // Sweep 2: switch capacity with 32 workloads.
        let mut chart = Chart::new(
            format!(
                "Fig. 7 (bottom): capacity sweep, {} rates, 32 workloads",
                scheme.label()
            ),
            "capacity",
            "network utilization (normalized to all-red)",
        );
        let mut series: Vec<Series> = strategies.iter().map(|s| Series::new(s.name())).collect();
        let mut red = Series::new("All red");
        for &capacity in &capacities {
            let mut acc = vec![0.0; strategies.len()];
            for rep in 0..config.repetitions {
                let mut rng = StdRng::seed_from_u64(rep * 13 + capacity as u64);
                let workloads = generator.draw_sequence(&base, 32, &mut rng);
                for (idx, strategy) in strategies.iter().enumerate() {
                    let mut allocator = OnlineAllocator::new(&base, k, capacity);
                    acc[idx] += allocator
                        .run_sequence_with(&workloads, &StrategySolver::new(*strategy))
                        .normalized_total();
                }
            }
            for (idx, s) in series.iter_mut().enumerate() {
                s.push(capacity as f64, acc[idx] / config.repetitions as f64);
            }
            red.push(capacity as f64, 1.0);
        }
        chart.push(red);
        for s in series {
            chart.push(s);
        }
        charts.push(chart);
    }
    charts
}

/// Fig. 8: the WC and PS use cases on constant rates — (a) utilization, (b) bytes
/// normalized to all-red, (c) bytes normalized to all-blue, each vs. the budget.
pub fn fig8(config: &ExperimentConfig) -> Vec<Chart> {
    let n = config.bt_size();
    let budgets: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
    let scheme = soar_topology::rates::RateScheme::paper_constant();

    let mut utilization = Chart::new(
        format!("Fig. 8a: utilization, BT({n}), constant rates"),
        "k",
        "network utilization (normalized to all-red)",
    );
    let mut bytes_vs_red = Chart::new(
        format!("Fig. 8b: bytes vs all-red, BT({n})"),
        "k",
        "bytes (normalized to all-red)",
    );
    let mut bytes_vs_blue = Chart::new(
        format!("Fig. 8c: bytes vs all-blue, BT({n})"),
        "k",
        "bytes (normalized to all-blue)",
    );

    for load in [LoadKind::Uniform, LoadKind::PowerLaw] {
        for use_case in [
            UseCase::word_count_default(),
            UseCase::parameter_server_default(),
        ] {
            let label = format!("{}-{}", use_case.label(), load.label());
            let mut util_series = Series::new(label.clone());
            let mut red_series = Series::new(label.clone());
            let mut blue_series = Series::new(label.clone());
            for &k in &budgets {
                let mut util_acc = 0.0;
                let mut red_acc = 0.0;
                let mut blue_acc = 0.0;
                for rep in 0..config.repetitions {
                    let instance = bt_scenario(n, load, &scheme, rep * 97 + k as u64, k);
                    let report = SoarSolver.solve(&instance);
                    util_acc += report.normalized_cost;

                    let tree = instance.tree();
                    let mut rng = StdRng::seed_from_u64(rep);
                    let soar_bytes = use_case
                        .byte_report(tree, &report.solution.coloring, &mut rng)
                        .total_bytes as f64;
                    let mut rng = StdRng::seed_from_u64(rep);
                    let red_bytes = use_case
                        .byte_report(tree, &Coloring::all_red(tree.n_switches()), &mut rng)
                        .total_bytes as f64;
                    let mut rng = StdRng::seed_from_u64(rep);
                    let blue_bytes = use_case
                        .byte_report(tree, &Coloring::all_blue(tree.n_switches()), &mut rng)
                        .total_bytes as f64;
                    red_acc += soar_bytes / red_bytes;
                    blue_acc += soar_bytes / blue_bytes;
                }
                let reps = config.repetitions as f64;
                util_series.push(k as f64, util_acc / reps);
                red_series.push(k as f64, red_acc / reps);
                blue_series.push(k as f64, blue_acc / reps);
            }
            utilization.push(util_series);
            bytes_vs_red.push(red_series);
            bytes_vs_blue.push(blue_series);
        }
    }
    vec![utilization, bytes_vs_red, bytes_vs_blue]
}

/// Fig. 9: wall-clock running time of SOAR for growing network sizes and budgets
/// (power-law load), read straight from the [`SolveReport`](soar_core::api::SolveReport)
/// wall times.
pub fn fig9(config: &ExperimentConfig) -> Chart {
    let sizes: Vec<usize> = if config.paper_scale {
        vec![256, 512, 1024, 2048]
    } else {
        vec![256, 512]
    };
    let budgets: Vec<usize> = if config.paper_scale {
        vec![4, 8, 16, 32, 64, 128]
    } else {
        vec![4, 8, 16, 32]
    };
    let mut chart = Chart::new("Fig. 9: SOAR solve time (seconds)", "k", "solve time [s]");
    for &n in &sizes {
        let mut series = Series::new(format!("Size {n}"));
        for &k in &budgets {
            let mut total = 0.0;
            for rep in 0..config.repetitions {
                let instance = bt_scenario(
                    n,
                    LoadKind::PowerLaw,
                    &soar_topology::rates::RateScheme::paper_constant(),
                    rep * 3 + n as u64,
                    k,
                );
                let report = SoarSolver.solve(&instance);
                total += report.wall_time.as_secs_f64();
                std::hint::black_box(report.solution.cost);
            }
            series.push(k as f64, total / config.repetitions as f64);
        }
        chart.push(series);
    }
    chart
}

/// The scaling budgets of Figs. 10a / 11c: `{1 % n, log₂ n, √n}`.
fn scaling_budgets(n: usize) -> [usize; 3] {
    [
        ((n as f64) * 0.01).round().max(1.0) as usize,
        (n as f64).log2().round() as usize,
        (n as f64).sqrt().round() as usize,
    ]
}

/// Shared body of Figs. 10a and 11c: normalized utilization for the scaling budgets
/// on growing instances, one [`sweep_budgets`] pass per instance.
fn scaling_chart(
    title: &str,
    exponents: &[u32],
    repetitions: u64,
    make_instance: impl Fn(usize, u32, u64) -> Instance,
) -> Chart {
    let mut chart = Chart::new(title, "n", "network utilization (normalized to all-red)");
    let mut blue = Series::new("All blue");
    let mut one_percent = Series::new("k = 1% of n");
    let mut log_n = Series::new("k = log2 n");
    let mut sqrt_n = Series::new("k = sqrt n");
    for &exp in exponents {
        let n = 2usize.pow(exp);
        let budgets = scaling_budgets(n);
        let mut acc = [0.0f64; 3];
        let mut blue_acc = 0.0;
        for rep in 0..repetitions {
            let instance = make_instance(n, exp, rep);
            blue_acc += StrategySolver::new(Strategy::AllBlue)
                .solve(&instance)
                .normalized_cost;
            for (idx, report) in sweep_budgets(&instance, &budgets).iter().enumerate() {
                acc[idx] += report.normalized_cost;
            }
        }
        let reps = repetitions as f64;
        one_percent.push(n as f64, acc[0] / reps);
        log_n.push(n as f64, acc[1] / reps);
        sqrt_n.push(n as f64, acc[2] / reps);
        blue.push(n as f64, blue_acc / reps);
    }
    chart.push(blue);
    chart.push(one_percent);
    chart.push(log_n);
    chart.push(sqrt_n);
    chart
}

/// Fig. 10a (Appendix A): normalized utilization for `k ∈ {1 % n, log₂ n, √n}` on
/// growing binary trees with power-law load.
pub fn fig10_scaling(config: &ExperimentConfig) -> Chart {
    let exponents: Vec<u32> = if config.paper_scale {
        (8..=12).collect()
    } else {
        (8..=10).collect()
    };
    scaling_chart(
        "Fig. 10a: scaling of SOAR on BT(n), power-law load",
        &exponents,
        config.repetitions,
        |n, exp, rep| {
            bt_scenario(
                n,
                LoadKind::PowerLaw,
                &soar_topology::rates::RateScheme::paper_constant(),
                rep * 19 + exp as u64,
                0,
            )
        },
    )
}

/// Fig. 10b (Appendix A): the smallest fraction of blue nodes (in %) needed to reach a
/// 30 / 50 / 70 % reduction of the all-red utilization.
pub fn fig10_required_fraction(config: &ExperimentConfig) -> Chart {
    let exponents: Vec<u32> = if config.paper_scale {
        (8..=12).collect()
    } else {
        (8..=10).collect()
    };
    let targets = [0.30f64, 0.50, 0.70];
    let mut chart = Chart::new(
        "Fig. 10b: % of blue nodes needed for a target utilization reduction",
        "n",
        "% blue nodes",
    );
    let mut series: Vec<Series> = targets
        .iter()
        .map(|t| Series::new(format!("{:.0}% saving", t * 100.0)))
        .collect();
    for &exp in &exponents {
        let n = 2usize.pow(exp);
        // Search budgets up to 8% of the network; the paper's curves stay below 5%,
        // but a single repetition of the heavy-tailed load needs some headroom.
        let k_max = ((n as f64) * 0.08).ceil() as usize;
        let all_budgets: Vec<usize> = (0..=k_max).collect();
        let mut acc = [0.0f64; 3];
        for rep in 0..config.repetitions {
            let instance = bt_scenario(
                n,
                LoadKind::PowerLaw,
                &soar_topology::rates::RateScheme::paper_constant(),
                rep * 23 + exp as u64,
                k_max,
            );
            // One gather pass; the sweep's per-budget optima already carry the
            // "at most k" (prefix-minimum) semantics.
            let curve: Vec<f64> = sweep_budgets(&instance, &all_budgets)
                .iter()
                .map(|report| report.normalized_cost)
                .collect();
            for (t_idx, target) in targets.iter().enumerate() {
                let needed = curve
                    .iter()
                    .position(|&norm| norm <= 1.0 - target)
                    .unwrap_or(k_max);
                acc[t_idx] += 100.0 * needed as f64 / (n as f64);
            }
        }
        for (t_idx, s) in series.iter_mut().enumerate() {
            s.push(n as f64, acc[t_idx] / config.repetitions as f64);
        }
    }
    for s in series {
        chart.push(s);
    }
    chart
}

/// Fig. 11 (Appendix B): SOAR on scale-free trees — the SF(128) Max-vs-SOAR example and
/// the scaling of the normalized utilization for `k ∈ {1 % n, log₂ n, √n}`.
pub fn fig11(config: &ExperimentConfig) -> Vec<Chart> {
    // The worked SF(128) example.
    let mut example = Chart::new(
        "Fig. 11a/b: SF(128) example, unit loads, k = 4",
        "k",
        "utilization complexity",
    );
    let instance = sf_scenario(128, 42, 4);
    for strategy in [Strategy::MaxDegree, Strategy::Soar] {
        let report = StrategySolver::new(strategy).solve(&instance);
        let mut series = Series::new(strategy.name());
        series.push(4.0, report.solution.cost);
        example.push(series);
    }
    let mut all_red = Series::new("All red");
    all_red.push(4.0, instance.all_red_cost());
    example.push(all_red);

    // Scaling.
    let exponents: Vec<u32> = if config.paper_scale {
        (8..=12).collect()
    } else {
        (8..=10).collect()
    };
    let scaling = scaling_chart(
        "Fig. 11c: scaling of SOAR on SF(n), unit loads",
        &exponents,
        config.repetitions,
        |n, exp, rep| sf_scenario(n, rep * 29 + exp as u64, 0),
    );
    vec![example, scaling]
}

/// Ablation called out in `DESIGN.md`: SOAR's exact DP vs. the greedy marginal-gain
/// heuristic and vs. random placement, on power-law BT instances. One contender
/// list drives both the solving and the series labels; the random baseline is
/// reseeded per repetition so it actually samples placements.
pub fn ablation(config: &ExperimentConfig) -> Chart {
    let n = config.bt_size();
    let budgets = config.budgets();
    let mut chart = Chart::new(
        format!("Ablation: exact DP vs greedy / random on BT({n}), power-law load"),
        "k",
        "network utilization (normalized to all-red)",
    );
    let contenders = [Strategy::Soar, Strategy::Greedy, Strategy::Random];
    let mut series: Vec<Series> = contenders.iter().map(|s| Series::new(s.name())).collect();
    for &k in &budgets {
        let mut acc = vec![0.0; contenders.len()];
        for rep in 0..config.repetitions {
            let instance = bt_scenario(
                n,
                LoadKind::PowerLaw,
                &soar_topology::rates::RateScheme::paper_constant(),
                rep * 41 + k as u64,
                k,
            );
            for (idx, strategy) in contenders.iter().enumerate() {
                acc[idx] += StrategySolver::with_seed(*strategy, rep)
                    .solve(&instance)
                    .normalized_cost;
            }
        }
        for (idx, s) in series.iter_mut().enumerate() {
            s.push(k as f64, acc[idx] / config.repetitions as f64);
        }
    }
    for s in series {
        chart.push(s);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            repetitions: 1,
            paper_scale: false,
        }
    }

    #[test]
    fn fig2_and_fig3_match_the_paper_exactly() {
        let chart = fig2();
        assert_eq!(chart.series.len(), 4);
        let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
        assert_eq!(soar.y_at(2.0), Some(20.0));
        let level = chart.series.iter().find(|s| s.label == "Level").unwrap();
        assert_eq!(level.y_at(2.0), Some(21.0));

        let fig3_chart = fig3();
        let curve = &fig3_chart.series[0];
        assert_eq!(curve.y_at(0.0), Some(51.0));
        assert_eq!(curve.y_at(1.0), Some(35.0));
        assert_eq!(curve.y_at(4.0), Some(11.0));
    }

    #[test]
    fn fig6_soar_dominates_everywhere() {
        let charts = fig6(&tiny());
        assert_eq!(charts.len(), 6);
        for chart in &charts {
            let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
            for series in &chart.series {
                if series.label == "All blue" {
                    continue;
                }
                for &(x, y) in &series.points {
                    let soar_y = soar.y_at(x).unwrap();
                    assert!(
                        soar_y <= y + 1e-9,
                        "{}: SOAR {soar_y} vs {} {y} at k = {x}",
                        chart.title,
                        series.label
                    );
                }
            }
            // Normalized values live in (0, 1].
            for series in &chart.series {
                for &(_, y) in &series.points {
                    assert!(y > 0.0 && y <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fig8_produces_three_charts_with_all_use_cases() {
        let charts = fig8(&ExperimentConfig {
            repetitions: 1,
            paper_scale: false,
        });
        assert_eq!(charts.len(), 3);
        for chart in &charts {
            assert_eq!(chart.series.len(), 4, "{}", chart.title);
        }
        // Fig. 8c: SOAR-over-all-blue ratios are at least 1.
        for series in &charts[2].series {
            for &(_, y) in &series.points {
                assert!(y >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn fig9_times_are_positive_and_grow_with_n() {
        let chart = fig9(&tiny());
        assert!(chart.series.len() >= 2);
        for series in &chart.series {
            for &(_, y) in &series.points {
                assert!(y > 0.0);
            }
        }
    }

    #[test]
    fn fig10_and_fig11_stay_normalized() {
        let scaling = fig10_scaling(&tiny());
        for series in &scaling.series {
            for &(_, y) in &series.points {
                assert!(y > 0.0 && y <= 1.0 + 1e-9);
            }
        }
        let fraction = fig10_required_fraction(&tiny());
        for series in &fraction.series {
            for &(_, y) in &series.points {
                assert!(
                    (0.0..=8.0).contains(&y),
                    "required fraction {y}% out of range"
                );
            }
        }
        let fig11_charts = fig11(&tiny());
        assert_eq!(fig11_charts.len(), 2);
        let example = &fig11_charts[0];
        let soar = example.series.iter().find(|s| s.label == "SOAR").unwrap();
        let max_deg = example
            .series
            .iter()
            .find(|s| s.label == "Max-degree")
            .unwrap();
        assert!(soar.y_at(4.0).unwrap() < max_deg.y_at(4.0).unwrap());
    }

    #[test]
    fn ablation_soar_beats_greedy_and_random() {
        let chart = ablation(&tiny());
        let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
        for series in &chart.series {
            for &(x, y) in &series.points {
                assert!(soar.y_at(x).unwrap() <= y + 1e-9);
            }
        }
    }
}
