//! One function per figure of the paper's evaluation — thin render views over
//! the declarative [`soar_exp`] experiment layer.
//!
//! Every figure is defined once, as a named [`ExperimentSpec`] in
//! [`soar_exp::registry`]; the functions here resolve the spec for an
//! [`ExperimentConfig`], execute it ([`ExperimentSpec::run`]) and hand back the
//! resulting [`Chart`]s so the `figures` binary can print them as tables and
//! CSV. The same specs power the `soar experiment run|list|check` CLI, which
//! additionally persists the full [`RunArtifact`](soar_exp::RunArtifact) JSON
//! for golden-snapshot regression checks.

use crate::series::Chart;
use soar_exp::registry;
use soar_exp::{ExperimentSpec, RunArtifact, Scale};

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Number of random repetitions to average over (the paper uses 10).
    pub repetitions: u64,
    /// Run at the paper's instance sizes (`false` shrinks the instances so the full
    /// suite finishes in well under a minute).
    pub paper_scale: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            repetitions: 3,
            paper_scale: false,
        }
    }
}

impl ExperimentConfig {
    /// The paper's configuration: 10 repetitions, full instance sizes.
    pub fn paper() -> Self {
        ExperimentConfig {
            repetitions: 10,
            paper_scale: true,
        }
    }

    /// The instance scale this configuration selects.
    pub fn scale(&self) -> Scale {
        if self.paper_scale {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Resolves a registry spec at this configuration's scale and repetition
    /// count. Single-shot experiments (fig2, fig3, fig11a, gather-bench) keep
    /// their intrinsic repetition count of 1.
    pub fn spec(&self, name: &str) -> ExperimentSpec {
        let mut spec = registry::by_name(name, self.scale())
            .unwrap_or_else(|| panic!("unknown registry experiment `{name}`"));
        if spec.repetitions != 1 {
            spec.repetitions = self.repetitions;
        }
        spec
    }

    /// Runs a registry spec at this configuration, returning the full artifact.
    pub fn run(&self, name: &str) -> RunArtifact {
        self.spec(name).run()
    }
}

/// Fig. 2: the motivating example — utilization of the four strategies at `k = 2`.
pub fn fig2() -> Chart {
    one_chart(ExperimentConfig::default().run("fig2"))
}

/// Fig. 3: optimal utilization of the motivating example for `k = 0..4` — a single
/// gather pass via `sweep_budgets`.
pub fn fig3() -> Chart {
    one_chart(ExperimentConfig::default().run("fig3"))
}

/// Fig. 6: normalized utilization vs. budget for every strategy, for each load
/// distribution and each link-rate scheme. Returns one chart per (load, rates) pair.
pub fn fig6(config: &ExperimentConfig) -> Vec<Chart> {
    config.run("fig6").charts
}

/// Fig. 7: the online multi-workload scenario. Returns, per rate scheme, two charts:
/// normalized utilization vs. the number of workloads (capacity 4) and vs. the switch
/// capacity (32 workloads).
pub fn fig7(config: &ExperimentConfig) -> Vec<Chart> {
    config.run("fig7").charts
}

/// Fig. 8: the WC and PS use cases on constant rates — (a) utilization, (b) bytes
/// normalized to all-red, (c) bytes normalized to all-blue, each vs. the budget.
pub fn fig8(config: &ExperimentConfig) -> Vec<Chart> {
    config.run("fig8").charts
}

/// Fig. 9: wall-clock running time of SOAR for growing network sizes and budgets
/// (power-law load), read straight from the [`SolveReport`](soar_core::api::SolveReport)
/// wall times.
pub fn fig9(config: &ExperimentConfig) -> Chart {
    one_chart(config.run("fig9"))
}

/// Fig. 10a (Appendix A): normalized utilization for `k ∈ {1 % n, log₂ n, √n}` on
/// growing binary trees with power-law load.
pub fn fig10_scaling(config: &ExperimentConfig) -> Chart {
    one_chart(config.run("fig10a"))
}

/// Fig. 10b (Appendix A): the smallest fraction of blue nodes (in %) needed to reach a
/// 30 / 50 / 70 % reduction of the all-red utilization.
pub fn fig10_required_fraction(config: &ExperimentConfig) -> Chart {
    one_chart(config.run("fig10b"))
}

/// Fig. 11 (Appendix B): SOAR on scale-free trees — the SF(128) Max-vs-SOAR example and
/// the scaling of the normalized utilization for `k ∈ {1 % n, log₂ n, √n}`.
pub fn fig11(config: &ExperimentConfig) -> Vec<Chart> {
    let mut charts = config.run("fig11a").charts;
    charts.extend(config.run("fig11c").charts);
    charts
}

/// Ablation called out in `DESIGN.md`: SOAR's exact DP vs. the greedy marginal-gain
/// heuristic and vs. random placement, on power-law BT instances.
pub fn ablation(config: &ExperimentConfig) -> Chart {
    one_chart(config.run("ablation"))
}

fn one_chart(artifact: RunArtifact) -> Chart {
    let name = artifact.spec.name.clone();
    artifact
        .charts
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("experiment `{name}` produced no charts"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            repetitions: 1,
            paper_scale: false,
        }
    }

    #[test]
    fn fig2_and_fig3_match_the_paper_exactly() {
        let chart = fig2();
        assert_eq!(chart.series.len(), 4);
        let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
        assert_eq!(soar.y_at(2.0), Some(20.0));
        let level = chart.series.iter().find(|s| s.label == "Level").unwrap();
        assert_eq!(level.y_at(2.0), Some(21.0));

        let fig3_chart = fig3();
        let curve = &fig3_chart.series[0];
        assert_eq!(curve.y_at(0.0), Some(51.0));
        assert_eq!(curve.y_at(1.0), Some(35.0));
        assert_eq!(curve.y_at(4.0), Some(11.0));
    }

    #[test]
    fn fig6_soar_dominates_everywhere() {
        let charts = fig6(&tiny());
        assert_eq!(charts.len(), 6);
        for chart in &charts {
            let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
            for series in &chart.series {
                if series.label == "All blue" {
                    continue;
                }
                for &(x, y) in &series.points {
                    let soar_y = soar.y_at(x).unwrap();
                    assert!(
                        soar_y <= y + 1e-9,
                        "{}: SOAR {soar_y} vs {} {y} at k = {x}",
                        chart.title,
                        series.label
                    );
                }
            }
            // Normalized values live in (0, 1].
            for series in &chart.series {
                for &(_, y) in &series.points {
                    assert!(y > 0.0 && y <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fig8_produces_three_charts_with_all_use_cases() {
        let charts = fig8(&ExperimentConfig {
            repetitions: 1,
            paper_scale: false,
        });
        assert_eq!(charts.len(), 3);
        for chart in &charts {
            assert_eq!(chart.series.len(), 4, "{}", chart.title);
        }
        // Fig. 8c: SOAR-over-all-blue ratios are at least 1.
        for series in &charts[2].series {
            for &(_, y) in &series.points {
                assert!(y >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn fig9_times_are_positive_and_grow_with_n() {
        let chart = fig9(&tiny());
        assert!(chart.series.len() >= 2);
        for series in &chart.series {
            for &(_, y) in &series.points {
                assert!(y > 0.0);
            }
        }
    }

    #[test]
    fn fig10_and_fig11_stay_normalized() {
        let scaling = fig10_scaling(&tiny());
        for series in &scaling.series {
            for &(_, y) in &series.points {
                assert!(y > 0.0 && y <= 1.0 + 1e-9);
            }
        }
        let fraction = fig10_required_fraction(&tiny());
        for series in &fraction.series {
            for &(_, y) in &series.points {
                assert!(
                    (0.0..=8.0).contains(&y),
                    "required fraction {y}% out of range"
                );
            }
        }
        let fig11_charts = fig11(&tiny());
        assert_eq!(fig11_charts.len(), 2);
        let example = &fig11_charts[0];
        let soar = example.series.iter().find(|s| s.label == "SOAR").unwrap();
        let max_deg = example
            .series
            .iter()
            .find(|s| s.label == "Max-degree")
            .unwrap();
        assert!(soar.y_at(4.0).unwrap() < max_deg.y_at(4.0).unwrap());
    }

    #[test]
    fn ablation_soar_beats_greedy_and_random() {
        let chart = ablation(&tiny());
        let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
        for series in &chart.series {
            for &(x, y) in &series.points {
                assert!(soar.y_at(x).unwrap() <= y + 1e-9);
            }
        }
    }

    #[test]
    fn artifacts_carry_their_specs_and_env() {
        let artifact = tiny().run("fig3");
        assert_eq!(artifact.spec.name, "fig3");
        assert_eq!(artifact.charts.len(), 1);
        assert!(!artifact.reports.is_empty(), "fig3 keeps its solve reports");
        assert!(artifact.dp.is_some());
        assert!(!artifact.env.os.is_empty());
        // The config's repetition override reaches the spec (fig6 averages).
        let spec = ExperimentConfig {
            repetitions: 7,
            paper_scale: false,
        }
        .spec("fig6");
        assert_eq!(spec.repetitions, 7);
        // Single-shot specs keep their intrinsic repetition count.
        assert_eq!(tiny().spec("fig2").repetitions, 1);
    }
}
