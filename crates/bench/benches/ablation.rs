//! Ablation bench: quality (not speed) of SOAR's exact dynamic program vs. the greedy
//! marginal-gain heuristic, measured as achieved utilization — reported through
//! Criterion's throughput-style labelling by benchmarking the solve path at several
//! budgets. The quality gap itself is reported by `figures --fig ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_bench::instances::{bt_instance, LoadKind};
use soar_core::Strategy;
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn exact_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exact_vs_greedy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let tree = bt_instance(128, LoadKind::PowerLaw, &RateScheme::paper_constant(), 11);
    for &k in &[4usize, 16] {
        for strategy in [Strategy::Soar, Strategy::Greedy] {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), k),
                &(strategy, k),
                |b, (strategy, k)| {
                    let mut rng = StdRng::seed_from_u64(0);
                    b.iter(|| black_box(strategy.solve(&tree, *k, &mut rng).cost))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, exact_vs_greedy);
criterion_main!(benches);
