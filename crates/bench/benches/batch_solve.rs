//! Batch-solving bench: the parallel `solve_batch` / `sweep_budgets_batch` fan-out
//! of the unified Instance/Solver API versus sequential per-instance solves, the
//! single-gather budget sweep versus per-budget gathers, and the single-instance
//! `gather` microbench (fresh arena vs warm `SolverWorkspace`) over {1k, 4k, 16k}
//! switches — the same measurement the `bench_gather` binary snapshots into
//! `BENCH_gather.json` for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soar_bench::instances::{bt_scenario, LoadKind};
use soar_bench::perf::{gather_bench_instance, GATHER_BENCH_SIZES};
use soar_core::api::{
    solve_batch, sweep_budgets, sweep_budgets_batch, Instance, SoarSolver, Solver,
};
use soar_core::workspace::SolverWorkspace;
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn instance_set(count: u64, n: usize, k: usize) -> Vec<Instance> {
    (0..count)
        .map(|seed| {
            bt_scenario(
                n,
                LoadKind::PowerLaw,
                &RateScheme::paper_constant(),
                seed,
                k,
            )
        })
        .collect()
}

fn parallel_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    for &count in &[8u64, 16] {
        let instances = instance_set(count, 128, 16);
        group.bench_with_input(
            BenchmarkId::new("parallel", count),
            &instances,
            |b, instances| b.iter(|| black_box(solve_batch(&SoarSolver, instances))),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", count),
            &instances,
            |b, instances| {
                b.iter(|| {
                    black_box(
                        instances
                            .iter()
                            .map(|instance| SoarSolver.solve(instance))
                            .collect::<Vec<_>>(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn budget_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_budgets");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    let budgets = [1usize, 2, 4, 8, 16, 32];
    let instance = instance_set(1, 256, 32).pop().expect("one instance");
    group.bench_function("shared_gather", |b| {
        b.iter(|| black_box(sweep_budgets(&instance, &budgets)))
    });
    group.bench_function("per_budget_gathers", |b| {
        b.iter(|| {
            black_box(
                budgets
                    .iter()
                    .map(|&k| SoarSolver.solve(&instance.with_budget(k)))
                    .collect::<Vec<_>>(),
            )
        })
    });

    let instances = instance_set(8, 128, 16);
    group.bench_function("batch_of_sweeps", |b| {
        b.iter(|| black_box(sweep_budgets_batch(&instances, &budgets)))
    });
    group.finish();
}

/// Single-instance SOAR-Gather over growing tree sizes: a fresh arena per call
/// versus a reused workspace (the allocation-free hot path of this crate).
fn gather_microbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    for &n in &GATHER_BENCH_SIZES {
        let instance = gather_bench_instance(n);
        let (tree, k) = (instance.tree(), instance.budget());
        group.bench_with_input(BenchmarkId::new("fresh", n), &instance, |b, _| {
            b.iter(|| black_box(soar_core::soar_gather(tree, k)))
        });
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(tree, k);
        group.bench_with_input(BenchmarkId::new("workspace", n), &instance, |b, _| {
            b.iter(|| {
                ws.gather(tree, k);
                black_box(ws.tables().optimum())
            })
        });
        assert_eq!(
            ws.last_alloc_events(),
            0,
            "warm workspace gather must stay allocation-free"
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_batch, budget_sweep, gather_microbench);
criterion_main!(benches);
