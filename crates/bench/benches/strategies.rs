//! Fig. 6 kernel: the cost of computing a placement with each strategy on BT(256)
//! (SOAR pays the dynamic program, the heuristics are effectively sorting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_bench::instances::{bt_instance, LoadKind};
use soar_core::Strategy;
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn strategy_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_bt256");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let tree = bt_instance(256, LoadKind::PowerLaw, &RateScheme::paper_constant(), 7);
    let k = 16;
    for strategy in [
        Strategy::Soar,
        Strategy::Greedy,
        Strategy::Top,
        Strategy::MaxLoad,
        Strategy::Level,
        Strategy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| black_box(strategy.place(&tree, k, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, strategy_placement);
criterion_main!(benches);
