//! Dynamic-churn bench: the `soar-online` incremental epoch re-solve versus a
//! from-scratch warm-workspace solve of the same snapshot.
//!
//! The headline acceptance number of the online subsystem: a **single-leaf
//! rate change** on a 4k-switch `BT` instance refills only the root-to-leaf
//! path — `O(h · k²)` DP cells instead of `O(n · h · k²)` — which this bench
//! measures in wall time and asserts in cell writes (≥ 5× fewer, via
//! `DpStats`). The same measurement is persisted declaratively by the
//! `dynamic-churn` registry spec (`soar experiment run dynamic-churn`), whose
//! artifact charts the per-epoch cell writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soar_bench::perf::gather_bench_instance_with_budget;
use soar_core::workspace::SolverWorkspace;
use soar_multitenant::churn::ChurnEvent;
use soar_online::{DynamicInstance, IncrementalSolver};
use std::hint::black_box;
use std::time::Duration;

const BUDGET: usize = 16;

fn dynamic_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_churn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    for &n in &[1024usize, 4096] {
        let instance = gather_bench_instance_with_budget(n, BUDGET);
        let leaf = instance.tree().leaves().next().expect("BT has leaves");

        // Incremental: one epoch = flip one leaf's rate, refill its root path.
        let mut dynamic = DynamicInstance::from_instance(&instance);
        let mut solver = IncrementalSolver::new();
        let _ = solver.solve_epoch(&mut dynamic); // prime the workspace
        let mut toggle = false;
        group.bench_function(BenchmarkId::new("incremental_single_leaf", n), |b| {
            b.iter(|| {
                toggle = !toggle;
                dynamic
                    .apply(&ChurnEvent::LeafRateChange {
                        leaf,
                        load: if toggle { 40 } else { 3 },
                    })
                    .expect("leaf event applies");
                black_box(solver.solve_epoch(&mut dynamic).cost)
            })
        });

        // One controlled epoch for the acceptance numbers.
        toggle = !toggle;
        dynamic
            .apply(&ChurnEvent::LeafRateChange {
                leaf,
                load: if toggle { 40 } else { 3 },
            })
            .expect("leaf event applies");
        let outcome = solver.solve_epoch(&mut dynamic);
        let ratio = outcome.dp.table_cells as f64 / outcome.dp.cells_written as f64;
        assert!(outcome.incremental, "steady-state epochs are incremental");
        assert_eq!(
            outcome.dp.alloc_events, 0,
            "warm online epochs must stay allocation-free"
        );
        assert!(
            outcome.dp.table_cells >= 5 * outcome.dp.cells_written,
            "single-leaf update on {n} switches wrote {} of {} cells (ratio {ratio:.1}, need >= 5x)",
            outcome.dp.cells_written,
            outcome.dp.table_cells,
        );
        println!(
            "dynamic_churn/{n}: single-leaf update writes {} of {} DP cells ({ratio:.1}x fewer)",
            outcome.dp.cells_written, outcome.dp.table_cells,
        );

        // From-scratch reference: a warm workspace full solve of the snapshot.
        let tree = dynamic.tree().clone();
        let mut ws = SolverWorkspace::new();
        let _ = ws.solve(&tree, BUDGET);
        group.bench_function(BenchmarkId::new("from_scratch", n), |b| {
            b.iter(|| black_box(ws.solve(&tree, BUDGET).cost))
        });
    }
    group.finish();
}

criterion_group!(benches, dynamic_churn);
criterion_main!(benches);
