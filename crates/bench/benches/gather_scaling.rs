//! Fig. 9: scaling of SOAR-Gather with the network size `n` and the budget `k`.
//!
//! The paper reports seconds-to-minutes for a Python implementation on a laptop
//! (Fig. 9); the shape to reproduce is the roughly quadratic growth in `k` and the
//! near-linear growth in `n`. Criterion measures the full gather pass (table
//! construction included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soar_bench::instances::{bt_instance, LoadKind};
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn gather_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("soar_gather");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for &n in &[256usize, 512, 1024, 2048] {
        for &k in &[4usize, 16, 64] {
            let tree = bt_instance(n, LoadKind::PowerLaw, &RateScheme::paper_constant(), 1);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), k),
                &(tree, k),
                |b, (tree, k)| b.iter(|| black_box(soar_core::soar_gather(tree, *k))),
            );
        }
    }
    group.finish();
}

fn color_traceback(c: &mut Criterion) {
    let mut group = c.benchmark_group("soar_color");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // The paper notes SOAR-Color is orders of magnitude cheaper than SOAR-Gather.
    for &n in &[1024usize, 2048] {
        let k = 64;
        let tree = bt_instance(n, LoadKind::PowerLaw, &RateScheme::paper_constant(), 1);
        let tables = soar_core::soar_gather(&tree, k);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(soar_core::soar_color(&tree, &tables)))
        });
    }
    group.finish();
}

criterion_group!(benches, gather_scaling, color_traceback);
criterion_main!(benches);
