//! Cost-model kernels: closed-form utilization accounting, the packet-level simulator,
//! and the application byte models (the per-evaluation cost behind Fig. 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_apps::UseCase;
use soar_bench::instances::{bt_instance, LoadKind};
use soar_reduce::{bytes::FixedSizeModel, cost, sim, Coloring};
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn cost_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let tree = bt_instance(256, LoadKind::PowerLaw, &RateScheme::paper_constant(), 3);
    let coloring = soar_core::solve(&tree, 16).coloring;

    group.bench_function("phi_closed_form", |b| {
        b.iter(|| black_box(cost::phi(&tree, &coloring)))
    });
    group.bench_function("phi_barrier_form", |b| {
        b.iter(|| black_box(cost::phi_barrier(&tree, &coloring)))
    });
    group.bench_function("packet_level_simulation", |b| {
        b.iter(|| black_box(sim::simulate(&tree, &coloring)))
    });
    group.bench_function("byte_complexity_fixed_size", |b| {
        let model = FixedSizeModel::new(1024);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            black_box(soar_reduce::bytes::byte_complexity(
                &tree, &coloring, &model, &mut rng,
            ))
        })
    });
    group.finish();
}

fn application_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("application_bytes_bt64");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    // Smaller tree: the application models dominate the runtime, not the topology.
    let tree = bt_instance(64, LoadKind::Uniform, &RateScheme::paper_constant(), 5);
    let all_blue = Coloring::all_blue(tree.n_switches());
    for use_case in [
        UseCase::word_count_default(),
        UseCase::parameter_server_default(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(use_case.label()),
            &use_case,
            |b, use_case| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(use_case.byte_report(&tree, &all_blue, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cost_kernels, application_models);
criterion_main!(benches);
