//! Dataplane benches: the distributed (message-passing) rendition of SOAR plus the
//! Reduce dataplane, inline vs. thread-per-switch, and the frame codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soar_bench::instances::{bt_instance, LoadKind};
use soar_dataplane::wire::Frame;
use soar_dataplane::{run_inline, run_threaded};
use soar_topology::rates::RateScheme;
use std::hint::black_box;
use std::time::Duration;

fn distributed_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane_end_to_end");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    for &n in &[64usize, 128] {
        let tree = bt_instance(n, LoadKind::Uniform, &RateScheme::paper_constant(), 2);
        group.bench_with_input(BenchmarkId::new("inline", n), &tree, |b, tree| {
            b.iter(|| black_box(run_inline(tree, 8)))
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &tree, |b, tree| {
            b.iter(|| black_box(run_threaded(tree, 8)))
        });
    }
    group.finish();
}

fn frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let frame = Frame::XTable {
        child: 17,
        n_l: 12,
        n_i: 65,
        values: (0..12 * 65).map(|i| i as f64).collect(),
    };
    group.bench_function("encode_xtable", |b| b.iter(|| black_box(frame.encode())));
    let encoded = frame.encode();
    group.bench_function("decode_xtable", |b| {
        b.iter(|| black_box(Frame::decode(encoded.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, distributed_protocol, frame_codec);
criterion_main!(benches);
